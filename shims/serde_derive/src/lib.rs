//! `#[derive(Serialize, Deserialize)]` for the in-repo serde shim.
//!
//! Written against `proc_macro` directly (no `syn`/`quote` — the build is
//! offline). Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields, optionally generic over type parameters
//!   (bounds on the params themselves are ignored; the generated impl
//!   re-bounds every parameter with `Serialize`/`Deserialize`);
//! * enums whose variants are all unit variants;
//! * the `#[serde(skip)]` field attribute (field omitted on serialize,
//!   filled from `Default::default()` on deserialize).
//!
//! Anything else — tuple structs, variant payloads, other `#[serde(...)]`
//! options — panics at derive time with a clear message rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<String>),
}

struct Input {
    name: String,
    type_params: Vec<String>,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive generated invalid Rust")
}

// ---- parsing ------------------------------------------------------------

/// Consume one `#[...]` attribute (the `#` was already consumed); return
/// whether it is `#[serde(skip)]`.
fn attr_is_skip(iter: &mut impl Iterator<Item = TokenTree>) -> bool {
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
            let mut inner = g.stream().into_iter();
            match inner.next() {
                Some(TokenTree::Ident(id)) if id.to_string() == "serde" => match inner.next() {
                    Some(TokenTree::Group(args)) => {
                        let body = args.stream().to_string();
                        if body.trim() == "skip" {
                            true
                        } else {
                            panic!("serde shim derive: unsupported attribute #[serde({body})]");
                        }
                    }
                    _ => panic!("serde shim derive: malformed #[serde] attribute"),
                },
                _ => false, // #[doc], #[derive], #[cfg], ... — ignore
            }
        }
        other => panic!("serde shim derive: expected attribute body, got {other:?}"),
    }
}

fn parse(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();

    // Preamble: attributes and visibility up to `struct` / `enum`.
    let keyword = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                attr_is_skip(&mut iter);
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc. — the paren group after `pub`
                // is consumed by the generic match arms below.
            }
            Some(_) => {}
            None => panic!("serde shim derive: no struct/enum keyword found"),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };

    // Generic parameter list, if present.
    let mut type_params = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut at_param_start = true;
        let mut in_lifetime = false;
        while depth > 0 {
            match iter.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        at_param_start = true;
                        in_lifetime = false;
                    }
                    '\'' if depth == 1 && at_param_start => in_lifetime = true,
                    ':' if depth == 1 => at_param_start = false,
                    _ => {}
                },
                Some(TokenTree::Ident(id)) if depth == 1 && at_param_start => {
                    if in_lifetime {
                        in_lifetime = false;
                    } else if id.to_string() == "const" {
                        panic!("serde shim derive: const generics unsupported");
                    } else {
                        type_params.push(id.to_string());
                    }
                    at_param_start = false;
                }
                Some(_) => {}
                None => panic!("serde shim derive: unterminated generic parameter list"),
            }
        }
    }

    // Body: the brace group (no `where` clauses exist in this workspace's
    // derived types, but skip any stray tokens defensively).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde shim derive: tuple/unit structs unsupported")
            }
            Some(_) => {}
            None => panic!("serde shim derive: missing {{...}} body"),
        }
    };

    let kind = if keyword == "struct" {
        Kind::Struct(parse_fields(body.stream()))
    } else {
        Kind::Enum(parse_variants(body.stream()))
    };
    Input {
        name,
        type_params,
        kind,
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Attributes.
        let mut skip = false;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    skip |= attr_is_skip(&mut iter);
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        // Field name.
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0usize;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle = angle.saturating_sub(1);
                    } else if c == ',' && angle == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
                None => break,
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Attributes.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    attr_is_skip(&mut iter);
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        match iter.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: consume the expression.
                loop {
                    match iter.next() {
                        None => break,
                        Some(TokenTree::Punct(q)) if q.as_char() == ',' => break,
                        Some(_) => {}
                    }
                }
                variants.push(name);
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde shim derive: enum variant `{name}` has a payload (unsupported)")
            }
            other => {
                panic!("serde shim derive: unexpected token after variant `{name}`: {other:?}")
            }
        }
    }
    variants
}

// ---- code generation ----------------------------------------------------

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Name<T>` header parts.
fn impl_header(item: &Input, bound: &str) -> (String, String) {
    if item.type_params.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params = item
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        let args = item.type_params.join(", ");
        (format!("<{params}>"), format!("{}<{args}>", item.name))
    }
}

fn gen_serialize(item: &Input) -> String {
    let (generics, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::value::Value)> = ::std::vec::Vec::new();\n{pushes}\
                 ::serde::value::Value::Obj(fields)"
            )
        }
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("{}::{v} => \"{v}\",", item.name))
                .collect::<String>();
            format!(
                "::serde::value::Value::Str(::std::string::String::from(match self {{ {arms} }}))"
            )
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let (generics, ty) = impl_header(item, "::serde::Deserialize");
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::core::default::Default::default(),\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: match ::serde::value::Value::get_field(v, \"{n}\") {{\n\
                         Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                         None => return Err(::serde::DeError::msg(\
                         \"missing field `{n}` in `{name}`\")),\n}},\n",
                        n = f.name,
                        name = item.name
                    ));
                }
            }
            format!(
                "if v.as_obj().is_none() {{\n\
                 return Err(::serde::DeError::msg(\
                 \"expected object for `{name}`\"));\n}}\n\
                 Ok({name} {{\n{inits}}})",
                name = item.name
            )
        }
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({}::{v}),", item.name))
                .collect::<String>();
            format!(
                "match v.as_str() {{ {arms} _ => Err(::serde::DeError::msg(format!(\
                 \"unknown `{name}` variant: {{v:?}}\"))) }}",
                name = item.name
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(v: &::serde::value::Value) -> \
         ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
