//! String generation from the small regex subset the workspace's property
//! tests use: sequences of atoms, where an atom is a character class
//! (`[a-z0-9_]`, with ranges and literal members), the escape `\PC`
//! ("printable": any non-control character), or a literal character; each
//! atom may carry a `{m}` / `{m,n}` repetition.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

enum Atom {
    /// Choose uniformly from explicit options.
    Class(Vec<char>),
    /// Any printable (non-control) character, drawn from a spread of
    /// scripts so multi-byte handling gets exercised.
    Printable,
    /// A fixed character.
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let body = &chars[i + 1..i + close];
                i += close + 1;
                let mut opts = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        opts.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        opts.push(body[j]);
                        j += 1;
                    }
                }
                assert!(!opts.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(opts)
            }
            '\\' => {
                // Only `\PC` (printable) is supported, matching the
                // workspace's `\PC{0,N}` tokenizer-fuzzing patterns.
                let rest: String = chars[i..].iter().take(3).collect();
                assert!(rest == "\\PC", "unsupported escape in pattern {pattern:?}");
                i += 3;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m} or {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Pools for `\PC`: weighted toward ASCII (tokens, punctuation, digits)
/// with a multi-byte tail (accents, CJK, symbols, emoji).
const ASCII_PRINTABLE: &[u8] =
    b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";
const WIDE: &[char] = &[
    'é', 'ü', 'ñ', 'ß', 'ø', 'ç', 'Æ', 'œ', '√', '°', '©', '∞', '→', '日', '本', '語', '中', '文',
    'λ', 'Ω', 'π', 'а', 'б', 'в', '🎉', '🚀', '😀', '\u{2014}', '\u{00a0}',
];

fn printable(rng: &mut StdRng) -> char {
    if rng.gen_bool(0.85) {
        *ASCII_PRINTABLE.choose(rng).unwrap() as char
    } else {
        *WIDE.choose(rng).unwrap()
    }
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = rng.gen_range(piece.min..=piece.max);
        for _ in 0..n {
            match &piece.atom {
                Atom::Class(opts) => out.push(*opts.choose(rng).unwrap()),
                Atom::Printable => out.push(printable(rng)),
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_range_and_quantifier() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn printable_never_emits_controls() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_from_pattern("\\PC{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_mixed_patterns() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = generate_from_pattern("ab[0-9]{3}", &mut rng);
        assert!(s.starts_with("ab") && s.len() == 5);
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
