//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Inclusive-exclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors of values from `element`, with length in
/// `size` (a `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
