//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! macro, `prop_assert!` / `prop_assert_eq!`, range and tuple strategies,
//! `proptest::collection::vec`, and string strategies for the small regex
//! subset the tests rely on (`[a-z]{1,8}`-style classes and `\PC`).
//!
//! Differences from the real crate: no shrinking (the failing inputs are
//! printed verbatim), and a fixed deterministic seed per test derived from
//! the test name (override the case count with `PROPTEST_CASES`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod string;

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test expects in scope.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError, TestRunner};
}

/// A failed property (carried by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a message.
    pub fn fail(m: impl Into<String>) -> TestCaseError {
        TestCaseError(m.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test driver: RNG plus case budget.
pub struct TestRunner {
    /// Deterministic generator (seeded from the test name).
    pub rng: StdRng,
    /// Number of cases to run (default 128; `PROPTEST_CASES` overrides).
    pub cases: usize,
}

impl TestRunner {
    /// New runner for the named test.
    pub fn new(test_name: &str) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(128);
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            cases,
        }
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, _rng: &mut StdRng) -> bool {
        *self
    }
}

/// String literals are regex-subset strategies, as in the real crate.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// The property-test entry macro. Mirrors the real crate's surface for the
/// forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0usize..10, s in "[a-z]{1,4}") { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new(stringify!($name));
            for case in 0..runner.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut runner.rng);)*
                // Render inputs up front: the body may consume them, and on
                // failure we still want them in the panic message.
                let inputs = format!("{:#?}", ($(&$arg,)*));
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

/// Fail the enclosing property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the enclosing property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fail the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f32..1.0, i in 0i32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((0..=4).contains(&i));
        }

        #[test]
        fn tuples_and_vecs(pair in (0usize..5, 1usize..3), v in crate::collection::vec(0u8..10, 0..6)) {
            prop_assert!(pair.0 < 5 && pair.1 >= 1);
            prop_assert!(v.len() < 6);
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn string_patterns(s in "[a-z]{1,8}", t in "\\PC{0,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 20);
            prop_assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn failures_panic_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "panic message was: {msg}");
        assert!(msg.contains("inputs"), "panic message was: {msg}");
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRunner::new("some_test");
        let mut b = TestRunner::new("some_test");
        assert_eq!(
            (0usize..100).generate(&mut a.rng),
            (0usize..100).generate(&mut b.rng)
        );
    }
}
