//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use: `Criterion`, `benchmark_group` / `bench_function`, `Bencher::iter`
//! / `iter_batched`, `sample_size`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros.
//!
//! Measurement model: after a short calibration pass, each sample runs
//! enough iterations to take roughly `measurement_ms / sample_count`, and
//! the reported figure is the median over samples (min/mean/median/max all
//! printed). No statistical regression analysis, no HTML reports — just
//! honest wall-clock numbers on stdout, which is what the EXPERIMENTS.md
//! tables record.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim treats every variant the
/// same (setup re-runs per measured batch, excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-setup on every iteration.
    PerIteration,
}

/// Collected timing for one benchmark.
#[derive(Debug, Clone)]
struct Sample {
    iters: u64,
    total: Duration,
}

/// The per-benchmark measurement driver handed to `bench_function` closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Sample>,
    sample_count: usize,
    measurement: Duration,
}

impl Bencher<'_> {
    /// Measure `routine` (its return value is black-boxed).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample's time slice?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let slice = self.measurement / self.sample_count as u32;
        let iters_per_sample = (slice.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(Sample {
                iters: iters_per_sample,
                total: start.elapsed(),
            });
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(Sample {
                iters: 1,
                total: start.elapsed(),
            });
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_bench(
    id: &str,
    filter: Option<&str>,
    sample_count: usize,
    measurement: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let mut samples = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        sample_count,
        measurement,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|s| s.total.as_nanos() as f64 / s.iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let median = per_iter[per_iter.len() / 2];
    let to_d = |ns: f64| Duration::from_nanos(ns as u64);
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(to_d(min)),
        fmt_duration(to_d(median)),
        fmt_duration(to_d(max)),
    );
}

/// Top-level benchmark driver (also the `benchmark_group` factory).
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes `--bench` (and test harness flags); the first
        // free argument is a substring filter, as with the real crate.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            filter,
            sample_size: 20,
            measurement: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            measurement: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(
            id,
            self.filter.as_deref(),
            self.sample_size,
            self.measurement,
            &mut f,
        );
        self
    }
}

/// A named group; benchmark ids print as `group/name`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.parent.filter.as_deref(),
            self.sample_size.unwrap_or(self.parent.sample_size),
            self.measurement.unwrap_or(self.parent.measurement),
            &mut f,
        );
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            measurement: Duration::from_millis(5),
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0, "routine must actually run");
    }

    #[test]
    fn groups_apply_sample_size_and_filtering() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            sample_size: 3,
            measurement: Duration::from_millis(5),
        };
        let mut wanted = 0u64;
        let mut unwanted = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("wanted_case", |b| b.iter(|| wanted += 1));
        g.bench_function("other_case", |b| b.iter(|| unwanted += 1));
        g.finish();
        assert!(wanted > 0);
        assert_eq!(unwanted, 0, "filter must skip non-matching benchmarks");
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion {
            filter: None,
            sample_size: 4,
            measurement: Duration::from_millis(5),
        };
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
