//! The JSON-shaped value tree the serde shim converts through.

/// A JSON number, kept in its natural machine representation so `u64` ids
/// and `f32` weights both round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// As `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// As `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }

    /// As `f64` (always representable, possibly with rounding).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(f) => f,
        }
    }
}

/// A JSON document. Objects preserve insertion order (they are association
/// lists, not maps — field counts here are tiny).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Object field lookup (first match).
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}
