//! Offline stand-in for the subset of `serde` this workspace uses:
//! `#[derive(Serialize, Deserialize)]` with `#[serde(skip)]`, plus the
//! `de::DeserializeOwned` bound.
//!
//! Instead of the real serde data model, the shim converts through a small
//! JSON-shaped [`value::Value`] tree; `serde_json` (also shimmed) renders
//! and parses it. Maps serialize as arrays of `[key, value]` pairs so
//! non-string keys round-trip without a key-stringification protocol.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Number, Value};

/// Deserialization error (the only failure mode the shim distinguishes).
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the shim's JSON-shaped value tree.
pub trait Serialize {
    /// Represent `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim's JSON-shaped value tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Deserialization-side re-exports mirroring the real crate's layout.
    pub use super::DeError;

    /// Owned deserialization — in the shim every [`super::Deserialize`]
    /// already is owned, so this is a blanket alias.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError::msg(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = match v {
                    Value::Num(n) => n.as_u64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| DeError::msg(format!(
                    "expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = match v {
                    Value::Num(n) => n.as_i64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| DeError::msg(format!(
                    "expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---- containers ---------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($n:expr; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == $n => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => type_err(concat!("array of length ", $n), other),
                }
            }
        }
    };
}

impl_tuple!(1; A.0);
impl_tuple!(2; A.0, B.1);
impl_tuple!(3; A.0, B.1, C.2);
impl_tuple!(4; A.0, B.1, C.2, D.3);

// Maps and sets serialize as arrays (of pairs, for maps) so that
// non-string keys — `HashMap<(String, String), u32>` exists in this
// workspace — round-trip without a key-encoding protocol.

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs: Vec<(K, V)> = Vec::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs: Vec<(K, V)> = Vec::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        Ok(items.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        Ok(items.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn f32_round_trip_is_exact() {
        for &x in &[0.1f32, -3.735_12e-7, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_value(&x.to_value()).unwrap(), x);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m: HashMap<(String, String), u32> = HashMap::new();
        m.insert(("a".into(), "b".into()), 7);
        assert_eq!(HashMap::from_value(&m.to_value()).unwrap(), m);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let arr: [u8; 3] = [9, 8, 7];
        assert_eq!(<[u8; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn wrong_shape_errors() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::Num(Number::U(300))).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }
}
