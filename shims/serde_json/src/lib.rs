//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`from_str`] and [`Error`]. Works over the serde shim's
//! [`serde::value::Value`] tree.
//!
//! Numbers print with Rust's shortest-round-trip float formatting, so every
//! `f32`/`f64` survives a save/load cycle bit-exactly (non-finite floats
//! become `null`, as in the real crate).

use serde::de::DeserializeOwned;
use serde::value::{Number, Value};
use serde::Serialize;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---- writer -------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(fv, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: &Number, out: &mut String) {
    use std::fmt::Write;
    match *n {
        Number::U(u) => write!(out, "{u}").unwrap(),
        Number::I(i) => write!(out, "{i}").unwrap(),
        Number::F(f) if f.is_finite() => {
            // Keep a syntactic marker that this is a float so integers and
            // floats stay distinguishable after a round trip.
            if f == f.trunc() && f.abs() < 1e15 {
                write!(out, "{f:.1}").unwrap()
            } else {
                write!(out, "{f}").unwrap()
            }
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&123u64).unwrap()).unwrap(), 123);
        assert_eq!(from_str::<i32>(&to_string(&-5i32).unwrap()).unwrap(), -5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_round_trips_exactly() {
        for &x in &[0.1f32, 1.0, -2.5e-8, std::f32::consts::PI, f32::MAX] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "through {s}");
        }
        for &x in &[0.1f64, 1e300, -7.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "through {s}");
        }
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.5], vec![], vec![-3.25]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&s).unwrap(), v);
        let m: std::collections::HashMap<String, u32> =
            [("a".to_string(), 1u32), ("b".to_string(), 2)]
                .into_iter()
                .collect();
        assert_eq!(
            from_str::<std::collections::HashMap<String, u32>>(&to_string(&m).unwrap()).unwrap(),
            m
        );
    }

    #[test]
    fn unicode_strings_round_trip() {
        for s in [
            "héllo wörld",
            "日本語",
            "emoji 🎉 done",
            "quote \" slash \\ tab \t",
        ] {
            let json = to_string(&s.to_string()).unwrap();
            assert_eq!(from_str::<String>(&json).unwrap(), s);
        }
        // Escaped input forms parse too.
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83c\\udf89\"").unwrap(), "🎉");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }
}
