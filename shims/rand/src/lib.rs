//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::{choose, shuffle}`.
//!
//! The container building this repository has no crates.io access, so the
//! workspace vendors a minimal deterministic PRNG instead of the real crate
//! (see `shims/README.md`). The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for the synthetic-data and
//! weight-initialisation workloads here, but **not** the same stream as the
//! real `rand::StdRng`, and not cryptographically secure.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Deterministically construct the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics on empty ranges. Generic over the output type `T` so
    /// untyped literals infer from the call site, as with the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] can sample `T` from. Implemented once,
/// generically over [`SampleUniform`] element types, so type inference can
/// flow from the call site through the range literal (e.g.
/// `let n: usize = 1 + rng.gen_range(1..3);`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform distribution over a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is
/// `< span / 2^64`, irrelevant for the workloads here).
#[inline]
fn mul_shift(bits: u64, span: u128) -> u64 {
    ((bits as u128 * span) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let v = lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo);
                // Floating rounding can land exactly on `hi`; stay half-open.
                if v < hi { v } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64. Deterministic for a
    /// given seed; not the same stream as the real `rand::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, per Vigna's reference seeding scheme.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.
    use super::{RngCore, SampleRange};

    /// `choose` / `shuffle` on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_from(rng))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v != sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
