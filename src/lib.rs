//! # EMD Globalizer
//!
//! A Rust reproduction of **"Boosting Entity Mention Detection for
//! Targetted Twitter Streams with Global Contextual Embeddings"**
//! (Saha Bhowmick, Dragut & Meng — ICDE 2022).
//!
//! EMD Globalizer is a stream-aware, two-phase framework that wraps *any*
//! existing entity-mention-detection (EMD) system and boosts its
//! effectiveness on microblog streams:
//!
//! 1. **Local EMD** — the wrapped black-box tagger runs over each
//!    tweet-sentence in isolation, proposing seed entity candidates (and,
//!    for deep systems, per-token entity-aware embeddings).
//! 2. **Global EMD** — candidates are indexed in a case-insensitive prefix
//!    trie; a rescan of the stream finds *every* mention of every candidate
//!    (recovering what the local pass missed); per-mention local embeddings
//!    pool into a **global candidate embedding**; a small classifier
//!    separates true entities from false positives; all mentions of
//!    accepted candidates are emitted.
//!
//! ## Quick start
//!
//! ```
//! use emd_globalizer::core::{Globalizer, GlobalizerConfig, EntityClassifier};
//! use emd_globalizer::core::local::LexiconEmd;
//! use emd_globalizer::text::token::{Sentence, SentenceId};
//! use emd_globalizer::nn::param::Net;
//!
//! // Any `LocalEmd` implementation plugs in; here a toy lexicon tagger.
//! let local = LexiconEmd::new(["coronavirus"]);
//!
//! // An accept-all classifier for illustration (normally trained on D5).
//! let mut classifier = EntityClassifier::new(7, 0);
//! classifier.params_mut().into_iter().last().unwrap().value.data[0] = 10.0;
//!
//! let globalizer = Globalizer::new(&local, None, &classifier, GlobalizerConfig::default());
//! let stream = vec![
//!     Sentence::from_tokens(SentenceId::new(0, 0), ["Coronavirus", "spreads"]),
//!     Sentence::from_tokens(SentenceId::new(1, 0), ["CORONAVIRUS", "cases", "rise"]),
//! ];
//! let (out, _state) = globalizer.run(&stream, 512);
//! let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
//! assert_eq!(total, 2); // the ALL-CAPS variant is recovered globally
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `emd-core` | the framework: CTrie, mention extraction, phrase embedder, entity classifier, pipeline |
//! | [`local`] | `emd-local` | the four Local EMD systems (NP chunker, TwitterNLP-CRF, Aguilar BiLSTM-CNN-CRF, MiniBERT) |
//! | [`text`] | `emd-text` | tokenizer, casing analysis, BPE, POS, gazetteers, corpus types |
//! | [`nn`] | `emd-nn` | from-scratch neural substrate with hand-written backprop |
//! | [`crf`] | `emd-crf` | sparse feature-hashed linear-chain CRF |
//! | [`synth`] | `emd-synth` | synthetic targeted-stream generator (datasets D1–D5, WNUT17/BTC-like) |
//! | [`baseline`] | `emd-baseline` | HIRE-NER document-level baseline |
//! | [`eval`] | `emd-eval` | metrics, frequency bins, error analysis, paper reference values |
//! | [`obs`] | `emd-obs` | zero-dependency metrics: counters, gauges, latency histograms, Prometheus/JSON exporters |
//! | [`trace`] | `emd-trace` | decision-level tracing: lock-free event ring, per-mention provenance, trace-replay auditing, flame output |
//! | [`sentinel`] | `emd-sentinel` | windowed quality telemetry, streaming drift detectors, per-stream health state machine |
//! | [`resilience`] | `emd-resilience` | failure model: fail points, panic isolation, quarantine, checkpoint format, dead-letter log |
//! | [`guard`] | `emd-guard` | overload runtime: backoff policies, admission queues, circuit breakers |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison of every table and figure.

pub use emd_baseline as baseline;
pub use emd_core as core;
pub use emd_crf as crf;
pub use emd_eval as eval;
pub use emd_guard as guard;
pub use emd_local as local;
pub use emd_nn as nn;
pub use emd_obs as obs;
pub use emd_resilience as resilience;
pub use emd_sentinel as sentinel;
pub use emd_synth as synth;
pub use emd_text as text;
pub use emd_trace as trace;

/// The version of this reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
