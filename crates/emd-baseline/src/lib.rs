//! # emd-baseline
//!
//! HIRE-NER (Luo, Xiao & Zhao, AAAI 2020), the document-level EMD baseline
//! the paper compares against in Table IV.
//!
//! Mechanism (faithfully reproduced, scaled down): a BiLSTM encoder
//! produces sentence-level contextual token embeddings; a **document-level
//! memory** keeps, for every unique token, the running mean of its
//! contextual embeddings across the *entire* stream ("hierarchical
//! contextualized representation"); the memory vector is concatenated to
//! each token's local embedding before the decoder (dense → CRF) predicts
//! labels.
//!
//! This is exactly the design the paper critiques: global features are
//! attached to *every token* (not just entity candidates) and injected
//! *before* decoding, so the aggregated non-local context also injects
//! noise — visible as the precision gap in Table IV.
//!
//! Simplification (documented in DESIGN.md): memory features are treated as
//! stop-gradient inputs, recomputed from the current encoder at the start
//! of each training epoch; inference over a dataset is two-pass (build
//! memory, then decode).

use emd_nn::crf::CrfLayer;
use emd_nn::dense::Dense;
use emd_nn::embedding::Embedding;
use emd_nn::lstm::BiLstm;
use emd_nn::matrix::Matrix;
use emd_nn::optim::Adam;
use emd_nn::param::{Net, Param};
use emd_text::normalize;
use emd_text::token::{bio_to_spans, Bio, Dataset, Sentence, Span};
use emd_text::vocab::Vocab;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

const WORD_DIM: usize = 32;
const HIDDEN: usize = 40;
const LOCAL_DIM: usize = 2 * HIDDEN;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct HireConfig {
    /// Epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sentences per step.
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
    /// Gradient clip.
    pub clip: f32,
}

impl Default for HireConfig {
    fn default() -> Self {
        HireConfig {
            epochs: 3,
            lr: 0.004,
            batch_size: 8,
            seed: 42,
            clip: 5.0,
        }
    }
}

/// The token-level memory: running mean of contextual embeddings per
/// unique (normalized, lower-cased) token.
#[derive(Debug, Clone, Default)]
pub struct TokenMemory {
    sums: HashMap<String, (Vec<f32>, usize)>,
}

impl TokenMemory {
    /// Empty memory.
    pub fn new() -> TokenMemory {
        TokenMemory::default()
    }

    /// Add one contextual embedding observation for `token`.
    pub fn update(&mut self, token: &str, emb: &[f32]) {
        let key = normalize::normalize_token(token);
        let entry = self
            .sums
            .entry(key)
            .or_insert_with(|| (vec![0.0; emb.len()], 0));
        for (s, &v) in entry.0.iter_mut().zip(emb.iter()) {
            *s += v;
        }
        entry.1 += 1;
    }

    /// Mean embedding for `token` (zeros if unseen).
    pub fn get(&self, token: &str, dim: usize) -> Vec<f32> {
        let key = normalize::normalize_token(token);
        match self.sums.get(&key) {
            Some((sum, n)) if *n > 0 => sum.iter().map(|s| s / *n as f32).collect(),
            _ => vec![0.0; dim],
        }
    }

    /// Number of distinct tokens remembered.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }
}

/// The HIRE-NER baseline model.
pub struct HireNer {
    vocab: Vocab,
    emb: Embedding,
    bilstm: BiLstm,
    dense: Dense,
    emit: Dense,
    crf: CrfLayer,
}

impl HireNer {
    /// Initialize against a training corpus's vocabulary.
    pub fn init(dataset: &Dataset, seed: u64) -> HireNer {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vocab = Vocab::new(true);
        for s in &dataset.sentences {
            for t in s.sentence.texts() {
                vocab.add(&normalize::normalize_token(t));
            }
        }
        let vocab = vocab.pruned(2);
        HireNer {
            emb: Embedding::new(vocab.len(), WORD_DIM, &mut rng),
            bilstm: BiLstm::new(WORD_DIM, HIDDEN, &mut rng),
            dense: Dense::new(2 * LOCAL_DIM, LOCAL_DIM, &mut rng),
            emit: Dense::new(LOCAL_DIM, Bio::COUNT, &mut rng),
            crf: CrfLayer::new(Bio::COUNT),
            vocab,
        }
    }

    fn ids(&self, sentence: &Sentence) -> Vec<u32> {
        sentence
            .texts()
            .map(|t| self.vocab.get(&normalize::normalize_token(t)))
            .collect()
    }

    /// Local contextual embeddings `[T, LOCAL_DIM]` (inference path).
    fn local_infer(&self, sentence: &Sentence) -> Matrix {
        self.bilstm.infer(&self.emb.infer(&self.ids(sentence)))
    }

    /// Build a memory over a set of sentences with the current encoder.
    pub fn build_memory(&self, sentences: &[Sentence]) -> TokenMemory {
        let mut mem = TokenMemory::new();
        for s in sentences {
            if s.is_empty() {
                continue;
            }
            let local = self.local_infer(s);
            for (t, tok) in s.texts().enumerate() {
                mem.update(tok, local.row(t));
            }
        }
        mem
    }

    /// Concatenate local embeddings with memory vectors `[T, 2*LOCAL_DIM]`.
    fn with_memory(&self, sentence: &Sentence, local: &Matrix, mem: &TokenMemory) -> Matrix {
        let mut x = Matrix::zeros(local.rows, 2 * LOCAL_DIM);
        for (t, tok) in sentence.texts().enumerate() {
            let row = x.row_mut(t);
            row[..LOCAL_DIM].copy_from_slice(local.row(t));
            row[LOCAL_DIM..].copy_from_slice(&mem.get(tok, LOCAL_DIM));
        }
        x
    }

    /// One training step (memory features are stop-gradient).
    fn train_sentence(&mut self, sentence: &Sentence, gold: &[usize], mem: &TokenMemory) -> f32 {
        let ids = self.ids(sentence);
        let e_in = self.emb.forward(&ids);
        let local = self.bilstm.forward(&e_in);
        let x = self.with_memory(sentence, &local, mem);
        let h = self.dense.forward(&x);
        let mut hr = h.clone();
        for v in &mut hr.data {
            *v = v.max(0.0);
        }
        let logits = self.emit.forward(&hr);
        let (loss, de) = self.crf.nll(&logits, gold);
        let ghr = self.emit.backward(&de);
        // ReLU mask
        let mut gh = ghr;
        for (g, &v) in gh.data.iter_mut().zip(h.data.iter()) {
            if v <= 0.0 {
                *g = 0.0;
            }
        }
        let gx = self.dense.backward(&gh);
        // Only the local half backpropagates (memory is stop-gradient).
        let (glocal, _gmem) = gx.hsplit(LOCAL_DIM);
        let gemb = self.bilstm.backward(&glocal);
        self.emb.backward(&gemb);
        loss
    }

    /// Train on an annotated corpus.
    pub fn train(dataset: &Dataset, cfg: &HireConfig) -> HireNer {
        let mut model = HireNer::init(dataset, cfg.seed);
        let sentences: Vec<Sentence> = dataset
            .sentences
            .iter()
            .map(|a| a.sentence.clone())
            .collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x41);
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        for _ in 0..cfg.epochs {
            let mem = model.build_memory(&sentences);
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                model.zero_grads();
                for &i in chunk {
                    let ann = &dataset.sentences[i];
                    if ann.sentence.is_empty() {
                        continue;
                    }
                    let gold: Vec<usize> = ann.gold_bio().iter().map(|b| b.index()).collect();
                    model.train_sentence(&ann.sentence, &gold, &mem);
                }
                model.clip_grad_norm(cfg.clip);
                let mut params = model.params_mut();
                opt.step(&mut params);
            }
        }
        model
    }

    /// Decode one sentence given a memory.
    pub fn decode(&self, sentence: &Sentence, mem: &TokenMemory) -> Vec<Span> {
        if sentence.is_empty() {
            return vec![];
        }
        let local = self.local_infer(sentence);
        let x = self.with_memory(sentence, &local, mem);
        let mut h = self.dense.infer(&x);
        for v in &mut h.data {
            *v = v.max(0.0);
        }
        let logits = self.emit.infer(&h);
        let labels = self.crf.decode(&logits);
        let bio: Vec<Bio> = labels.into_iter().map(Bio::from_index).collect();
        bio_to_spans(&bio)
    }

    /// Run the full two-pass document-level pipeline over a stream:
    /// build the memory from all sentences, then decode each.
    pub fn run_dataset(&self, sentences: &[Sentence]) -> Vec<Vec<Span>> {
        let mem = self.build_memory(sentences);
        sentences.iter().map(|s| self.decode(s, &mem)).collect()
    }
}

impl Net for HireNer {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.emb.params_mut();
        ps.extend(self.bilstm.params_mut());
        ps.extend(self.dense.params_mut());
        ps.extend(self.emit.params_mut());
        ps.extend(self.crf.params_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_synth::datasets::training_stream;

    #[test]
    fn memory_running_mean() {
        let mut mem = TokenMemory::new();
        mem.update("Italy", &[1.0, 0.0]);
        mem.update("ITALY", &[0.0, 1.0]); // same normalized key
        assert_eq!(mem.get("italy", 2), vec![0.5, 0.5]);
        assert_eq!(mem.get("unseen", 2), vec![0.0, 0.0]);
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn trains_and_decodes() {
        let (_, d5) = training_stream(41, 0.004);
        let model = HireNer::train(
            &d5,
            &HireConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let sentences: Vec<Sentence> = d5
            .sentences
            .iter()
            .take(60)
            .map(|a| a.sentence.clone())
            .collect();
        let preds = model.run_dataset(&sentences);
        assert_eq!(preds.len(), 60);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (ann, spans) in d5.sentences.iter().take(60).zip(preds.iter()) {
            let pred = emd_text::token::spans_to_bio(spans, ann.sentence.len());
            let gold = ann.gold_bio();
            correct += pred.iter().zip(gold.iter()).filter(|(a, b)| a == b).count();
            total += gold.len();
        }
        let acc = correct as f32 / total as f32;
        assert!(acc > 0.7, "token accuracy too low: {acc}");
    }

    #[test]
    fn memory_changes_predictions_possible() {
        // Decoding with an empty memory vs the stream memory may differ —
        // at minimum it must not crash and must produce valid spans.
        let (_, d5) = training_stream(42, 0.003);
        let model = HireNer::train(
            &d5,
            &HireConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let s = &d5.sentences[0].sentence;
        let empty = TokenMemory::new();
        let mem = model.build_memory(std::slice::from_ref(s));
        let a = model.decode(s, &empty);
        let b = model.decode(s, &mem);
        for sp in a.iter().chain(b.iter()) {
            assert!(sp.end <= s.len());
        }
    }
}
