//! Microbenchmarks for the pooling / classifier kernels, scalar arm vs
//! lane-chunked SIMD arm — the numbers behind the "Data layout & SIMD"
//! section of DESIGN.md.
//!
//! Shapes mirror the hot path: 64-dim phrase embeddings for pooling, and
//! the entity classifier's 7→32 input layer (feature dim = 6 syntactic +
//! length) plus a wider 64→32 layer for the dense-embedding regime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let dim = 64;
    let x: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();
    let mut acc: Vec<f32> = (0..dim).map(|i| (i as f32).cos()).collect();
    let mut out = vec![0.0f32; dim];

    let mut g = c.benchmark_group("mean_pooling_64d");
    g.bench_function("accumulate_scalar", |b| {
        b.iter(|| emd_simd::scalar::add_assign(black_box(&mut acc), black_box(&x)))
    });
    g.bench_function("accumulate_simd", |b| {
        b.iter(|| emd_simd::simd::add_assign(black_box(&mut acc), black_box(&x)))
    });
    g.bench_function("divide_scalar", |b| {
        b.iter(|| emd_simd::scalar::div_into(black_box(&mut out), black_box(&acc), 17.0))
    });
    g.bench_function("divide_simd", |b| {
        b.iter(|| emd_simd::simd::div_into(black_box(&mut out), black_box(&acc), 17.0))
    });
    g.finish();

    for (label, in_dim, out_dim) in [("dense_7x32", 7usize, 32usize), ("dense_64x32", 64, 32)] {
        let x: Vec<f32> = (0..in_dim).map(|i| (i as f32 * 0.7).sin()).collect();
        let w: Vec<f32> = (0..in_dim * out_dim).map(|i| (i as f32).cos()).collect();
        let bias: Vec<f32> = (0..out_dim).map(|i| i as f32 * 0.01).collect();
        let mut y = vec![0.0f32; out_dim];

        let mut g = c.benchmark_group(label);
        g.bench_function("scalar", |b| {
            b.iter(|| {
                emd_simd::scalar::dense_forward(
                    black_box(&x),
                    black_box(&w),
                    black_box(&bias),
                    black_box(&mut y),
                )
            })
        });
        g.bench_function("simd", |b| {
            b.iter(|| {
                emd_simd::simd::dense_forward(
                    black_box(&x),
                    black_box(&w),
                    black_box(&bias),
                    black_box(&mut y),
                )
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
