//! # emd-simd
//!
//! Portable SIMD kernels for the pipeline's always-on inner loops:
//! embedding accumulation/pooling and the entity-classifier forward pass.
//!
//! ## Why "portable"
//!
//! Stable Rust has no `std::simd`, and this workspace vendors no intrinsics
//! crates. The [`simd`] arm instead uses the stable lane-width-chunking
//! idiom: slices are split with `chunks_exact(LANES)` and the fixed-size
//! bodies are written so LLVM's auto-vectorizer reliably emits vector
//! loads/stores and packed arithmetic (the chunking removes the bounds
//! checks and trip-count uncertainty that defeat vectorization of the
//! naive indexed loops in `emd-nn`). The [`scalar`] arm is the obvious
//! one-element-at-a-time loop.
//!
//! ## The bit-identity contract
//!
//! Every pair of arms computes **the same sequence of f32 operations per
//! output element** — kernels only ever vectorize *across independent
//! output lanes* (elementwise ops; the per-output-column accumulation of
//! the dense forward pass), never inside a reduction. IEEE-754 arithmetic
//! is deterministic per operation, so the two arms are bit-identical on
//! every input, including NaN/∞/subnormals — proptest-enforced in this
//! crate. That is what lets the scalar fallback hide behind a feature flag
//! without threatening any of the repo's bit-identity suites (windowed,
//! trace-replay, guard transparency, checkpoint round-trip).
//!
//! In particular [`dense_forward`] replicates `emd-nn`'s
//! `Matrix::matmul` contract exactly: ikj loop order, the `a == 0.0`
//! row-skip, accumulation from zero, bias added after the full
//! accumulation — so swapping the classifier/pooling hot path onto these
//! kernels changes no observable output anywhere in the pipeline.
//!
//! Dispatch: the crate-level functions forward to [`simd`] by default and
//! to [`scalar`] when the `force-scalar` feature is on (see `ci.sh`, which
//! tests both arms).

/// Lane width the chunked arm is written for. Eight f32 lanes = one AVX
/// register on x86-64, two NEON registers on aarch64; narrower targets
/// just see an unrolled-by-8 loop.
pub const LANES: usize = 8;

/// Which arm the dispatching entry points call in this build.
pub const ACTIVE_ARM: &str = if cfg!(feature = "force-scalar") {
    "scalar"
} else {
    "simd"
};

/// One-element-at-a-time reference implementations.
pub mod scalar {
    /// `acc[i] += x[i]` (embedding-sum accumulation).
    pub fn add_assign(acc: &mut [f32], x: &[f32]) {
        assert_eq!(acc.len(), x.len());
        for (a, &b) in acc.iter_mut().zip(x) {
            *a += b;
        }
    }

    /// `acc[i] = acc[i].max(x[i])` (max pooling).
    pub fn max_assign(acc: &mut [f32], x: &[f32]) {
        assert_eq!(acc.len(), x.len());
        for (a, &b) in acc.iter_mut().zip(x) {
            *a = a.max(b);
        }
    }

    /// `out[i] = x[i] / d` (mean pooling: sum ÷ count; division, not
    /// reciprocal-multiply, to stay bit-identical with the historical
    /// `global_embedding` path).
    pub fn div_into(out: &mut [f32], x: &[f32], d: f32) {
        assert_eq!(out.len(), x.len());
        for (o, &b) in out.iter_mut().zip(x) {
            *o = b / d;
        }
    }

    /// `xs[i] *= k` (the `Matrix::scale` op `row_mean` pools with).
    pub fn scale(xs: &mut [f32], k: f32) {
        for v in xs {
            *v *= k;
        }
    }

    /// `xs[i] = xs[i].max(0.0)` (classifier hidden activation).
    pub fn relu(xs: &mut [f32]) {
        for v in xs {
            *v = v.max(0.0);
        }
    }

    /// Single-row dense layer: `y = xW + b`, `w` row-major `[in, out]`.
    ///
    /// Replicates `Matrix::matmul`'s ikj order and `a == 0.0` skip, then
    /// `add_row_broadcast` — every `y[j]` sees the identical op sequence
    /// the `emd-nn` path produced.
    pub fn dense_forward(x: &[f32], w: &[f32], bias: &[f32], y: &mut [f32]) {
        let out = y.len();
        assert_eq!(bias.len(), out);
        assert_eq!(w.len(), x.len() * out);
        y.fill(0.0);
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let wrow = &w[k * out..(k + 1) * out];
            for (yj, &wj) in y.iter_mut().zip(wrow) {
                *yj += a * wj;
            }
        }
        for (yj, &bj) in y.iter_mut().zip(bias) {
            *yj += bj;
        }
    }
}

/// Lane-chunked implementations (LLVM auto-vectorizes the fixed-width
/// bodies). Per output element these perform exactly the ops of
/// [`scalar`] — see the crate docs for the bit-identity argument.
pub mod simd {
    use super::LANES;

    /// `acc[i] += x[i]`.
    pub fn add_assign(acc: &mut [f32], x: &[f32]) {
        assert_eq!(acc.len(), x.len());
        let mut ac = acc.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (a, b) in ac.by_ref().zip(xc.by_ref()) {
            for l in 0..LANES {
                a[l] += b[l];
            }
        }
        for (a, &b) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
            *a += b;
        }
    }

    /// `acc[i] = acc[i].max(x[i])`.
    pub fn max_assign(acc: &mut [f32], x: &[f32]) {
        assert_eq!(acc.len(), x.len());
        let mut ac = acc.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (a, b) in ac.by_ref().zip(xc.by_ref()) {
            for l in 0..LANES {
                a[l] = a[l].max(b[l]);
            }
        }
        for (a, &b) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
            *a = a.max(b);
        }
    }

    /// `out[i] = x[i] / d`.
    pub fn div_into(out: &mut [f32], x: &[f32], d: f32) {
        assert_eq!(out.len(), x.len());
        let mut oc = out.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (o, b) in oc.by_ref().zip(xc.by_ref()) {
            for l in 0..LANES {
                o[l] = b[l] / d;
            }
        }
        for (o, &b) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
            *o = b / d;
        }
    }

    /// `xs[i] *= k`.
    pub fn scale(xs: &mut [f32], k: f32) {
        let mut c = xs.chunks_exact_mut(LANES);
        for v in c.by_ref() {
            for e in v.iter_mut() {
                *e *= k;
            }
        }
        for v in c.into_remainder() {
            *v *= k;
        }
    }

    /// `xs[i] = xs[i].max(0.0)`.
    pub fn relu(xs: &mut [f32]) {
        let mut c = xs.chunks_exact_mut(LANES);
        for v in c.by_ref() {
            for e in v.iter_mut() {
                *e = e.max(0.0);
            }
        }
        for v in c.into_remainder() {
            *v = v.max(0.0);
        }
    }

    /// Single-row dense layer `y = xW + b`, vectorized across the output
    /// columns: each `y[j]` still accumulates sequentially over `k` in ikj
    /// order with the `a == 0.0` skip, so the reduction order — and hence
    /// every bit of the result — matches [`super::scalar::dense_forward`].
    pub fn dense_forward(x: &[f32], w: &[f32], bias: &[f32], y: &mut [f32]) {
        let out = y.len();
        assert_eq!(bias.len(), out);
        assert_eq!(w.len(), x.len() * out);
        y.fill(0.0);
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let wrow = &w[k * out..(k + 1) * out];
            let mut yc = y.chunks_exact_mut(LANES);
            let mut wc = wrow.chunks_exact(LANES);
            for (yv, wv) in yc.by_ref().zip(wc.by_ref()) {
                for l in 0..LANES {
                    yv[l] += a * wv[l];
                }
            }
            for (yj, &wj) in yc.into_remainder().iter_mut().zip(wc.remainder()) {
                *yj += a * wj;
            }
        }
        let mut yc = y.chunks_exact_mut(LANES);
        let mut bc = bias.chunks_exact(LANES);
        for (yv, bv) in yc.by_ref().zip(bc.by_ref()) {
            for l in 0..LANES {
                yv[l] += bv[l];
            }
        }
        for (yj, &bj) in yc.into_remainder().iter_mut().zip(bc.remainder()) {
            *yj += bj;
        }
    }
}

#[cfg(feature = "force-scalar")]
use scalar as active;
#[cfg(not(feature = "force-scalar"))]
use simd as active;

/// `acc[i] += x[i]` — dispatching entry point.
#[inline]
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    active::add_assign(acc, x)
}

/// `acc[i] = acc[i].max(x[i])` — dispatching entry point.
#[inline]
pub fn max_assign(acc: &mut [f32], x: &[f32]) {
    active::max_assign(acc, x)
}

/// `out[i] = x[i] / d` — dispatching entry point.
#[inline]
pub fn div_into(out: &mut [f32], x: &[f32], d: f32) {
    active::div_into(out, x, d)
}

/// `xs[i] *= k` — dispatching entry point.
#[inline]
pub fn scale(xs: &mut [f32], k: f32) {
    active::scale(xs, k)
}

/// `xs[i] = xs[i].max(0.0)` — dispatching entry point.
#[inline]
pub fn relu(xs: &mut [f32]) {
    active::relu(xs)
}

/// Single-row `y = xW + b` — dispatching entry point.
#[inline]
pub fn dense_forward(x: &[f32], w: &[f32], bias: &[f32], y: &mut [f32]) {
    active::dense_forward(x, w, bias, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Edge values every elementwise kernel pair is checked on: zeros of
    /// both signs, infinities, NaN, subnormals, and ordinary magnitudes.
    const EDGE: [f32; 10] = [
        0.0,
        -0.0,
        1.0,
        -1.5,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE / 2.0, // subnormal
        3.4e38,
        -7.25e-3,
    ];

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn arms_agree_on_edge_values() {
        // 33 elements: four full 8-lane chunks plus a remainder lane.
        let x: Vec<f32> = (0..33).map(|i| EDGE[i % EDGE.len()]).collect();
        let y: Vec<f32> = (0..33).map(|i| EDGE[(i * 3 + 1) % EDGE.len()]).collect();

        let (mut a, mut b) = (x.clone(), x.clone());
        scalar::add_assign(&mut a, &y);
        simd::add_assign(&mut b, &y);
        assert_eq!(bits(&a), bits(&b));

        let (mut a, mut b) = (x.clone(), x.clone());
        scalar::max_assign(&mut a, &y);
        simd::max_assign(&mut b, &y);
        assert_eq!(bits(&a), bits(&b));

        let (mut a, mut b) = (vec![0.0; 33], vec![0.0; 33]);
        scalar::div_into(&mut a, &x, 3.0);
        simd::div_into(&mut b, &x, 3.0);
        assert_eq!(bits(&a), bits(&b));

        let (mut a, mut b) = (x.clone(), x.clone());
        scalar::relu(&mut a);
        simd::relu(&mut b);
        assert_eq!(bits(&a), bits(&b));

        let (mut a, mut b) = (x.clone(), x.clone());
        scalar::scale(&mut a, 0.125);
        simd::scale(&mut b, 0.125);
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn dense_forward_matches_between_arms_with_zero_skip() {
        // x contains exact zeros so the skip path is exercised.
        let x = [0.5f32, 0.0, -2.0, 0.0, 1.25, 3.0e-7, 0.0];
        let w: Vec<f32> = (0..7 * 19).map(|i| (i as f32).sin()).collect();
        let bias: Vec<f32> = (0..19).map(|i| (i as f32) * 0.01 - 0.05).collect();
        let mut ys = vec![0.0f32; 19];
        let mut yv = vec![1.0f32; 19]; // stale contents must not leak through
        scalar::dense_forward(&x, &w, &bias, &mut ys);
        simd::dense_forward(&x, &w, &bias, &mut yv);
        assert_eq!(bits(&ys), bits(&yv));
    }

    #[test]
    fn dispatch_matches_feature() {
        if cfg!(feature = "force-scalar") {
            assert_eq!(ACTIVE_ARM, "scalar");
        } else {
            assert_eq!(ACTIVE_ARM, "simd");
        }
    }

    fn vec_strat(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(-1.0e3f32..1.0e3, 0..max_len)
    }

    proptest! {
        /// Elementwise kernels: scalar and SIMD arms are bit-identical on
        /// arbitrary finite inputs of arbitrary (mis)aligned lengths.
        #[test]
        fn elementwise_arms_bit_identical(x in vec_strat(64), seed in 0u32..1000) {
            let y: Vec<f32> = x.iter().enumerate()
                .map(|(i, v)| v * 0.37 + (i as f32) - seed as f32 * 0.01)
                .collect();

            let (mut a, mut b) = (x.clone(), x.clone());
            scalar::add_assign(&mut a, &y);
            simd::add_assign(&mut b, &y);
            prop_assert_eq!(bits(&a), bits(&b));

            let (mut a, mut b) = (x.clone(), x.clone());
            scalar::max_assign(&mut a, &y);
            simd::max_assign(&mut b, &y);
            prop_assert_eq!(bits(&a), bits(&b));

            let (mut a, mut b) = (vec![0.0; x.len()], vec![0.0; x.len()]);
            let d = 1.0 + seed as f32;
            scalar::div_into(&mut a, &x, d);
            simd::div_into(&mut b, &x, d);
            prop_assert_eq!(bits(&a), bits(&b));

            let (mut a, mut b) = (x.clone(), x.clone());
            scalar::relu(&mut a);
            simd::relu(&mut b);
            prop_assert_eq!(bits(&a), bits(&b));

            let (mut a, mut b) = (x.clone(), x.clone());
            scalar::scale(&mut a, 1.0 / d);
            simd::scale(&mut b, 1.0 / d);
            prop_assert_eq!(bits(&a), bits(&b));
        }

        /// Dense forward: both arms bit-identical for arbitrary layer
        /// shapes, including in/out dims that are not lane multiples.
        #[test]
        fn dense_forward_arms_bit_identical(
            in_dim in 0usize..12,
            out_dim in 0usize..20,
            pool in proptest::collection::vec(-50.0f32..50.0, 260),
        ) {
            let x: Vec<f32> = pool[..in_dim]
                .iter()
                // Plant exact zeros to hit the skip path.
                .map(|&v| if v.abs() < 5.0 { 0.0 } else { v })
                .collect();
            let w = &pool[in_dim..in_dim + in_dim * out_dim];
            let bias = &pool[240..240 + out_dim];
            let mut ys = vec![0.0f32; out_dim];
            let mut yv = vec![-1.0f32; out_dim];
            scalar::dense_forward(&x, w, bias, &mut ys);
            simd::dense_forward(&x, w, bias, &mut yv);
            prop_assert_eq!(bits(&ys), bits(&yv));
        }
    }
}
