//! Closed → Open → HalfOpen circuit breakers on a deterministic
//! batch-tick clock.
//!
//! A breaker guards one pipeline phase. While **Closed** it only counts:
//! `failure_threshold` *consecutive* failed passes trip it **Open**.
//! While Open the guarded phase is skipped outright — callers route work
//! through the cheap degraded path instead of burning retry budgets on a
//! phase that keeps dying. After `open_ticks` batch ticks the breaker
//! moves to **HalfOpen** and lets probes through on the normal schedule:
//! `half_open_probes` consecutive successes close it again; a single
//! failure re-opens it (with a fresh cooldown).
//!
//! Time is the supervisor's batch counter, not a wall clock, so a chaos
//! run with a fixed fault plan produces the exact same transition
//! timeline every time. External monitors (the `emd-sentinel` health
//! machine going Critical) can [`force_open`](CircuitBreaker::force_open)
//! a breaker regardless of its own failure count — the sense → act loop.

use serde::{Deserialize, Serialize};

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// The guarded phase is skipped; cooldown ticking.
    Open,
    /// Cooldown served; probes allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for reports and trace events.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Breaker knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failed passes that trip the breaker Open.
    pub failure_threshold: u32,
    /// Batch ticks the breaker stays Open before probing.
    pub open_ticks: u64,
    /// Consecutive successful probes that close a HalfOpen breaker.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_ticks: 8,
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    /// Reject nonsensical parameter combinations with a readable reason.
    pub fn validate(&self) -> Result<(), String> {
        if self.failure_threshold == 0 {
            return Err("breaker failure_threshold must be >= 1".to_string());
        }
        if self.open_ticks == 0 {
            return Err("breaker open_ticks must be >= 1".to_string());
        }
        if self.half_open_probes == 0 {
            return Err("breaker half_open_probes must be >= 1".to_string());
        }
        Ok(())
    }
}

/// One recorded state change, on the batch-tick clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerTransition {
    /// Tick the transition happened on.
    pub tick: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// What drove it (failure streak, cooldown served, probe outcome,
    /// or an external force-open).
    pub reason: String,
}

/// The breaker itself. Drive it with [`tick`](CircuitBreaker::tick) once
/// per batch and [`record_success`](CircuitBreaker::record_success) /
/// [`record_failure`](CircuitBreaker::record_failure) once per guarded
/// pass; consult [`allows`](CircuitBreaker::allows) before running the
/// phase.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    tick: u64,
    consecutive_failures: u32,
    opened_at: u64,
    probe_successes: u32,
}

impl CircuitBreaker {
    /// A Closed breaker under the given (pre-validated) config.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            tick: 0,
            consecutive_failures: 0,
            opened_at: 0,
            probe_successes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// True when the guarded phase should run (Closed, or HalfOpen
    /// probing); false when it should take the degraded path instead.
    pub fn allows(&self) -> bool {
        self.state != BreakerState::Open
    }

    /// Advance the batch clock; an Open breaker whose cooldown is served
    /// moves to HalfOpen.
    pub fn tick(&mut self) -> Option<BreakerTransition> {
        self.tick += 1;
        if self.state == BreakerState::Open && self.tick >= self.opened_at + self.cfg.open_ticks {
            self.probe_successes = 0;
            return Some(self.transition(BreakerState::HalfOpen, "cooldown served; probing"));
        }
        None
    }

    /// Record one successful guarded pass.
    pub fn record_success(&mut self) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                None
            }
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.half_open_probes {
                    self.consecutive_failures = 0;
                    Some(self.transition(
                        BreakerState::Closed,
                        &format!("{} successful probes", self.probe_successes),
                    ))
                } else {
                    None
                }
            }
            BreakerState::Open => None,
        }
    }

    /// Record one failed guarded pass (`reason` = the persistent-failure
    /// message).
    pub fn record_failure(&mut self, reason: &str) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.opened_at = self.tick;
                    Some(self.transition(
                        BreakerState::Open,
                        &format!(
                            "{} consecutive failures: {reason}",
                            self.consecutive_failures
                        ),
                    ))
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                self.opened_at = self.tick;
                Some(self.transition(BreakerState::Open, &format!("probe failed: {reason}")))
            }
            BreakerState::Open => None,
        }
    }

    /// Trip the breaker Open regardless of its failure count — the hook
    /// for external monitors (sentinel Critical). An already-Open breaker
    /// restarts its cooldown without emitting a transition.
    pub fn force_open(&mut self, reason: &str) -> Option<BreakerTransition> {
        self.opened_at = self.tick;
        if self.state == BreakerState::Open {
            return None;
        }
        Some(self.transition(BreakerState::Open, reason))
    }

    fn transition(&mut self, to: BreakerState, reason: &str) -> BreakerTransition {
        let t = BreakerTransition {
            tick: self.tick,
            from: self.state,
            to,
            reason: reason.to_string(),
        };
        self.state = to;
        if to != BreakerState::Open {
            self.consecutive_failures = 0;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ticks: u64, probes: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_ticks,
            half_open_probes: probes,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker(3, 4, 1);
        assert!(b.record_failure("x").is_none());
        assert!(b.record_failure("x").is_none());
        assert!(b.record_success().is_none(), "success resets the streak");
        assert!(b.record_failure("x").is_none());
        assert!(b.record_failure("x").is_none());
        let t = b.record_failure("boom").expect("third consecutive trips");
        assert_eq!((t.from, t.to), (BreakerState::Closed, BreakerState::Open));
        assert!(t.reason.contains("boom"));
        assert!(!b.allows());
    }

    #[test]
    fn cooldown_then_probe_then_close() {
        let mut b = breaker(1, 3, 2);
        b.tick();
        b.record_failure("x").expect("threshold 1 trips instantly");
        for _ in 0..2 {
            assert!(b.tick().is_none(), "cooldown not served yet");
            assert!(!b.allows());
        }
        let t = b.tick().expect("cooldown served");
        assert_eq!(t.to, BreakerState::HalfOpen);
        assert!(b.allows(), "probes pass through");
        assert!(b.record_success().is_none(), "one probe is not enough");
        let t = b.record_success().expect("second probe closes");
        assert_eq!(t.to, BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = breaker(1, 2, 1);
        b.record_failure("x").unwrap();
        b.tick();
        let t = b.tick().expect("half-open");
        assert_eq!(t.to, BreakerState::HalfOpen);
        let t = b.record_failure("still broken").expect("reopens");
        assert_eq!(t.to, BreakerState::Open);
        assert!(b.tick().is_none(), "cooldown restarted");
        assert!(b.tick().expect("served again").to == BreakerState::HalfOpen);
    }

    #[test]
    fn force_open_overrides_and_is_idempotent() {
        let mut b = breaker(100, 2, 1);
        let t = b.force_open("sentinel critical").expect("trips");
        assert_eq!(t.to, BreakerState::Open);
        assert!(b.tick().is_none());
        assert!(
            b.force_open("again").is_none(),
            "already open: no event, but the cooldown restarts"
        );
        assert!(b.tick().is_none(), "one tick into the restarted cooldown");
        assert_eq!(b.tick().unwrap().to, BreakerState::HalfOpen);
    }

    #[test]
    fn validation_rejects_zeroes() {
        assert!(BreakerConfig::default().validate().is_ok());
        for bad in [
            BreakerConfig {
                failure_threshold: 0,
                ..Default::default()
            },
            BreakerConfig {
                open_ticks: 0,
                ..Default::default()
            },
            BreakerConfig {
                half_open_probes: 0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn transition_serde_round_trip() {
        let t = BreakerTransition {
            tick: 7,
            from: BreakerState::Closed,
            to: BreakerState::Open,
            reason: "3 consecutive failures".to_string(),
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: BreakerTransition = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
