//! Exponential backoff with deterministic, seeded jitter.
//!
//! The supervisor charges each computed delay against the batch's
//! deadline budget whether or not it actually sleeps, so retry *cost
//! accounting* is identical in tests (which never sleep) and production
//! (which may). Jitter is derived from a splitmix64 hash of
//! `(seed, salt, attempt)` — no clocks, no global RNG — so two runs with
//! the same policy and salts produce byte-identical delay sequences.

use serde::{Deserialize, Serialize};

/// Exponential backoff policy: `base · factor^(attempt-1)`, jittered by
/// `±jitter_frac`, capped at `max_ns`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in nanoseconds. `0` disables
    /// backoff entirely (immediate retries, the pre-guard behaviour).
    pub base_ns: u64,
    /// Multiplier applied per additional failed attempt (≥ 1.0).
    pub factor: f64,
    /// Upper bound on any single delay, in nanoseconds.
    pub max_ns: u64,
    /// Jitter amplitude as a fraction of the raw delay, in `[0, 1)`:
    /// the jittered delay lands in `raw · [1-jitter_frac, 1+jitter_frac]`.
    pub jitter_frac: f64,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ns: 1_000_000, // 1 ms
            factor: 2.0,
            max_ns: 500_000_000, // 0.5 s
            jitter_frac: 0.1,
            seed: 42,
        }
    }
}

/// splitmix64: the standard 64-bit finalizer — dependency-free and good
/// enough to decorrelate per-batch delay sequences.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BackoffPolicy {
    /// A policy that never delays (immediate retries).
    pub fn none() -> Self {
        BackoffPolicy {
            base_ns: 0,
            factor: 1.0,
            max_ns: 0,
            jitter_frac: 0.0,
            seed: 0,
        }
    }

    /// True when this policy never produces a delay.
    pub fn is_none(&self) -> bool {
        self.base_ns == 0
    }

    /// The delay to wait before retry number `attempt` (1-based: the
    /// first retry is attempt 1). `salt` decorrelates independent retry
    /// sequences (the supervisor passes the batch index) so concurrent
    /// streams sharing a policy do not thundering-herd in lockstep.
    pub fn delay_ns(&self, attempt: u32, salt: u64) -> u64 {
        if self.base_ns == 0 || attempt == 0 {
            return 0;
        }
        let raw = (self.base_ns as f64) * self.factor.max(1.0).powi(attempt as i32 - 1);
        let raw = raw.min(self.max_ns as f64);
        let jf = self.jitter_frac.clamp(0.0, 0.999_999);
        let jittered = if jf == 0.0 {
            raw
        } else {
            let h = splitmix64(self.seed ^ salt.rotate_left(17) ^ (attempt as u64));
            // Uniform in [0, 1): take the top 53 bits.
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            raw * (1.0 - jf + 2.0 * jf * u)
        };
        (jittered.min(self.max_ns as f64)) as u64
    }

    /// Reject nonsensical parameter combinations with a readable reason.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_ns > 0 && self.max_ns < self.base_ns {
            return Err(format!(
                "backoff max_ns ({}) below base_ns ({})",
                self.max_ns, self.base_ns
            ));
        }
        if !self.factor.is_finite() || self.factor < 1.0 {
            return Err(format!(
                "backoff factor {} must be finite and >= 1",
                self.factor
            ));
        }
        if !self.jitter_frac.is_finite() || !(0.0..1.0).contains(&self.jitter_frac) {
            return Err(format!(
                "backoff jitter_frac {} must be in [0, 1)",
                self.jitter_frac
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_delays() {
        let p = BackoffPolicy::none();
        assert!(p.is_none());
        for a in 0..10 {
            assert_eq!(p.delay_ns(a, 7), 0);
        }
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let p = BackoffPolicy {
            base_ns: 100,
            factor: 2.0,
            max_ns: 1000,
            jitter_frac: 0.0,
            seed: 0,
        };
        assert_eq!(p.delay_ns(1, 0), 100);
        assert_eq!(p.delay_ns(2, 0), 200);
        assert_eq!(p.delay_ns(3, 0), 400);
        assert_eq!(p.delay_ns(4, 0), 800);
        assert_eq!(p.delay_ns(5, 0), 1000, "capped at max_ns");
        assert_eq!(p.delay_ns(20, 0), 1000);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = BackoffPolicy {
            base_ns: 1_000_000,
            factor: 2.0,
            max_ns: 1_000_000_000,
            jitter_frac: 0.25,
            seed: 99,
        };
        for salt in [0u64, 1, 12345] {
            for attempt in 1..8u32 {
                let d1 = p.delay_ns(attempt, salt);
                let d2 = p.delay_ns(attempt, salt);
                assert_eq!(d1, d2, "same inputs, same delay");
                let raw = 1_000_000.0 * 2f64.powi(attempt as i32 - 1);
                let raw = raw.min(1e9);
                assert!(
                    (d1 as f64) >= raw * 0.75 - 1.0 && (d1 as f64) <= raw * 1.25 + 1.0,
                    "attempt {attempt} salt {salt}: {d1} outside ±25% of {raw}"
                );
            }
        }
        // Different salts decorrelate the sequence.
        let a: Vec<u64> = (1..6).map(|i| p.delay_ns(i, 1)).collect();
        let b: Vec<u64> = (1..6).map(|i| p.delay_ns(i, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(BackoffPolicy::default().validate().is_ok());
        assert!(BackoffPolicy::none().validate().is_ok());
        let bad = BackoffPolicy {
            max_ns: 10,
            base_ns: 100,
            ..BackoffPolicy::default()
        };
        assert!(bad.validate().is_err());
        let bad = BackoffPolicy {
            factor: 0.5,
            ..BackoffPolicy::default()
        };
        assert!(bad.validate().is_err());
        let bad = BackoffPolicy {
            jitter_frac: 1.5,
            ..BackoffPolicy::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = BackoffPolicy::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: BackoffPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
