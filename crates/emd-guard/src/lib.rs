//! # emd-guard
//!
//! The self-healing overload runtime for unattended streams: the
//! mechanisms that let the pipeline *act* on trouble instead of merely
//! observing it (`emd-sentinel`) or surviving it one fault at a time
//! (`emd-resilience`). Three primitives, all deterministic — no wall
//! clocks, no global RNG — so guarded chaos runs are exactly
//! reproducible:
//!
//! * [`backoff`] — exponential retry backoff with seeded splitmix64
//!   jitter; delays are *charged* against per-batch deadline budgets
//!   whether or not the caller actually sleeps.
//! * [`admission`] — a bounded ingest queue with overload policies
//!   (reject-new, drop-oldest, shed-to-local-only), per-batch cost
//!   estimates, and hysteresis watermark backpressure.
//! * [`breaker`] — Closed → Open → HalfOpen circuit breakers on a
//!   batch-tick clock, tripped by consecutive persistent failures or
//!   forced open by external monitors (sentinel Critical transitions).
//!
//! The degradation ladder they implement, mildest first: **backoff**
//! (retry later, bounded by the deadline) → **shed** (refuse new work at
//! the door, cheapest loss) → **breaker open** (skip a dying phase,
//! degrade its candidates to the LocalOnly path) → **dead-letter**
//! (persist the batch for post-fix replay). `emd-core`'s
//! `StreamSupervisor` and `Globalizer` wire these into the pipeline; see
//! DESIGN.md § "Failure model".
//!
//! The crate sits at the bottom of the graph (serde shim only): policy
//! mechanics live here, pipeline integration lives above.

pub mod admission;
pub mod backoff;
pub mod breaker;

pub use admission::{AdmissionConfig, AdmissionQueue, OverloadPolicy, Shed};
pub use backoff::BackoffPolicy;
pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
