//! Bounded admission queue with configurable overload policies and
//! watermark-based backpressure.
//!
//! The queue sits in front of the stream supervisor: arriving batches
//! are *offered* with a cost estimate (the supervisor uses sentence
//! count), and when admitting one would push the queued load past
//! capacity the configured [`OverloadPolicy`] decides who pays — the
//! newcomer ([`OverloadPolicy::RejectNew`] /
//! [`OverloadPolicy::ShedToLocalOnly`]) or the oldest queued work
//! ([`OverloadPolicy::DropOldest`]). Every decision is a pure function
//! of the offer sequence, so burst behaviour is exactly reproducible.
//!
//! Backpressure is a hysteresis bit over the load fraction: it raises at
//! `high_watermark` and clears only at `low_watermark`, so a producer
//! polling [`AdmissionQueue::backpressure`] sees a stable signal instead
//! of one flapping around a single threshold.

use serde::{Deserialize, Serialize};

/// What to do with work that does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadPolicy {
    /// Refuse the arriving batch; the supervisor records a quarantine
    /// entry per rejected sentence so the loss is fully accounted.
    RejectNew,
    /// Evict the oldest queued batches until the newcomer fits (freshest
    /// data wins — the right trade for monitoring streams).
    DropOldest,
    /// Refuse the arriving batch for *global* processing but run the
    /// cheap Local EMD pass over it, so detections the wrapped system
    /// can make on its own are not lost with the batch.
    ShedToLocalOnly,
}

impl OverloadPolicy {
    /// Stable lowercase name for reports and trace events.
    pub fn name(&self) -> &'static str {
        match self {
            OverloadPolicy::RejectNew => "reject-new",
            OverloadPolicy::DropOldest => "drop-oldest",
            OverloadPolicy::ShedToLocalOnly => "shed-to-local-only",
        }
    }
}

/// Admission-control knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum queued load, in cost units (the supervisor costs a batch
    /// at its sentence count).
    pub capacity: u64,
    /// Who pays when an offer would exceed capacity.
    pub policy: OverloadPolicy,
    /// Load fraction at which the backpressure signal raises.
    pub high_watermark: f64,
    /// Load fraction at which the raised signal clears (must be ≤ high).
    pub low_watermark: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 4096,
            policy: OverloadPolicy::RejectNew,
            high_watermark: 0.8,
            low_watermark: 0.5,
        }
    }
}

impl AdmissionConfig {
    /// Reject nonsensical parameter combinations with a readable reason.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("admission capacity must be >= 1".to_string());
        }
        if !self.high_watermark.is_finite()
            || !self.low_watermark.is_finite()
            || !(0.0..=1.0).contains(&self.high_watermark)
            || !(0.0..=1.0).contains(&self.low_watermark)
        {
            return Err("admission watermarks must be finite fractions in [0, 1]".to_string());
        }
        if self.low_watermark > self.high_watermark {
            return Err(format!(
                "low watermark ({}) above high watermark ({})",
                self.low_watermark, self.high_watermark
            ));
        }
        Ok(())
    }
}

/// One shed decision: the item that was turned away (or evicted) and the
/// policy that did it.
#[derive(Debug, Clone, PartialEq)]
pub struct Shed<T> {
    /// The work unit that lost its seat.
    pub item: T,
    /// Its cost estimate at offer time.
    pub cost: u64,
    /// The policy that shed it.
    pub policy: OverloadPolicy,
}

/// Bounded FIFO of `(item, cost)` pairs with overload shedding and a
/// hysteresis backpressure bit.
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T> {
    cfg: AdmissionConfig,
    queue: std::collections::VecDeque<(T, u64)>,
    load: u64,
    backpressure: bool,
    offered: u64,
    admitted: u64,
    shed: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue under the given (pre-validated) config.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionQueue {
            cfg,
            queue: std::collections::VecDeque::new(),
            load: 0,
            backpressure: false,
            offered: 0,
            admitted: 0,
            shed: 0,
        }
    }

    /// Offer one work unit. Returns the items shed by this offer (empty
    /// when the newcomer was admitted without evicting anyone). A unit
    /// whose cost alone exceeds capacity can never fit and is always
    /// shed, regardless of policy.
    pub fn offer(&mut self, item: T, cost: u64) -> Vec<Shed<T>> {
        self.offered += 1;
        let mut out = Vec::new();
        if cost > self.cfg.capacity {
            self.shed += 1;
            out.push(Shed {
                item,
                cost,
                policy: self.cfg.policy,
            });
            self.update_backpressure();
            return out;
        }
        if self.load + cost > self.cfg.capacity {
            match self.cfg.policy {
                OverloadPolicy::RejectNew | OverloadPolicy::ShedToLocalOnly => {
                    self.shed += 1;
                    out.push(Shed {
                        item,
                        cost,
                        policy: self.cfg.policy,
                    });
                    self.update_backpressure();
                    return out;
                }
                OverloadPolicy::DropOldest => {
                    while self.load + cost > self.cfg.capacity {
                        let (old, old_cost) = self
                            .queue
                            .pop_front()
                            .expect("load > 0 while over capacity");
                        self.load -= old_cost;
                        self.shed += 1;
                        out.push(Shed {
                            item: old,
                            cost: old_cost,
                            policy: OverloadPolicy::DropOldest,
                        });
                    }
                }
            }
        }
        self.admitted += 1;
        self.load += cost;
        self.queue.push_back((item, cost));
        self.update_backpressure();
        out
    }

    /// Take the oldest queued unit for servicing.
    pub fn pop(&mut self) -> Option<(T, u64)> {
        let next = self.queue.pop_front();
        if let Some((_, cost)) = &next {
            self.load -= cost;
            self.update_backpressure();
        }
        next
    }

    fn update_backpressure(&mut self) {
        let cap = self.cfg.capacity as f64;
        let frac = self.load as f64 / cap;
        if self.backpressure {
            if frac <= self.cfg.low_watermark {
                self.backpressure = false;
            }
        } else if frac >= self.cfg.high_watermark {
            self.backpressure = true;
        }
    }

    /// Current queued load, in cost units.
    pub fn load(&self) -> u64 {
        self.load
    }

    /// Number of queued units.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The hysteresis backpressure signal: raised at the high watermark,
    /// cleared at the low one.
    pub fn backpressure(&self) -> bool {
        self.backpressure
    }

    /// `(offered, admitted, shed)` lifetime counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.offered, self.admitted, self.shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: u64, policy: OverloadPolicy) -> AdmissionConfig {
        AdmissionConfig {
            capacity,
            policy,
            high_watermark: 0.8,
            low_watermark: 0.5,
        }
    }

    #[test]
    fn admits_until_capacity_then_rejects_new() {
        let mut q = AdmissionQueue::new(cfg(10, OverloadPolicy::RejectNew));
        assert!(q.offer("a", 4).is_empty());
        assert!(q.offer("b", 4).is_empty());
        let shed = q.offer("c", 4);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].item, "c");
        assert_eq!(shed[0].policy, OverloadPolicy::RejectNew);
        assert_eq!(q.len(), 2);
        assert_eq!(q.load(), 8);
        assert_eq!(q.stats(), (3, 2, 1));
    }

    #[test]
    fn drop_oldest_evicts_until_newcomer_fits() {
        let mut q = AdmissionQueue::new(cfg(10, OverloadPolicy::DropOldest));
        q.offer(1, 4);
        q.offer(2, 4);
        let shed = q.offer(3, 8);
        assert_eq!(shed.len(), 2, "both old batches evicted for one big one");
        assert_eq!(shed[0].item, 1);
        assert_eq!(shed[1].item, 2);
        assert_eq!(q.pop(), Some((3, 8)));
        assert!(q.is_empty());
    }

    #[test]
    fn oversized_unit_is_always_shed() {
        let mut q = AdmissionQueue::new(cfg(10, OverloadPolicy::DropOldest));
        q.offer(1, 2);
        let shed = q.offer(2, 11);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].item, 2);
        assert_eq!(q.len(), 1, "queued work untouched by an impossible offer");
    }

    #[test]
    fn backpressure_has_hysteresis() {
        let mut q = AdmissionQueue::new(cfg(10, OverloadPolicy::RejectNew));
        q.offer("a", 7);
        assert!(!q.backpressure(), "70% < high watermark");
        q.offer("b", 2);
        assert!(q.backpressure(), "90% >= high watermark");
        q.pop();
        // 20% <= low watermark: clears.
        assert!(!q.backpressure());
        // Raise again, then drain to 60%: between the watermarks the
        // raised signal must hold.
        q.offer("c", 6);
        assert!(q.backpressure());
        q.pop();
        assert!(q.backpressure(), "60% is above the low watermark");
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = AdmissionQueue::new(cfg(100, OverloadPolicy::RejectNew));
        for i in 0..5 {
            q.offer(i, 10);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(i, _)| i)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(AdmissionConfig::default().validate().is_ok());
        assert!(cfg(0, OverloadPolicy::RejectNew).validate().is_err());
        let bad = AdmissionConfig {
            low_watermark: 0.9,
            high_watermark: 0.5,
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AdmissionConfig {
            high_watermark: 1.5,
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
