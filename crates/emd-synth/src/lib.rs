//! # emd-synth
//!
//! Generative model of targeted microblog streams — the data substrate
//! standing in for the paper's crawled Twitter datasets (D1–D4, D5) and the
//! WNUT17/BTC benchmark corpora (see DESIGN.md for the substitution
//! argument).
//!
//! The generator preserves the properties the EMD Globalizer framework
//! depends on:
//!
//! * **topical streams repeat a finite entity set** — a [`topics::Topic`]
//!   owns a catalog of focus entities sampled with a Zipf distribution, so
//!   a few entities recur heavily and a long tail appears once or twice
//!   (the regime of the paper's Figure 7),
//! * **mentions vary in surface form** — every [`entities::Entity`] has
//!   case variants, partial forms and abbreviations ([`entities`]),
//! * **text is noisy** — ALL-CAPS sentences, lowercased entities,
//!   elongations, typos, hashtags/mentions/URLs ([`noise`]),
//! * **non-streaming corpora lack recurrence** — the WNUT17/BTC-like
//!   builders sample fresh topics and entities per message
//!   ([`datasets`]).
//!
//! Everything is seeded and bit-for-bit reproducible.

pub mod datasets;
pub mod entities;
pub mod longhorizon;
pub mod noise;
pub mod stream;
pub mod sts;
pub mod templates;
pub mod topics;
pub mod zipf;

pub use datasets::{standard_datasets, training_stream, StandardDatasets};
pub use entities::{Entity, World, WorldConfig};
pub use longhorizon::{gen_burst_stream, gen_churn_stream, gen_drift_stream};
pub use stream::{gen_random_sample, gen_stream, NoiseConfig};
