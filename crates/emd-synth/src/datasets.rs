//! Standard dataset suite mirroring Table I of the paper.
//!
//! | Name    | Kind          | Size | Topics | Role                          |
//! |---------|---------------|------|--------|-------------------------------|
//! | D1      | streaming     | 1000 | 1      | politics stream               |
//! | D2      | streaming     | 2000 | 1      | Covid-19 (health) stream      |
//! | D3      | streaming     | 3000 | 3      | mixed stream                  |
//! | D4      | streaming     | 6000 | 5      | mixed stream                  |
//! | WNUT17  | non-streaming | 1500 | ~per-message | benchmark-style sample  |
//! | BTC     | non-streaming | 5000 | ~per-message | benchmark-style sample  |
//! | D5      | streaming     | 38000| 1      | training stream (classifier)  |
//!
//! Sizes match the paper where stated; BTC is scaled from 9.5K to 5K tweets
//! to keep the full experiment suite fast on a laptop (documented in
//! EXPERIMENTS.md — relative shapes are unaffected).

use crate::entities::{World, WorldConfig};
use crate::stream::{gen_random_sample, gen_stream, NoiseConfig};
use crate::templates::Domain;
use crate::topics::Topic;
use emd_text::token::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fraction of evaluation-stream focus entities drawn from the established
/// pool; the rest are emerging (unseen in the D5 training stream).
pub const EVAL_ESTABLISHED: f64 = 0.25;

/// The full evaluation suite: D1–D4 plus the two non-streaming corpora.
#[derive(Debug, Clone)]
pub struct StandardDatasets {
    /// The shared entity world (gazetteer source).
    pub world: World,
    /// Evaluation datasets in Table-III order:
    /// D1, D2, D3, D4, WNUT17, BTC.
    pub datasets: Vec<Dataset>,
}

impl StandardDatasets {
    /// Streaming subset (D1–D4).
    pub fn streaming(&self) -> Vec<&Dataset> {
        self.datasets
            .iter()
            .filter(|d| d.name.starts_with('D'))
            .collect()
    }

    /// Non-streaming subset (WNUT17, BTC).
    pub fn non_streaming(&self) -> Vec<&Dataset> {
        self.datasets
            .iter()
            .filter(|d| !d.name.starts_with('D'))
            .collect()
    }
}

/// Generate the paper's evaluation datasets (Table I).
///
/// `scale` in `(0, 1]` shrinks every dataset proportionally — used by the
/// benchmark harness and tests; experiments use `scale = 1.0`.
pub fn standard_datasets(seed: u64, scale: f64) -> StandardDatasets {
    assert!(scale > 0.0 && scale <= 1.0);
    let world = World::generate(&WorldConfig {
        seed,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
    let noise = NoiseConfig::default();
    let sz = |n: usize| ((n as f64 * scale) as usize).max(20);

    // D1: single politics stream.
    let t1 = vec![Topic::generate_mixed(
        &world,
        Domain::Politics,
        60,
        Some(EVAL_ESTABLISHED),
        &mut rng,
    )];
    let d1 = gen_stream(&world, &t1, sz(1000), "D1", &noise, seed ^ 1);

    // D2: the Covid-19 stream of the case study.
    let t2 = vec![Topic::generate_mixed(
        &world,
        Domain::Health,
        80,
        Some(EVAL_ESTABLISHED),
        &mut rng,
    )];
    let d2 = gen_stream(&world, &t2, sz(2000), "D2", &noise, seed ^ 2);

    // D3: three topics.
    let t3 = vec![
        Topic::generate_mixed(&world, Domain::Sports, 60, Some(EVAL_ESTABLISHED), &mut rng),
        Topic::generate_mixed(
            &world,
            Domain::Entertainment,
            60,
            Some(EVAL_ESTABLISHED),
            &mut rng,
        ),
        Topic::generate_mixed(
            &world,
            Domain::Science,
            60,
            Some(EVAL_ESTABLISHED),
            &mut rng,
        ),
    ];
    let d3 = gen_stream(&world, &t3, sz(3000), "D3", &noise, seed ^ 3);

    // D4: five topics, one per domain.
    let t4: Vec<Topic> = Domain::all()
        .iter()
        .map(|&d| Topic::generate_mixed(&world, d, 70, Some(EVAL_ESTABLISHED), &mut rng))
        .collect();
    let d4 = gen_stream(&world, &t4, sz(6000), "D4", &noise, seed ^ 4);

    // Non-streaming benchmarks.
    let wnut = gen_random_sample(&world, sz(1500), "WNUT17", &noise, seed ^ 5);
    let btc = gen_random_sample(&world, sz(5000), "BTC", &noise, seed ^ 6);

    StandardDatasets {
        world,
        datasets: vec![d1, d2, d3, d4, wnut, btc],
    }
}

/// Generate D5 — the 38K-tweet training stream used to supervise the
/// Entity Classifier (and, in this reproduction, to train the Local EMD
/// systems). `scale` as in [`standard_datasets`].
pub fn training_stream(seed: u64, scale: f64) -> (World, Dataset) {
    assert!(scale > 0.0 && scale <= 1.0);
    let world = World::generate(&WorldConfig {
        seed,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd5d5);
    // A broad stream mixing all domains — rich supervision.
    // Training streams only see established entities: evaluation streams
    // are dominated by entities that emerge later, the regime the paper
    // (and WNUT17) targets.
    // D5 is itself a live stream: mostly established entities, with some
    // novel ones emerging — so the Entity Classifier's training data covers
    // the emerging-entity regime the evaluation streams are dominated by.
    let topics: Vec<Topic> = Domain::all()
        .iter()
        .map(|&d| Topic::generate_mixed(&world, d, 90, Some(0.85), &mut rng))
        .collect();
    let n = ((38_000f64 * scale) as usize).max(50);
    let d5 = gen_stream(&world, &topics, n, "D5", &NoiseConfig::default(), seed ^ 7);
    (world, d5)
}

/// Generate a *generic* training corpus from a **disjoint world** — the
/// analog of WNUT17-train / Ritter's annotations on which the paper's
/// off-the-shelf local EMD systems were originally trained. Entities,
/// vocabulary and gazetteer are unrelated to the evaluation world, so
/// evaluation entities are out-of-vocabulary for the local systems, exactly
/// as production EMD tools face emerging entities.
pub fn generic_training_corpus(seed: u64, scale: f64) -> (World, Dataset) {
    assert!(scale > 0.0 && scale <= 1.0);
    // Different seed-space → different entity catalog.
    let world = World::generate(&WorldConfig {
        seed: seed ^ 0x7e57_0000,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e57_0001);
    let topics: Vec<Topic> = Domain::all()
        .iter()
        .map(|&d| Topic::generate(&world, d, 90, &mut rng))
        .collect();
    let n = ((4_000f64 * scale.max(0.25)) as usize).max(400);
    let corpus = gen_stream(
        &world,
        &topics,
        n,
        "WNUT17-train",
        &NoiseConfig::default(),
        seed ^ 0x7e57_0002,
    );
    (world, corpus)
}

/// Per-dataset statistics for Table I.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of messages.
    pub size: usize,
    /// Number of distinct topics.
    pub n_topics: usize,
    /// Number of distinct hashtags observed.
    pub n_hashtags: usize,
    /// Number of unique entities (case-insensitive surfaces).
    pub n_entities: usize,
    /// Total gold mentions.
    pub n_mentions: usize,
}

/// Compute Table-I statistics for a dataset.
pub fn stats(d: &Dataset) -> DatasetStats {
    let mut hashtags = std::collections::HashSet::new();
    for s in &d.sentences {
        for t in s.sentence.texts() {
            if t.starts_with('#') && t.len() > 1 {
                hashtags.insert(t.to_lowercase());
            }
        }
    }
    DatasetStats {
        name: d.name.clone(),
        size: d.len(),
        n_topics: d.n_topics,
        n_hashtags: hashtags.len(),
        n_entities: d.n_unique_entities(),
        n_mentions: d.n_mentions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::DatasetKind;

    #[test]
    fn suite_has_six_datasets_in_order() {
        let s = standard_datasets(3, 0.05);
        let names: Vec<&str> = s.datasets.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["D1", "D2", "D3", "D4", "WNUT17", "BTC"]);
    }

    #[test]
    fn kinds_are_correct() {
        let s = standard_datasets(3, 0.05);
        for d in s.streaming() {
            assert_eq!(d.kind, DatasetKind::Streaming);
        }
        for d in s.non_streaming() {
            assert_eq!(d.kind, DatasetKind::NonStreaming);
        }
        assert_eq!(s.streaming().len(), 4);
        assert_eq!(s.non_streaming().len(), 2);
    }

    #[test]
    fn scaling_controls_size() {
        let s = standard_datasets(3, 0.02);
        assert!(s.datasets[0].len() >= 20);
        assert!(s.datasets[0].len() < 100);
    }

    #[test]
    fn training_stream_is_large_and_streaming() {
        let (_, d5) = training_stream(3, 0.01);
        assert_eq!(d5.name, "D5");
        assert_eq!(d5.kind, DatasetKind::Streaming);
        assert!(d5.len() >= 300);
    }

    #[test]
    fn stats_fields_populated() {
        let s = standard_datasets(3, 0.05);
        let st = stats(&s.datasets[1]);
        assert_eq!(st.name, "D2");
        assert!(st.n_entities > 0);
        assert!(st.n_mentions >= st.n_entities);
        assert!(st.n_hashtags > 0);
    }

    #[test]
    fn world_shared_across_datasets() {
        // Entities in D1 should come from the same world as the gazetteer.
        let s = standard_datasets(3, 0.05);
        let d1 = &s.datasets[0];
        let mut covered = 0usize;
        let mut total = 0usize;
        for sent in &d1.sentences {
            for sp in &sent.gold {
                total += 1;
                if s.world.gazetteer.contains_any(&sp.surface(&sent.sentence)) {
                    covered += 1;
                }
            }
        }
        assert!(total > 0);
        // Gazetteer covers only full proper forms of ~45% of entities, so
        // coverage must be partial but non-zero.
        assert!(covered > 0, "no gazetteer coverage at all");
        assert!(covered < total, "gazetteer should not cover everything");
    }
}
