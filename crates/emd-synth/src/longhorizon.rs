//! Long-horizon stream scenarios: topic drift, catalog churn, and entity
//! bursts.
//!
//! The standard [`crate::gen_stream`] builder models a *stationary*
//! targeted stream — one topic set, one entity catalog, forever. That is
//! the wrong substrate for soak-testing bounded-memory streaming: under a
//! stationary stream the candidate pool converges after a few thousand
//! messages and eviction pressure stops exercising anything interesting.
//! Real targeted streams are non-stationary in (at least) three ways, each
//! of which this module models as a seeded, deterministic generator:
//!
//! * **drift** ([`gen_drift_stream`]) — the conversation moves on: every
//!   epoch the stream jumps to a fresh topic (rotating domains), so old
//!   entities stop recurring entirely and the live window's vocabulary
//!   turns over wholesale. Exercises eviction of whole topic eras and
//!   frequency-decay pruning of the abandoned catalog.
//! * **churn** ([`gen_churn_stream`]) — the cast rotates gradually: one
//!   long-lived topic whose focus catalog has a slice of its entries
//!   replaced at a fixed cadence. Head entities persist for many windows
//!   while tail entities come and go — the regime where pruning must
//!   drop cold candidates *without* touching the recurring head.
//! * **burst** ([`gen_burst_stream`]) — a background stream periodically
//!   interrupted by a hot entity that dominates the next stretch of
//!   messages, then vanishes. Exercises sudden candidate-pool growth,
//!   rapid frequency skew, and post-burst decay.
//!
//! All builders emit sequential tweet IDs from 0 and are bit-for-bit
//! reproducible from their seed, like every other generator in this crate.

use crate::entities::World;
use crate::stream::{gen_message, NoiseConfig};
use crate::templates::Domain;
use crate::topics::Topic;
use emd_text::token::{Dataset, DatasetKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Focus-catalog size shared by the scenario topics.
const N_FOCUS: usize = 40;

/// **Drift**: a stream of `n` messages that abandons its topic every
/// `epoch_len` messages for a freshly sampled one in the next domain
/// (rotating through all domains). Entities from a finished epoch
/// essentially never recur, so a windowed pipeline should see its whole
/// candidate vocabulary turn over once per epoch.
pub fn gen_drift_stream(
    world: &World,
    n: usize,
    epoch_len: usize,
    name: &str,
    noise_cfg: &NoiseConfig,
    seed: u64,
) -> Dataset {
    let epoch_len = epoch_len.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let domains = Domain::all();
    let mut topic = Topic::generate(world, domains[0], N_FOCUS, &mut rng);
    let mut sentences = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && i % epoch_len == 0 {
            let domain = domains[(i / epoch_len) % domains.len()];
            topic = Topic::generate(world, domain, N_FOCUS, &mut rng);
        }
        sentences.push(gen_message(world, &topic, i as u64, noise_cfg, &mut rng));
    }
    Dataset {
        name: name.to_string(),
        kind: DatasetKind::Streaming,
        n_topics: n.div_ceil(epoch_len),
        sentences,
    }
}

/// **Churn**: one long-lived topic whose catalog rotates gradually —
/// every `churn_every` messages, one eighth of the focus slots (at least
/// one) are re-drawn from the world at large. Because replacement hits
/// uniformly random *ranks*, head entities eventually rotate too, but
/// slowly; most turnover happens in the tail.
pub fn gen_churn_stream(
    world: &World,
    n: usize,
    churn_every: usize,
    name: &str,
    noise_cfg: &NoiseConfig,
    seed: u64,
) -> Dataset {
    let churn_every = churn_every.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topic = Topic::generate(world, Domain::Health, N_FOCUS, &mut rng);
    let mut sentences = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && i % churn_every == 0 {
            churn_topic(world, &mut topic, &mut rng);
        }
        sentences.push(gen_message(world, &topic, i as u64, noise_cfg, &mut rng));
    }
    Dataset {
        name: name.to_string(),
        kind: DatasetKind::Streaming,
        n_topics: 1,
        sentences,
    }
}

/// Replace a slice of `topic`'s focus slots with entities not currently in
/// the catalog. The focus length is preserved, so the topic's Zipf ranks
/// stay valid — a replaced slot inherits its rank's frequency.
fn churn_topic(world: &World, topic: &mut Topic, rng: &mut StdRng) {
    let n_replace = (topic.n_focus() / 8).max(1);
    for _ in 0..n_replace {
        let slot = rng.gen_range(0..topic.focus.len());
        for _ in 0..16 {
            let e = rng.gen_range(0..world.entities.len());
            if !topic.focus.contains(&e) {
                topic.focus[slot] = e;
                break;
            }
        }
    }
}

/// **Burst**: a stationary background topic, interrupted on a fixed
/// schedule — every `burst_every` messages a burst of `burst_len`
/// messages begins, during which 80% of messages come from a one-entity
/// topic around a freshly drawn "hot" entity (the other 20% stay
/// background chatter). The hot entity is re-drawn per burst, so each
/// burst floods the window with a new high-frequency candidate that goes
/// cold the moment the burst ends.
pub fn gen_burst_stream(
    world: &World,
    n: usize,
    burst_every: usize,
    burst_len: usize,
    name: &str,
    noise_cfg: &NoiseConfig,
    seed: u64,
) -> Dataset {
    let burst_every = burst_every.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Topic::generate(world, Domain::Sports, N_FOCUS, &mut rng);
    let mut hot: Option<Topic> = None;
    let mut sentences = Vec::with_capacity(n);
    for i in 0..n {
        if i % burst_every == 0 {
            let star = rng.gen_range(0..world.entities.len());
            hot = Some(Topic::from_focus(base.domain, vec![star]));
        }
        let in_burst = i % burst_every < burst_len;
        let topic = match &hot {
            Some(h) if in_burst && rng.gen_bool(0.8) => h,
            _ => &base,
        };
        sentences.push(gen_message(world, topic, i as u64, noise_cfg, &mut rng));
    }
    Dataset {
        name: name.to_string(),
        kind: DatasetKind::Streaming,
        n_topics: 1 + n.div_ceil(burst_every),
        sentences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::WorldConfig;
    use std::collections::HashSet;

    fn world() -> World {
        World::generate(&WorldConfig {
            per_category: 60,
            ..Default::default()
        })
    }

    /// Lower-cased gold surfaces of a message slice.
    fn surfaces(d: &Dataset, range: std::ops::Range<usize>) -> HashSet<String> {
        d.sentences[range]
            .iter()
            .flat_map(|s| s.gold.iter().map(|sp| sp.surface_lower(&s.sentence)))
            .collect()
    }

    #[test]
    fn drift_turns_the_vocabulary_over() {
        let w = world();
        let d = gen_drift_stream(&w, 600, 200, "drift", &NoiseConfig::none(), 1);
        assert_eq!(d.sentences.len(), 600);
        let a = surfaces(&d, 0..200);
        let c = surfaces(&d, 400..600);
        let shared = a.intersection(&c).count();
        // Distinct epochs in distinct domains: near-disjoint entity sets.
        assert!(
            shared * 4 < a.len().min(c.len()),
            "cross-epoch overlap should be small: shared={shared}, a={}, c={}",
            a.len(),
            c.len()
        );
    }

    #[test]
    fn churn_rotates_gradually() {
        let w = world();
        let d = gen_churn_stream(&w, 800, 50, "churn", &NoiseConfig::none(), 2);
        let early = surfaces(&d, 0..200);
        let late = surfaces(&d, 600..800);
        let novel = late.difference(&early).count();
        let shared = late.intersection(&early).count();
        assert!(
            novel > 0,
            "churn must introduce entities the start never saw"
        );
        assert!(
            shared > 0,
            "churn is gradual: the head cast persists across eras"
        );
    }

    #[test]
    fn bursts_concentrate_recurrence() {
        let w = world();
        let d = gen_burst_stream(&w, 400, 200, 40, "burst", &NoiseConfig::none(), 3);
        // Inside a burst window, one surface dominates the gold mentions.
        let burst_share = |range: std::ops::Range<usize>| -> f64 {
            let mut freq: std::collections::HashMap<String, usize> = Default::default();
            let mut total = 0usize;
            for s in &d.sentences[range] {
                for sp in &s.gold {
                    *freq.entry(sp.surface_lower(&s.sentence)).or_default() += 1;
                    total += 1;
                }
            }
            *freq.values().max().unwrap_or(&0) as f64 / total.max(1) as f64
        };
        let in_burst = burst_share(0..40).max(burst_share(200..240));
        let steady = burst_share(80..180);
        assert!(
            in_burst > steady * 2.0,
            "burst windows must be far more concentrated: burst={in_burst:.2}, steady={steady:.2}"
        );
    }

    #[test]
    fn long_horizon_builders_are_deterministic() {
        let w = world();
        let a = gen_drift_stream(&w, 120, 40, "d", &NoiseConfig::default(), 9);
        let b = gen_drift_stream(&w, 120, 40, "d", &NoiseConfig::default(), 9);
        for (x, y) in a.sentences.iter().zip(&b.sentences) {
            assert_eq!(x.sentence.joined(), y.sentence.joined());
            assert_eq!(x.gold, y.gold);
        }
        let a = gen_churn_stream(&w, 120, 30, "c", &NoiseConfig::default(), 9);
        let b = gen_churn_stream(&w, 120, 30, "c", &NoiseConfig::default(), 9);
        for (x, y) in a.sentences.iter().zip(&b.sentences) {
            assert_eq!(x.sentence.joined(), y.sentence.joined());
        }
        let a = gen_burst_stream(&w, 120, 60, 20, "b", &NoiseConfig::default(), 9);
        let b = gen_burst_stream(&w, 120, 60, 20, "b", &NoiseConfig::default(), 9);
        for (x, y) in a.sentences.iter().zip(&b.sentences) {
            assert_eq!(x.sentence.joined(), y.sentence.joined());
        }
    }

    #[test]
    fn sequential_ids_from_zero() {
        let w = world();
        let d = gen_drift_stream(&w, 50, 10, "ids", &NoiseConfig::none(), 4);
        for (i, s) in d.sentences.iter().enumerate() {
            assert_eq!(s.sentence.id.tweet_id, i as u64);
        }
    }
}
