//! Tweet noise injection.
//!
//! Operates on draft tokens (text + entity-membership flag) *after* gold
//! spans are fixed, using transformations that never change the token
//! count, so annotations stay aligned:
//!
//! * whole-sentence ALL-CAPS / all-lowercase (the "non-discriminative"
//!   casing regimes of §V-B1),
//! * decapitalizing entity tokens (the classic `coronavirus` vs
//!   `Coronavirus` inconsistency from the paper's case study),
//! * expressive elongation (`soooo`),
//! * adjacent-character typos.

use rand::rngs::StdRng;
use rand::Rng;

/// A token being assembled into a message, with entity bookkeeping.
#[derive(Debug, Clone)]
pub struct DraftToken {
    /// Surface text.
    pub text: String,
    /// `Some(entity_index)` when this token is part of a gold mention.
    pub entity: Option<usize>,
}

/// Probabilities for each noise transformation.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Whole sentence uppercased.
    pub p_all_caps: f64,
    /// Whole sentence lowercased.
    pub p_all_lower: f64,
    /// An entity token loses its capitalization.
    pub p_entity_lower: f64,
    /// A non-entity word gets elongated.
    pub p_elongate: f64,
    /// A word suffers an adjacent-character swap.
    pub p_typo: f64,
    /// A non-entity word gets spuriously capitalized (random Caps are
    /// everywhere on Twitter), so capitalization alone cannot identify
    /// entities.
    pub p_spurious_cap: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            p_all_caps: 0.05,
            p_all_lower: 0.15,
            p_entity_lower: 0.18,
            p_elongate: 0.04,
            p_typo: 0.02,
            p_spurious_cap: 0.14,
        }
    }
}

impl NoiseConfig {
    /// A configuration with all probabilities zero (clean text).
    pub fn none() -> NoiseConfig {
        NoiseConfig {
            p_all_caps: 0.0,
            p_all_lower: 0.0,
            p_entity_lower: 0.0,
            p_elongate: 0.0,
            p_typo: 0.0,
            p_spurious_cap: 0.0,
        }
    }
}

fn elongate(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    // Find a vowel to stretch; fall back to the last char.
    let pos = chars
        .iter()
        .rposition(|c| "aeiouAEIOU".contains(*c))
        .unwrap_or(chars.len().saturating_sub(1));
    let reps = rng.gen_range(2..5);
    let mut out = String::with_capacity(word.len() + reps);
    for (i, c) in chars.iter().enumerate() {
        out.push(*c);
        if i == pos {
            for _ in 0..reps {
                out.push(*c);
            }
        }
    }
    out
}

fn typo_swap(word: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return word.to_string();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    chars.swap(i, i + 1);
    chars.into_iter().collect()
}

fn decapitalize(word: &str) -> String {
    word.to_lowercase()
}

/// Apply noise to a draft sentence in place.
pub fn apply(tokens: &mut [DraftToken], cfg: &NoiseConfig, rng: &mut StdRng) {
    // Sentence-level casing first (mutually exclusive).
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < cfg.p_all_caps {
        for t in tokens.iter_mut() {
            t.text = t.text.to_uppercase();
        }
        return; // all-caps drowns the other casing noise
    } else if roll < cfg.p_all_caps + cfg.p_all_lower {
        for t in tokens.iter_mut() {
            t.text = t.text.to_lowercase();
        }
        return;
    }
    for t in tokens.iter_mut() {
        let is_word = t.text.chars().all(|c| c.is_alphanumeric() || c == '\'');
        if !is_word {
            continue;
        }
        if t.entity.is_some() {
            if rng.gen_bool(cfg.p_entity_lower) {
                t.text = decapitalize(&t.text);
            }
            // Entities occasionally get typos too, at half the base rate —
            // these mentions become genuinely unrecoverable, as in reality.
            if rng.gen_bool(cfg.p_typo / 2.0) {
                t.text = typo_swap(&t.text, rng);
            }
        } else {
            if rng.gen_bool(cfg.p_elongate) {
                t.text = elongate(&t.text, rng);
            }
            if rng.gen_bool(cfg.p_typo) {
                t.text = typo_swap(&t.text, rng);
            }
            if rng.gen_bool(cfg.p_spurious_cap) {
                let mut cs = t.text.chars();
                if let Some(c) = cs.next() {
                    if c.is_lowercase() {
                        t.text = c.to_uppercase().collect::<String>() + cs.as_str();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draft(words: &[(&str, Option<usize>)]) -> Vec<DraftToken> {
        words
            .iter()
            .map(|(w, e)| DraftToken {
                text: w.to_string(),
                entity: *e,
            })
            .collect()
    }

    #[test]
    fn no_noise_is_identity() {
        let mut toks = draft(&[("Covid", Some(0)), ("hits", None), ("Italy", Some(1))]);
        let before: Vec<String> = toks.iter().map(|t| t.text.clone()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        apply(&mut toks, &NoiseConfig::none(), &mut rng);
        let after: Vec<String> = toks.iter().map(|t| t.text.clone()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn all_caps_sentence() {
        let mut toks = draft(&[("Covid", Some(0)), ("hits", None)]);
        let cfg = NoiseConfig {
            p_all_caps: 1.0,
            ..NoiseConfig::none()
        };
        let mut rng = StdRng::seed_from_u64(1);
        apply(&mut toks, &cfg, &mut rng);
        assert_eq!(toks[0].text, "COVID");
        assert_eq!(toks[1].text, "HITS");
    }

    #[test]
    fn entity_decapitalization() {
        let cfg = NoiseConfig {
            p_entity_lower: 1.0,
            ..NoiseConfig::none()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut toks = draft(&[("Coronavirus", Some(0)), ("Spreads", None)]);
        apply(&mut toks, &cfg, &mut rng);
        assert_eq!(toks[0].text, "coronavirus");
        assert_eq!(toks[1].text, "Spreads", "non-entity untouched");
    }

    #[test]
    fn token_count_never_changes() {
        let cfg = NoiseConfig {
            p_all_caps: 0.1,
            p_all_lower: 0.2,
            p_entity_lower: 0.5,
            p_elongate: 0.5,
            p_typo: 0.5,
            p_spurious_cap: 0.5,
        };
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut toks = draft(&[
                ("Beshear", Some(0)),
                ("speaks", None),
                ("about", None),
                ("Covid", Some(1)),
            ]);
            apply(&mut toks, &cfg, &mut rng);
            assert_eq!(toks.len(), 4);
            assert!(toks.iter().all(|t| !t.text.is_empty()));
        }
    }

    #[test]
    fn elongation_lengthens() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = elongate("cool", &mut rng);
        assert!(e.len() > 4);
        assert!(e.starts_with("coo"));
    }

    #[test]
    fn typo_preserves_chars() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = typo_swap("virus", &mut rng);
        let mut a: Vec<char> = t.chars().collect();
        let mut b: Vec<char> = "virus".chars().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
