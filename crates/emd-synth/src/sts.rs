//! Synthetic sentence-similarity (STS) pairs for training the Entity
//! Phrase Embedder.
//!
//! SBERT trains on STS-b: pairs of sentences scored 0–5 for semantic
//! similarity, normalized to [0, 1]. We regenerate the same supervision
//! signal from the synthetic world:
//!
//! * **high similarity (~0.85–1.0)**: two messages from the same template
//!   and the same primary entity (paraphrase-like),
//! * **medium (~0.45–0.7)**: same topic, different entities/templates,
//! * **low (~0.0–0.3)**: different domains entirely.
//!
//! The regression target is jittered slightly so the embedder sees a dense
//! score distribution, like the human-rated original.

use crate::entities::World;
use crate::stream::{gen_message, NoiseConfig};
use crate::templates::Domain;
use crate::topics::Topic;
use emd_text::token::Sentence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scored sentence pair.
#[derive(Debug, Clone)]
pub struct StsPair {
    /// First sentence.
    pub a: Sentence,
    /// Second sentence.
    pub b: Sentence,
    /// Similarity in [0, 1].
    pub score: f32,
}

/// Generate `n` scored pairs (plus a validation split of `n_val`).
pub fn gen_sts(world: &World, n: usize, n_val: usize, seed: u64) -> (Vec<StsPair>, Vec<StsPair>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let domains = Domain::all();
    let topics: Vec<Topic> = domains
        .iter()
        .map(|&d| Topic::generate(world, d, 40, &mut rng))
        .collect();
    let noise = NoiseConfig::none();
    let make = |rng: &mut StdRng, id: u64| -> StsPair {
        let kind: f64 = rng.gen_range(0.0..1.0);
        if kind < 0.34 {
            // High similarity: same topic; re-generate until the two
            // messages share an entity (common under Zipf).
            let t = &topics[rng.gen_range(0..topics.len())];
            let a = gen_message(world, t, id * 2, &noise, rng);
            let mut b = gen_message(world, t, id * 2 + 1, &noise, rng);
            let akeys: std::collections::HashSet<String> = a
                .gold
                .iter()
                .map(|s| s.surface_lower(&a.sentence))
                .collect();
            let mut shares = b
                .gold
                .iter()
                .any(|s| akeys.contains(&s.surface_lower(&b.sentence)));
            for _ in 0..6 {
                if shares {
                    break;
                }
                b = gen_message(world, t, id * 2 + 1, &noise, rng);
                shares = b
                    .gold
                    .iter()
                    .any(|s| akeys.contains(&s.surface_lower(&b.sentence)));
            }
            let base = if shares { 0.88 } else { 0.62 };
            StsPair {
                a: a.sentence,
                b: b.sentence,
                score: (base + rng.gen_range(-0.08..0.08f32)).clamp(0.0, 1.0),
            }
        } else if kind < 0.67 {
            // Medium: same topic, any entities.
            let t = &topics[rng.gen_range(0..topics.len())];
            let a = gen_message(world, t, id * 2, &noise, rng);
            let b = gen_message(world, t, id * 2 + 1, &noise, rng);
            StsPair {
                a: a.sentence,
                b: b.sentence,
                score: (0.55 + rng.gen_range(-0.12..0.12f32)).clamp(0.0, 1.0),
            }
        } else {
            // Low: different domains.
            let i = rng.gen_range(0..topics.len());
            let mut j = rng.gen_range(0..topics.len());
            if j == i {
                j = (j + 1) % topics.len();
            }
            let a = gen_message(world, &topics[i], id * 2, &noise, rng);
            let b = gen_message(world, &topics[j], id * 2 + 1, &noise, rng);
            StsPair {
                a: a.sentence,
                b: b.sentence,
                score: (0.15 + rng.gen_range(-0.12..0.12f32)).clamp(0.0, 1.0),
            }
        }
    };
    let train: Vec<StsPair> = (0..n).map(|i| make(&mut rng, i as u64)).collect();
    let val: Vec<StsPair> = (0..n_val).map(|i| make(&mut rng, (n + i) as u64)).collect();
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::WorldConfig;

    #[test]
    fn scores_in_unit_interval() {
        let w = World::generate(&WorldConfig {
            per_category: 40,
            ..Default::default()
        });
        let (train, val) = gen_sts(&w, 200, 50, 1);
        assert_eq!(train.len(), 200);
        assert_eq!(val.len(), 50);
        for p in train.iter().chain(val.iter()) {
            assert!((0.0..=1.0).contains(&p.score));
            assert!(!p.a.is_empty() && !p.b.is_empty());
        }
    }

    #[test]
    fn score_distribution_spans_range() {
        let w = World::generate(&WorldConfig {
            per_category: 40,
            ..Default::default()
        });
        let (train, _) = gen_sts(&w, 300, 10, 2);
        let lows = train.iter().filter(|p| p.score < 0.35).count();
        let highs = train.iter().filter(|p| p.score > 0.7).count();
        assert!(lows > 30, "need low-similarity pairs, got {lows}");
        assert!(highs > 30, "need high-similarity pairs, got {highs}");
    }

    #[test]
    fn deterministic() {
        let w = World::generate(&WorldConfig {
            per_category: 40,
            ..Default::default()
        });
        let (a, _) = gen_sts(&w, 50, 5, 3);
        let (b, _) = gen_sts(&w, 50, 5, 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.score, y.score);
            assert_eq!(x.a.joined(), y.a.joined());
        }
    }
}
