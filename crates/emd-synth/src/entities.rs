//! Entity catalog generation.
//!
//! A [`World`] owns the universe of entities messages can mention: people,
//! locations, organizations, products, creative works and events. Entities
//! are built from curated seed lists *combined with* a syllable-based name
//! generator, so a controllable fraction of entities is guaranteed to be
//! out-of-gazetteer — the "rare, emerging entity" phenomenon the paper (and
//! the WNUT17 task) centers on.
//!
//! Every entity carries a set of surface variants: proper case, lowercase,
//! ALL CAPS, a partial form for multi-token names and an abbreviation for
//! organizations. Gold annotations always label the variant that actually
//! appears, so string variation is first-class in the datasets.

use emd_text::gazetteer::{GazCategory, Gazetteer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

const FIRST_NAMES: &[&str] = &[
    "Andy", "Maria", "James", "Elena", "Victor", "Sofia", "Marcus", "Priya", "Diego", "Hannah",
    "Omar", "Lucia", "Felix", "Amara", "Boris", "Greta", "Hugo", "Ines", "Jonas", "Keiko", "Liam",
    "Nadia", "Oscar", "Paula", "Quinn", "Rosa", "Stefan", "Tara", "Umar", "Vera",
];
const LAST_NAMES: &[&str] = &[
    "Beshear", "Moreno", "Clarke", "Petrov", "Tanaka", "Silva", "Novak", "Fischer", "Rossi",
    "Haddad", "Kowalski", "Lindgren", "Mbeki", "Navarro", "Okafor", "Price", "Quintana", "Reyes",
    "Santos", "Thornton", "Ueda", "Vasquez", "Weber", "Xu", "Youssef", "Zhang", "Aldana",
    "Brennan", "Castillo", "Duarte",
];
const PLACES: &[&str] = &[
    "Italy",
    "Canada",
    "Kentucky",
    "Ohio",
    "Madrid",
    "Lagos",
    "Osaka",
    "Lyon",
    "Porto",
    "Geneva",
    "Austin",
    "Denver",
    "Quito",
    "Nairobi",
    "Jakarta",
    "Oslo",
    "Dublin",
    "Calgary",
    "Valencia",
    "Krakow",
    "Tampere",
    "Bogota",
    "Adelaide",
    "Marseille",
    "Seville",
];
const ORG_HEADS: &[&str] = &[
    "Global", "United", "National", "Pacific", "Atlas", "Vertex", "Nimbus", "Quantum", "Pioneer",
    "Summit", "Horizon", "Sterling", "Cascade", "Meridian", "Zenith",
];
const ORG_TAILS: &[&str] = &[
    "Health Organization",
    "Research Institute",
    "Medical Center",
    "Dynamics",
    "Laboratories",
    "Systems",
    "Athletics",
    "Studios",
    "Networks",
    "Council",
    "Alliance",
    "Federation",
    "Broadcasting",
    "Analytics",
    "Foundation",
];
const PRODUCT_HEADS: &[&str] = &[
    "Pixel", "Nova", "Aero", "Volt", "Echo", "Flux", "Orbit", "Pulse", "Vista", "Prism",
];
const PRODUCT_TAILS: &[&str] = &[
    "Phone", "Pad", "Watch", "Drive", "Cam", "Pod", "Book", "Max", "Mini", "Pro",
];
const WORK_HEADS: &[&str] = &[
    "Midnight", "Silent", "Golden", "Broken", "Hidden", "Crimson", "Electric", "Frozen", "Savage",
    "Gentle",
];
const WORK_TAILS: &[&str] = &[
    "Empire", "Horizon", "Protocol", "Kingdom", "Paradox", "Symphony", "Station", "Harvest",
    "Mirage", "Covenant",
];
const EVENT_WORDS: &[&str] = &[
    "Coronavirus",
    "Covid",
    "Ebola",
    "Influenza",
    "Wildfire",
    "Heatwave",
    "Blackout",
    "Lockdown",
    "Olympics",
    "Worlds",
    "Playoffs",
    "Election",
    "Summit",
    "Primaries",
];

/// Syllable inventory shared by the entity name generator and the
/// colloquialism (filler) generator, so affix distributions cannot leak
/// entity-ness.
pub(crate) const SYLLABLES: &[&str] = &[
    "ka", "ze", "mor", "lin", "tav", "rek", "sol", "ny", "bra", "dun", "fel", "gor", "hax", "iva",
    "jol", "kri", "lum", "mab", "nev", "oss", "pel", "quor", "rin", "sa", "tol", "ull", "vor",
    "wim", "xan", "yel", "zu", "thra", "bel", "cor", "dag",
];

/// One nameable entity with its surface variants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entity {
    /// Canonical lower-cased key (full form, space-joined).
    pub canonical: String,
    /// Entity category.
    pub category: GazCategory,
    /// Display variants: index 0 is the proper full form; the rest are
    /// case/partial/abbreviation variants. Each variant is a space-joined
    /// token string.
    pub variants: Vec<String>,
    /// Whether this entity is covered by the world gazetteer (rare
    /// entities are not).
    pub in_gazetteer: bool,
    /// Established entities circulate before the stream starts (they occur
    /// in the D5 training stream); emerging entities only appear in the
    /// evaluation streams — the "novel and emerging entity" regime of
    /// WNUT17 that makes microblog EMD hard.
    pub established: bool,
}

impl Entity {
    /// Tokenized form of variant `v`.
    pub fn variant_tokens(&self, v: usize) -> Vec<String> {
        self.variants[v].split(' ').map(|s| s.to_string()).collect()
    }

    /// Number of variants.
    pub fn n_variants(&self) -> usize {
        self.variants.len()
    }
}

/// Build the variant list for a proper-cased full form.
fn make_variants(proper: &str, category: GazCategory, rng: &mut StdRng) -> Vec<String> {
    let mut vs = vec![proper.to_string()];
    vs.push(proper.to_lowercase());
    vs.push(proper.to_uppercase());
    let toks: Vec<&str> = proper.split(' ').collect();
    if toks.len() > 1 {
        // Partial form: the most informative token (last for persons,
        // first otherwise).
        let part = if category == GazCategory::Person {
            toks[toks.len() - 1]
        } else {
            toks[0]
        };
        vs.push(part.to_string());
        // Abbreviation for organizations: initial letters.
        if category == GazCategory::Organization && toks.len() >= 2 {
            let abbr: String = toks.iter().filter_map(|t| t.chars().next()).collect();
            vs.push(abbr.to_uppercase());
        }
    }
    // Occasionally a mixed-case mangled variant ("CoronaVirus").
    if rng.gen_bool(0.3) && proper.len() > 5 && !proper.contains(' ') {
        let mid = proper.len() / 2;
        if proper.is_char_boundary(mid) {
            let (a, b) = proper.split_at(mid);
            let mut m = String::with_capacity(proper.len());
            m.push_str(a);
            let mut cs = b.chars();
            if let Some(c) = cs.next() {
                m.extend(c.to_uppercase());
                m.push_str(cs.as_str());
            }
            if m != *proper {
                vs.push(m);
            }
        }
    }
    vs
}

/// A generated fictional name, `n_syll` syllables, capitalized.
fn synth_name(rng: &mut StdRng, n_syll: usize) -> String {
    let mut s = String::new();
    for _ in 0..n_syll {
        s.push_str(SYLLABLES.choose(rng).unwrap());
    }
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => s,
    }
}

/// Configuration for world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of entities per category.
    pub per_category: usize,
    /// Fraction of entities that are "established" (available to training
    /// streams); the rest are emerging.
    pub established_fraction: f64,
    /// Gazetteer coverage among established entities.
    pub gaz_coverage_established: f64,
    /// Gazetteer coverage among emerging entities (lexical resources lag).
    pub gaz_coverage_emerging: f64,
    /// Fraction of entities drawn from the synthetic name generator rather
    /// than the curated seed lists.
    pub synthetic_fraction: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 7,
            per_category: 220,
            established_fraction: 0.5,
            gaz_coverage_established: 0.8,
            gaz_coverage_emerging: 0.15,
            synthetic_fraction: 0.5,
        }
    }
}

/// The universe of entities plus the gazetteer available to EMD systems.
#[derive(Debug, Clone)]
pub struct World {
    /// All entities, all categories.
    pub entities: Vec<Entity>,
    /// Gazetteer covering `gazetteer_coverage` of the entities.
    pub gazetteer: Gazetteer,
}

impl World {
    /// Generate a world deterministically from `cfg`.
    pub fn generate(cfg: &WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut entities = Vec::new();
        let mut seen = std::collections::HashSet::new();

        let push_entity = |proper: String,
                           cat: GazCategory,
                           rng: &mut StdRng,
                           entities: &mut Vec<Entity>,
                           seen: &mut std::collections::HashSet<String>| {
            let canonical = proper.to_lowercase();
            if !seen.insert(canonical.clone()) {
                return;
            }
            let variants = make_variants(&proper, cat, rng);
            entities.push(Entity {
                canonical,
                category: cat,
                variants,
                in_gazetteer: false,
                established: false,
            });
        };

        for cat in GazCategory::all() {
            let mut made = 0usize;
            let mut guard = 0usize;
            while made < cfg.per_category && guard < cfg.per_category * 20 {
                guard += 1;
                let synthetic = rng.gen_bool(cfg.synthetic_fraction);
                let proper = match cat {
                    GazCategory::Person => {
                        if synthetic {
                            format!("{} {}", synth_name(&mut rng, 2), synth_name(&mut rng, 2))
                        } else {
                            format!(
                                "{} {}",
                                FIRST_NAMES.choose(&mut rng).unwrap(),
                                LAST_NAMES.choose(&mut rng).unwrap()
                            )
                        }
                    }
                    GazCategory::Location => {
                        if synthetic {
                            {
                                let n = 1 + rng.gen_range(1..3);
                                synth_name(&mut rng, n)
                            }
                        } else {
                            (*PLACES.choose(&mut rng).unwrap()).to_string()
                        }
                    }
                    GazCategory::Organization => {
                        if synthetic {
                            format!(
                                "{} {}",
                                synth_name(&mut rng, 2),
                                ORG_TAILS.choose(&mut rng).unwrap()
                            )
                        } else {
                            format!(
                                "{} {}",
                                ORG_HEADS.choose(&mut rng).unwrap(),
                                ORG_TAILS.choose(&mut rng).unwrap()
                            )
                        }
                    }
                    GazCategory::Product => {
                        if synthetic {
                            format!(
                                "{} {}",
                                synth_name(&mut rng, 2),
                                PRODUCT_TAILS.choose(&mut rng).unwrap()
                            )
                        } else {
                            format!(
                                "{} {}",
                                PRODUCT_HEADS.choose(&mut rng).unwrap(),
                                PRODUCT_TAILS.choose(&mut rng).unwrap()
                            )
                        }
                    }
                    GazCategory::CreativeWork => {
                        if synthetic {
                            format!(
                                "{} {}",
                                synth_name(&mut rng, 2),
                                WORK_TAILS.choose(&mut rng).unwrap()
                            )
                        } else {
                            format!(
                                "{} {}",
                                WORK_HEADS.choose(&mut rng).unwrap(),
                                WORK_TAILS.choose(&mut rng).unwrap()
                            )
                        }
                    }
                    GazCategory::Group => {
                        if synthetic {
                            {
                                let n = 2 + rng.gen_range(0..2);
                                synth_name(&mut rng, n)
                            }
                        } else {
                            (*EVENT_WORDS.choose(&mut rng).unwrap()).to_string()
                        }
                    }
                };
                let before = entities.len();
                push_entity(proper, cat, &mut rng, &mut entities, &mut seen);
                if entities.len() > before {
                    made += 1;
                }
            }
        }

        // Established/emerging split, then per-class gazetteer coverage.
        let mut idx: Vec<usize> = (0..entities.len()).collect();
        idx.shuffle(&mut rng);
        let n_est = (entities.len() as f64 * cfg.established_fraction) as usize;
        for &i in idx.iter().take(n_est) {
            entities[i].established = true;
        }
        let mut gazetteer = Gazetteer::new();
        for e in &mut entities {
            let cover = if e.established {
                cfg.gaz_coverage_established
            } else {
                cfg.gaz_coverage_emerging
            };
            if rng.gen_bool(cover) {
                e.in_gazetteer = true;
                gazetteer.insert(e.category, &e.variants[0]);
            }
        }
        World {
            entities,
            gazetteer,
        }
    }

    /// Entities of one category.
    pub fn by_category(&self, cat: GazCategory) -> Vec<usize> {
        (0..self.entities.len())
            .filter(|&i| self.entities[i].category == cat)
            .collect()
    }

    /// Entity indices filtered by category and established status.
    pub fn by_category_status(&self, cat: GazCategory, established: bool) -> Vec<usize> {
        (0..self.entities.len())
            .filter(|&i| {
                self.entities[i].category == cat && self.entities[i].established == established
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(&WorldConfig {
            per_category: 30,
            ..Default::default()
        })
    }

    #[test]
    fn world_has_all_categories() {
        let w = small_world();
        for cat in GazCategory::all() {
            assert!(!w.by_category(cat).is_empty(), "missing {cat:?}");
        }
    }

    #[test]
    fn canonical_keys_unique() {
        let w = small_world();
        let mut set = std::collections::HashSet::new();
        for e in &w.entities {
            assert!(set.insert(&e.canonical), "duplicate {}", e.canonical);
        }
    }

    #[test]
    fn variants_include_case_forms() {
        let w = small_world();
        for e in &w.entities {
            assert!(e.n_variants() >= 3);
            assert_eq!(e.variants[1], e.variants[0].to_lowercase());
            assert_eq!(e.variants[2], e.variants[0].to_uppercase());
        }
    }

    #[test]
    fn person_partial_is_last_name() {
        let w = small_world();
        let people = w.by_category(GazCategory::Person);
        let e = &w.entities[people[0]];
        let toks: Vec<&str> = e.variants[0].split(' ').collect();
        assert!(e.variants.iter().any(|v| v == toks[toks.len() - 1]));
    }

    #[test]
    fn org_abbreviation_exists() {
        let w = small_world();
        let orgs = w.by_category(GazCategory::Organization);
        let any_abbr = orgs.iter().any(|&i| {
            let e = &w.entities[i];
            e.variants.iter().any(|v| {
                !v.contains(' ')
                    && v.len() >= 2
                    && v.len() <= 5
                    && v.chars().all(|c| c.is_uppercase())
            })
        });
        assert!(
            any_abbr,
            "expected at least one organization abbreviation variant"
        );
    }

    #[test]
    fn gazetteer_coverage_partial() {
        let w = small_world();
        let known = w.entities.iter().filter(|e| e.in_gazetteer).count();
        assert!(known > 0);
        assert!(
            known < w.entities.len(),
            "some entities must remain out-of-gazetteer"
        );
        // Known entities are queryable.
        let e = w.entities.iter().find(|e| e.in_gazetteer).unwrap();
        assert!(w.gazetteer.contains_any(&e.variants[0]));
    }

    #[test]
    fn deterministic_generation() {
        let cfg = WorldConfig {
            per_category: 20,
            ..Default::default()
        };
        let a = World::generate(&cfg);
        let b = World::generate(&cfg);
        assert_eq!(a.entities.len(), b.entities.len());
        for (x, y) in a.entities.iter().zip(b.entities.iter()) {
            assert_eq!(x.canonical, y.canonical);
            assert_eq!(x.variants, y.variants);
        }
    }

    #[test]
    fn variant_tokens_split() {
        let w = small_world();
        let people = w.by_category(GazCategory::Person);
        let e = &w.entities[people[0]];
        assert_eq!(e.variant_tokens(0).len(), 2);
    }
}
