//! Topics: a domain plus a Zipf-weighted catalog of focus entities.
//!
//! A conversation stream on a topic repeats the topic's focus entities with
//! heavy-tailed frequency. Secondary slots (`{E2}`) draw from the same
//! catalog, occasionally from the global background, mirroring how real
//! streams mention tangential entities.

use crate::entities::World;
use crate::templates::Domain;
use crate::zipf::Zipf;
use emd_text::gazetteer::GazCategory;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A conversation topic.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Domain supplying templates and hashtags.
    pub domain: Domain,
    /// Indices into `World::entities`, ordered by intended frequency rank.
    pub focus: Vec<usize>,
    /// Zipf sampler over `focus`.
    zipf: Zipf,
}

/// Category mixture per domain: which entity categories a domain's streams
/// tend to mention.
fn domain_categories(d: Domain) -> &'static [GazCategory] {
    match d {
        Domain::Politics => &[
            GazCategory::Person,
            GazCategory::Location,
            GazCategory::Organization,
        ],
        Domain::Sports => &[
            GazCategory::Group,
            GazCategory::Person,
            GazCategory::Location,
        ],
        Domain::Entertainment => &[
            GazCategory::CreativeWork,
            GazCategory::Person,
            GazCategory::Group,
        ],
        Domain::Science => &[
            GazCategory::Organization,
            GazCategory::Product,
            GazCategory::Location,
        ],
        Domain::Health => &[
            GazCategory::Group,
            GazCategory::Location,
            GazCategory::Organization,
        ],
    }
}

impl Topic {
    /// Build a topic: sample `n_focus` entities from the world, biased to
    /// the domain's categories, and install a Zipf(1.15) over them.
    pub fn generate(world: &World, domain: Domain, n_focus: usize, rng: &mut StdRng) -> Topic {
        Topic::generate_mixed(world, domain, n_focus, None, rng)
    }

    /// Like [`Topic::generate`], but controlling the fraction of focus
    /// entities drawn from the *established* pool (`Some(1.0)` = training
    /// regime, `Some(0.25)` = evaluation streams dominated by emerging
    /// entities, `None` = ignore the split).
    pub fn generate_mixed(
        world: &World,
        domain: Domain,
        n_focus: usize,
        frac_established: Option<f64>,
        rng: &mut StdRng,
    ) -> Topic {
        let cats = domain_categories(domain);
        let mut focus: Vec<usize> = match frac_established {
            None => {
                let mut pool: Vec<usize> = Vec::new();
                for &c in cats {
                    pool.extend(world.by_category(c));
                }
                pool.shuffle(rng);
                pool.into_iter().take(n_focus).collect()
            }
            Some(frac) => {
                let mut est: Vec<usize> = Vec::new();
                let mut emg: Vec<usize> = Vec::new();
                for &c in cats {
                    est.extend(world.by_category_status(c, true));
                    emg.extend(world.by_category_status(c, false));
                }
                est.shuffle(rng);
                emg.shuffle(rng);
                let n_est = ((n_focus as f64) * frac).round() as usize;
                let mut f: Vec<usize> = est.into_iter().take(n_est.min(n_focus)).collect();
                f.extend(emg.into_iter().take(n_focus - f.len().min(n_focus)));
                f.shuffle(rng);
                f
            }
        };
        // A dash of out-of-domain entities (streams drift).
        let extra = (n_focus / 10).max(1);
        let all: Vec<usize> = (0..world.entities.len()).collect();
        for _ in 0..extra {
            let i = all[rng.gen_range(0..all.len())];
            if !focus.contains(&i) {
                focus.push(i);
            }
        }
        let zipf = Zipf::new(focus.len(), 1.15);
        Topic {
            domain,
            focus,
            zipf,
        }
    }

    /// Build a topic over an explicit focus list (rank order = given
    /// order: `focus[0]` is the head entity). Used by the long-horizon
    /// scenario builders to assemble burst and churned topics directly.
    pub fn from_focus(domain: Domain, focus: Vec<usize>) -> Topic {
        assert!(!focus.is_empty(), "a topic needs at least one focus entity");
        let zipf = Zipf::new(focus.len(), 1.15);
        Topic {
            domain,
            focus,
            zipf,
        }
    }

    /// Draw a focus entity index (into `World::entities`) by Zipf rank.
    pub fn sample_entity(&self, rng: &mut StdRng) -> usize {
        self.focus[self.zipf.sample(rng)]
    }

    /// Draw a secondary entity distinct from `primary` when possible.
    pub fn sample_secondary(&self, primary: usize, rng: &mut StdRng) -> usize {
        for _ in 0..8 {
            let e = self.sample_entity(rng);
            if e != primary {
                return e;
            }
        }
        primary
    }

    /// Number of focus entities.
    pub fn n_focus(&self) -> usize {
        self.focus.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::WorldConfig;
    use rand::SeedableRng;

    fn world() -> World {
        World::generate(&WorldConfig {
            per_category: 40,
            ..Default::default()
        })
    }

    #[test]
    fn topic_has_requested_focus_size() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(0);
        let t = Topic::generate(&w, Domain::Health, 30, &mut rng);
        assert!(t.n_focus() >= 30);
    }

    #[test]
    fn sampling_is_heavy_tailed() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(1);
        let t = Topic::generate(&w, Domain::Politics, 40, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            *counts.entry(t.sample_entity(&mut rng)).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let min = t
            .focus
            .iter()
            .map(|e| counts.get(e).copied().unwrap_or(0))
            .min()
            .unwrap();
        assert!(max > 500, "head entity should dominate, max={max}");
        assert!(
            min * 10 < max,
            "tail entities should be much rarer: min={min} max={max}"
        );
    }

    #[test]
    fn secondary_differs_from_primary() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let t = Topic::generate(&w, Domain::Sports, 20, &mut rng);
        let p = t.sample_entity(&mut rng);
        let mut diff = 0;
        for _ in 0..50 {
            if t.sample_secondary(p, &mut rng) != p {
                diff += 1;
            }
        }
        assert!(diff > 40);
    }

    #[test]
    fn domain_bias_holds() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(3);
        let t = Topic::generate(&w, Domain::Politics, 30, &mut rng);
        let cats = domain_categories(Domain::Politics);
        let in_domain = t
            .focus
            .iter()
            .filter(|&&i| cats.contains(&w.entities[i].category))
            .count();
        assert!(
            in_domain * 2 > t.n_focus(),
            "majority of focus entities in-domain"
        );
    }
}
