//! Zipf-distributed sampling over ranked items.
//!
//! Entity recurrence in conversation streams is heavy-tailed: a handful of
//! focus entities dominate while most appear once or twice. `rand_distr` is
//! not in the approved dependency set, so the sampler is implemented here:
//! an inverse-CDF table over `P(k) ∝ 1/k^s`.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `s` (typically 1.0–1.5;
    /// higher = more skew). Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (0 = most likely).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_most_frequent() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 50];
        for _ in 0..20000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[49] * 5);
        // The tail is still reachable.
        assert!(counts[40..].iter().sum::<usize>() > 0);
    }

    #[test]
    fn heavier_exponent_more_skew() {
        let mut rng = StdRng::seed_from_u64(2);
        let z1 = Zipf::new(100, 0.8);
        let z2 = Zipf::new(100, 2.0);
        let head = |z: &Zipf, rng: &mut StdRng| (0..5000).filter(|_| z.sample(rng) == 0).count();
        let h1 = head(&z1, &mut rng);
        let h2 = head(&z2, &mut rng);
        assert!(h2 > h1);
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "Zipf over zero items")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
