//! Per-domain message templates.
//!
//! A template is a whitespace-separated string whose slots are expanded by
//! the stream generator:
//!
//! * `{E}` — primary focus entity of the message,
//! * `{E2}` — secondary entity (another focus entity of the topic),
//! * `{NUM}` — a number,
//! * `{HT}` — a topical hashtag,
//! * `{AT}` — a user mention,
//! * `{URL}` — a link.
//!
//! Everything else is literal vocabulary, chosen so the POS heuristics and
//! lexical features have realistic material to work with.

use serde::{Deserialize, Serialize};

/// Conversation-stream domains (the paper's topics: Politics, Sports,
/// Entertainment, Science and Health).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Political streams (elections, governors, policy).
    Politics,
    /// Sports streams (matches, transfers, standings).
    Sports,
    /// Entertainment streams (releases, shows, celebrities).
    Entertainment,
    /// Science streams (missions, papers, discoveries).
    Science,
    /// Health streams (outbreaks, guidance, case counts).
    Health,
}

impl Domain {
    /// All domains in a fixed order.
    pub fn all() -> [Domain; 5] {
        [
            Domain::Politics,
            Domain::Sports,
            Domain::Entertainment,
            Domain::Science,
            Domain::Health,
        ]
    }

    /// Templates for this domain.
    pub fn templates(self) -> &'static [&'static str] {
        match self {
            Domain::Politics => POLITICS,
            Domain::Sports => SPORTS,
            Domain::Entertainment => ENTERTAINMENT,
            Domain::Science => SCIENCE,
            Domain::Health => HEALTH,
        }
    }

    /// Topical hashtag bodies for this domain.
    pub fn hashtags(self) -> &'static [&'static str] {
        match self {
            Domain::Politics => &["vote2020", "debate", "election", "policy", "townhall"],
            Domain::Sports => &["gameday", "playoffs", "matchday", "finals", "transfer"],
            Domain::Entertainment => &[
                "premiere",
                "nowwatching",
                "newmusic",
                "bingeworthy",
                "trailer",
            ],
            Domain::Science => &["research", "space", "newpaper", "discovery", "launch"],
            Domain::Health => &["covid19", "stayhome", "publichealth", "vaccine", "outbreak"],
        }
    }
}

const POLITICS: &[&str] = &[
    "{E} says he's asking county judges to monitor parks and shut them down",
    "{E} to rank {E2} counties by risk , may relax social distancing",
    "breaking : {E} announces new policy on {E2} {HT}",
    "why is {E} still silent about {E2} ?",
    "{E} leads {E2} in the latest polls {HT}",
    "{AT} reports that {E} will visit {E2} next week",
    "huge rally for {E} in {E2} today {URL}",
    "{E} criticized the response from {E2} again",
    "the debate between {E} and {E2} starts at {NUM}",
    "{E} signed the bill , {E2} responds {HT}",
    "can {E} actually win {E2} this time ?",
    "{E} : social distancing is not social isolation",
    "so {E} just endorsed {E2} {HT}",
    "officials in {E} push back on {E2} claims {URL}",
];

const SPORTS: &[&str] = &[
    "{E} beats {E2} {NUM} to {NUM} what a game {HT}",
    "{E} is rising at a rate similar to the early days of {E2}",
    "goal ! {E} scores against {E2} {HT}",
    "{E} signs with {E2} for {NUM} million {URL}",
    "injury update : {E} doubtful for the {E2} game",
    "{AT} says {E} is the best player {E2} has ever had",
    "{E} dominates {E2} in the first half",
    "can't believe {E} lost to {E2} again",
    "{E} breaks the record held by {E2} since {NUM}",
    "lineup is out : {E} starts , {E2} on the bench {HT}",
    "{E} fans are taking over {E2} tonight",
    "coach of {E} praises {E2} after the draw",
];

const ENTERTAINMENT: &[&str] = &[
    "just watched {E} and i'm crying {HT}",
    "{E} confirmed for the sequel to {E2} {URL}",
    "{E} drops a surprise album with {E2}",
    "the finale of {E} broke {NUM} records {HT}",
    "{AT} interviews {E} about {E2} tonight",
    "{E} was robbed at the awards , {E2} didn't deserve it",
    "casting news : {E} joins {E2} {HT}",
    "{E} tour dates announced for {E2} {URL}",
    "is {E} better than {E2} ? discuss",
    "soundtrack of {E} by {E2} is incredible",
    "{E} renewed for season {NUM} {HT}",
];

const SCIENCE: &[&str] = &[
    "{E} publishes new findings about {E2} {URL}",
    "the {E} mission reaches {E2} after {NUM} years {HT}",
    "researchers at {E} detect a signal from {E2}",
    "{E} telescope captures images of {E2} {URL}",
    "{AT} explains how {E} changes what we know about {E2}",
    "new paper : {E} confirms the {E2} hypothesis",
    "{E} launches {NUM} satellites for {E2} {HT}",
    "a breakthrough from {E} on {E2} storage",
    "{E} and {E2} announce a joint research program",
    "data from {E} suggests {E2} is older than thought",
];

const HEALTH: &[&str] = &[
    "we just bypass {E} with {E2} cases . but officials want to relax social distancing",
    "not a bad video to explain how the {E} works as well as the reasoning for social distancing {URL}",
    "{E} reports {NUM} new cases of {E2} today {HT}",
    "{E} is rising at a rate similar to the early days in {E2}",
    "hospitals in {E} are filling up because of {E2}",
    "{AT} warns that {E} could see a second wave of {E2}",
    "{E} approves the {E2} vaccine {HT}",
    "stay home , {E} cases doubled in {E2} this week",
    "{E} tests positive for {E2} {URL}",
    "experts from {E} discuss {E2} guidance tonight",
    "{E} extends the lockdown as {E2} spreads {HT}",
    "how {E} flattened the curve while {E2} struggles",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_domain_has_templates_and_hashtags() {
        for d in Domain::all() {
            assert!(d.templates().len() >= 10, "{d:?}");
            assert!(d.hashtags().len() >= 3, "{d:?}");
        }
    }

    #[test]
    fn all_templates_mention_primary_entity() {
        for d in Domain::all() {
            for t in d.templates() {
                assert!(t.contains("{E}"), "{d:?}: {t}");
            }
        }
    }

    #[test]
    fn slots_are_well_formed() {
        let valid = ["{E}", "{E2}", "{NUM}", "{HT}", "{AT}", "{URL}"];
        for d in Domain::all() {
            for t in d.templates() {
                for w in t.split_whitespace() {
                    if w.starts_with('{') {
                        assert!(valid.contains(&w), "unknown slot {w} in {t}");
                    }
                }
            }
        }
    }
}
