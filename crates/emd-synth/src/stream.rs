//! Message-stream generation: fill templates, inject noise, record gold.

use crate::entities::World;
use crate::noise::{self, DraftToken};
use crate::templates::Domain;
use crate::topics::Topic;
use emd_text::token::{AnnotatedSentence, Dataset, DatasetKind, Sentence, SentenceId, Span, Token};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

pub use crate::noise::NoiseConfig;

/// Conversational filler/chatter words injected between template words.
/// Mixing real English fillers with syllable-generated colloquialisms makes
/// the non-entity vocabulary *open*: an out-of-vocabulary lowercase token
/// can be chatter or a decapitalized entity mention — the core ambiguity of
/// microblog EMD.
const FILLERS: &[&str] = &[
    "honestly",
    "literally",
    "apparently",
    "seriously",
    "reportedly",
    "allegedly",
    "basically",
    "actually",
    "meanwhile",
    "finally",
    "update",
    "btw",
    "tho",
    "rn",
    "fr",
    "yall",
    "lowkey",
    "highkey",
    "deadass",
    "kinda",
    "sorta",
    "imo",
    "tbh",
    "ngl",
    "smh",
    "fwiw",
    "lmk",
    "rly",
    "def",
    "legit",
    "folks",
    "friends",
    "everyone",
    "listen",
    "look",
    "welp",
    "yikes",
    "wild",
    "crazy",
    "insane",
    "unreal",
    "huge",
    "massive",
    "breaking",
    "developing",
    "thread",
];

/// Draw a filler token: a real filler, or a generated colloquialism built
/// from the *same* syllable inventory as entity names — affixes must not
/// give entity-ness away.
fn sample_filler(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.55) {
        (*FILLERS.choose(rng).unwrap()).to_string()
    } else {
        let n = rng.gen_range(1..3);
        let mut s = String::new();
        for _ in 0..=n {
            s.push_str(crate::entities::SYLLABLES.choose(rng).unwrap());
        }
        s
    }
}

/// Insert `n` filler tokens at random non-mention positions, shifting the
/// recorded mention spans to stay aligned.
fn insert_fillers(
    tokens: &mut Vec<DraftToken>,
    mentions: &mut [(usize, Span)],
    n: usize,
    rng: &mut StdRng,
) {
    for _ in 0..n {
        let pos = rng.gen_range(0..=tokens.len());
        // Never split a mention: a position strictly inside a span is
        // nudged to the span start.
        let pos = mentions
            .iter()
            .find(|(_, sp)| pos > sp.start && pos < sp.end)
            .map(|(_, sp)| sp.start)
            .unwrap_or(pos);
        tokens.insert(
            pos,
            DraftToken {
                text: sample_filler(rng),
                entity: None,
            },
        );
        for (_, sp) in mentions.iter_mut() {
            if sp.start >= pos {
                sp.start += 1;
                sp.end += 1;
            }
        }
    }
}

/// Sample a surface variant index for a mention. Proper form dominates, but
/// partial/case variants are common — the string-variation phenomenon the
/// framework exploits.
fn sample_variant(n_variants: usize, rng: &mut StdRng) -> usize {
    // variant 0 = proper, 1 = lower, 2 = UPPER, 3.. = partial/abbr/mixed.
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < 0.52 || n_variants <= 1 {
        0
    } else if roll < 0.70 {
        1
    } else if roll < 0.78 {
        2.min(n_variants - 1)
    } else {
        rng.gen_range(3.min(n_variants - 1)..n_variants)
    }
}

/// Expand one template into a draft token sequence, recording which tokens
/// belong to which entity.
fn fill_template(
    world: &World,
    topic: &Topic,
    template: &str,
    rng: &mut StdRng,
) -> (Vec<DraftToken>, Vec<(usize, Span)>) {
    let mut tokens: Vec<DraftToken> = Vec::new();
    let mut mentions: Vec<(usize, Span)> = Vec::new();
    let primary = topic.sample_entity(rng);
    let push_entity = |e_idx: usize,
                       tokens: &mut Vec<DraftToken>,
                       mentions: &mut Vec<(usize, Span)>,
                       rng: &mut StdRng| {
        let ent = &world.entities[e_idx];
        let v = sample_variant(ent.n_variants(), rng);
        let start = tokens.len();
        for t in ent.variant_tokens(v) {
            tokens.push(DraftToken {
                text: t,
                entity: Some(e_idx),
            });
        }
        mentions.push((e_idx, Span::new(start, tokens.len())));
    };
    for w in template.split_whitespace() {
        match w {
            "{E}" => push_entity(primary, &mut tokens, &mut mentions, rng),
            "{E2}" => {
                let e2 = topic.sample_secondary(primary, rng);
                push_entity(e2, &mut tokens, &mut mentions, rng);
            }
            "{NUM}" => {
                let n: u32 = rng.gen_range(2..9000);
                tokens.push(DraftToken {
                    text: n.to_string(),
                    entity: None,
                });
            }
            "{HT}" => {
                let tags = topic.domain.hashtags();
                let tag = tags.choose(rng).unwrap();
                tokens.push(DraftToken {
                    text: format!("#{tag}"),
                    entity: None,
                });
            }
            "{AT}" => {
                let id: u32 = rng.gen_range(1..500);
                tokens.push(DraftToken {
                    text: format!("@user{id}"),
                    entity: None,
                });
            }
            "{URL}" => {
                let id: u32 = rng.gen_range(1000..99999);
                tokens.push(DraftToken {
                    text: format!("https://t.co/x{id}"),
                    entity: None,
                });
            }
            lit => tokens.push(DraftToken {
                text: lit.to_string(),
                entity: None,
            }),
        }
    }
    (tokens, mentions)
}

fn to_annotated(
    id: SentenceId,
    tokens: Vec<DraftToken>,
    mentions: Vec<(usize, Span)>,
) -> AnnotatedSentence {
    let sentence = Sentence {
        id,
        tokens: tokens
            .into_iter()
            .map(|t| Token::synthetic(t.text))
            .collect(),
    };
    let gold = mentions.into_iter().map(|(_, s)| s).collect();
    AnnotatedSentence { sentence, gold }
}

/// Generate one message (a single tweet-sentence) on `topic`.
pub fn gen_message(
    world: &World,
    topic: &Topic,
    tweet_id: u64,
    noise_cfg: &NoiseConfig,
    rng: &mut StdRng,
) -> AnnotatedSentence {
    let template = topic.domain.templates().choose(rng).unwrap();
    let (mut tokens, mut mentions) = fill_template(world, topic, template, rng);
    let n_fillers = rng.gen_range(0..=3);
    insert_fillers(&mut tokens, &mut mentions, n_fillers, rng);
    noise::apply(&mut tokens, noise_cfg, rng);
    to_annotated(SentenceId::new(tweet_id, 0), tokens, mentions)
}

/// Generate a *streaming* dataset: `n` messages drawn from the given topics
/// (mirroring a crawled targeted stream — heavy entity recurrence).
pub fn gen_stream(
    world: &World,
    topics: &[Topic],
    n: usize,
    name: &str,
    noise_cfg: &NoiseConfig,
    seed: u64,
) -> Dataset {
    assert!(!topics.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sentences = Vec::with_capacity(n);
    for i in 0..n {
        let topic = &topics[rng.gen_range(0..topics.len())];
        sentences.push(gen_message(world, topic, i as u64, noise_cfg, &mut rng));
    }
    Dataset {
        name: name.to_string(),
        kind: DatasetKind::Streaming,
        n_topics: topics.len(),
        sentences,
    }
}

/// Generate a *non-streaming* dataset (WNUT17/BTC style): every message
/// comes from a fresh ephemeral topic over a small entity set, so entity
/// recurrence across the corpus is minimal.
pub fn gen_random_sample(
    world: &World,
    n: usize,
    name: &str,
    noise_cfg: &NoiseConfig,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let domains = Domain::all();
    let mut sentences = Vec::with_capacity(n);
    for i in 0..n {
        let domain = domains[rng.gen_range(0..domains.len())];
        // Tiny single-use topic of mostly-emerging entities, fresh each
        // message (WNUT17 is a *novel and emerging* entity benchmark).
        let topic = Topic::generate_mixed(world, domain, 6, Some(0.15), &mut rng);
        sentences.push(gen_message(world, &topic, i as u64, noise_cfg, &mut rng));
    }
    Dataset {
        name: name.to_string(),
        kind: DatasetKind::NonStreaming,
        n_topics: n, // effectively one topic per message
        sentences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{World, WorldConfig};
    use std::collections::HashMap;

    fn world() -> World {
        World::generate(&WorldConfig {
            per_category: 60,
            ..Default::default()
        })
    }

    fn topics(world: &World, n: usize, seed: u64) -> Vec<Topic> {
        let mut rng = StdRng::seed_from_u64(seed);
        let domains = Domain::all();
        (0..n)
            .map(|i| Topic::generate(world, domains[i % 5], 50, &mut rng))
            .collect()
    }

    #[test]
    fn gold_spans_match_entity_tokens() {
        let w = world();
        let ts = topics(&w, 1, 0);
        let d = gen_stream(&w, &ts, 200, "t", &NoiseConfig::none(), 1);
        for s in &d.sentences {
            for sp in &s.gold {
                assert!(sp.end <= s.sentence.len());
                let surface = sp.surface_lower(&s.sentence);
                // Every gold surface must be a variant (lower-cased) of some
                // world entity.
                let found = w
                    .entities
                    .iter()
                    .any(|e| e.variants.iter().any(|v| v.to_lowercase() == surface));
                assert!(found, "gold surface {surface:?} not a known variant");
            }
        }
    }

    #[test]
    fn streaming_repeats_entities() {
        let w = world();
        let ts = topics(&w, 1, 2);
        let d = gen_stream(&w, &ts, 500, "t", &NoiseConfig::default(), 3);
        let mut freq: HashMap<String, usize> = HashMap::new();
        for s in &d.sentences {
            for sp in &s.gold {
                *freq.entry(sp.surface_lower(&s.sentence)).or_default() += 1;
            }
        }
        let max = freq.values().max().copied().unwrap_or(0);
        assert!(
            max >= 20,
            "a streaming dataset must repeat its head entities, max={max}"
        );
    }

    #[test]
    fn non_streaming_has_low_recurrence() {
        let w = world();
        let ts = topics(&w, 1, 4);
        let stream = gen_stream(&w, &ts, 400, "s", &NoiseConfig::none(), 5);
        let sample = gen_random_sample(&w, 400, "r", &NoiseConfig::none(), 6);
        let uniq_ratio = |d: &Dataset| d.n_unique_entities() as f64 / d.n_mentions().max(1) as f64;
        assert!(
            uniq_ratio(&sample) > uniq_ratio(&stream) * 1.5,
            "random sample should have far more unique entities per mention: {} vs {}",
            uniq_ratio(&sample),
            uniq_ratio(&stream)
        );
    }

    #[test]
    fn surface_variation_present() {
        let w = world();
        let ts = topics(&w, 1, 7);
        let d = gen_stream(&w, &ts, 600, "t", &NoiseConfig::default(), 8);
        // Group gold mentions by case-insensitive key; at least one entity
        // must appear under ≥2 distinct raw surfaces.
        let mut by_key: HashMap<String, std::collections::HashSet<String>> = HashMap::new();
        for s in &d.sentences {
            for sp in &s.gold {
                by_key
                    .entry(sp.surface_lower(&s.sentence))
                    .or_default()
                    .insert(sp.surface(&s.sentence));
            }
        }
        assert!(
            by_key.values().any(|set| set.len() >= 2),
            "expected case variation in mentions"
        );
    }

    #[test]
    fn deterministic() {
        let w = world();
        let ts = topics(&w, 2, 9);
        let a = gen_stream(&w, &ts, 50, "t", &NoiseConfig::default(), 10);
        let b = gen_stream(&w, &ts, 50, "t", &NoiseConfig::default(), 10);
        for (x, y) in a.sentences.iter().zip(b.sentences.iter()) {
            assert_eq!(x.sentence.joined(), y.sentence.joined());
            assert_eq!(x.gold, y.gold);
        }
    }

    #[test]
    fn fillers_do_not_corrupt_gold_spans() {
        let w = world();
        let ts = topics(&w, 1, 20);
        let d = gen_stream(&w, &ts, 300, "t", &NoiseConfig::none(), 21);
        for s in &d.sentences {
            for sp in &s.gold {
                let surface = sp.surface_lower(&s.sentence);
                let found = w
                    .entities
                    .iter()
                    .any(|e| e.variants.iter().any(|v| v.to_lowercase() == surface));
                assert!(
                    found,
                    "gold span corrupted by filler insertion: {surface:?}"
                );
            }
        }
    }

    #[test]
    fn sentences_nonempty_with_ids() {
        let w = world();
        let ts = topics(&w, 1, 11);
        let d = gen_stream(&w, &ts, 20, "t", &NoiseConfig::default(), 12);
        for (i, s) in d.sentences.iter().enumerate() {
            assert!(!s.sentence.is_empty());
            assert_eq!(s.sentence.id.tweet_id, i as u64);
        }
    }
}
