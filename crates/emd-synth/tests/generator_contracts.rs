//! Contract tests for the synthetic-stream generator: the statistical
//! properties the evaluation depends on must hold across seeds and scales.

use emd_synth::datasets::{generic_training_corpus, standard_datasets, stats, training_stream};
use emd_text::token::DatasetKind;
use std::collections::{HashMap, HashSet};

/// Streaming datasets must exhibit far heavier entity recurrence than
/// non-streaming ones, for every seed tested — this gap *is* the
/// experimental contrast of Table III.
#[test]
fn recurrence_gap_holds_across_seeds() {
    for seed in [1u64, 99, 2022] {
        let suite = standard_datasets(seed, 0.08);
        let ratio = |d: &emd_text::token::Dataset| {
            d.n_mentions() as f64 / d.n_unique_entities().max(1) as f64
        };
        let streaming_avg: f64 = suite.streaming().iter().map(|d| ratio(d)).sum::<f64>() / 4.0;
        let non_avg: f64 = suite.non_streaming().iter().map(|d| ratio(d)).sum::<f64>() / 2.0;
        assert!(
            streaming_avg > non_avg * 2.0,
            "seed {seed}: streaming {streaming_avg:.1} vs non-streaming {non_avg:.1}"
        );
    }
}

/// The generic training world must be entity-disjoint (almost entirely)
/// from the evaluation world — the domain-shift premise.
#[test]
fn generic_world_is_disjoint_from_eval_world() {
    let suite = standard_datasets(2022, 0.05);
    let (gen_world, _) = generic_training_corpus(2022, 0.25);
    let eval_keys: HashSet<&str> = suite
        .world
        .entities
        .iter()
        .map(|e| e.canonical.as_str())
        .collect();
    let overlap = gen_world
        .entities
        .iter()
        .filter(|e| eval_keys.contains(e.canonical.as_str()))
        .count();
    // Curated seed-list entities ("Italy", common org names) legitimately
    // exist in both worlds — a production system knows globally famous
    // entities. The synthetic (generated-name) entities must be
    // world-specific, so the overlap is bounded by roughly the curated
    // share of the catalog.
    assert!(
        (overlap as f64) < 0.30 * gen_world.entities.len() as f64,
        "too much cross-world entity overlap: {overlap}/{}",
        gen_world.entities.len()
    );
    assert!(overlap > 0, "some famous entities should span both worlds");
}

/// Evaluation streams must be dominated by entities that do NOT occur in
/// the D5 training stream (the emerging-entity regime).
#[test]
fn eval_streams_are_emerging_heavy() {
    let suite = standard_datasets(2022, 0.08);
    let (_, d5) = training_stream(2022, 0.02);
    let d5_keys: HashSet<String> = d5
        .sentences
        .iter()
        .flat_map(|a| a.gold.iter().map(|sp| sp.surface_lower(&a.sentence)))
        .collect();
    let d2 = &suite.datasets[1];
    let mut unseen = 0usize;
    let mut total = 0usize;
    let mut seen_keys: HashSet<String> = HashSet::new();
    for a in &d2.sentences {
        for sp in &a.gold {
            let k = sp.surface_lower(&a.sentence);
            if seen_keys.insert(k.clone()) {
                total += 1;
                if !d5_keys.contains(&k) {
                    unseen += 1;
                }
            }
        }
    }
    assert!(
        unseen * 2 > total,
        "most unique D2 entities should be unseen in D5: {unseen}/{total}"
    );
}

/// Tweet-level noise statistics stay within the configured regime: a
/// bounded fraction of sentences is uniformly cased.
#[test]
fn casing_noise_rates_bounded() {
    let suite = standard_datasets(7, 0.08);
    let d4 = &suite.datasets[3];
    let mut uniform = 0usize;
    for a in &d4.sentences {
        if emd_text::casing::sentence_casing_uninformative(&a.sentence) {
            uniform += 1;
        }
    }
    let rate = uniform as f64 / d4.len() as f64;
    // Configured ~20% sentence-level casing noise, plus title-case
    // coincidences; must stay well below half the stream.
    assert!(rate > 0.05 && rate < 0.45, "uniform-casing rate {rate:.2}");
}

/// Table-I stats are internally consistent on every dataset.
#[test]
fn stats_consistency() {
    let suite = standard_datasets(3, 0.05);
    for d in &suite.datasets {
        let s = stats(d);
        assert_eq!(s.size, d.len());
        assert!(s.n_entities <= s.n_mentions);
        assert!(s.n_entities > 0);
        match d.kind {
            DatasetKind::Streaming => assert!(s.n_topics <= 5),
            DatasetKind::NonStreaming => assert_eq!(s.n_topics, d.len()),
        }
    }
}

/// Zipf head-entity dominance: in a single-topic stream, the most frequent
/// entity must account for a sizeable share of all mentions.
#[test]
fn head_entity_dominates_single_topic_stream() {
    let suite = standard_datasets(11, 0.1);
    let d2 = &suite.datasets[1];
    let mut freq: HashMap<String, usize> = HashMap::new();
    for a in &d2.sentences {
        for sp in &a.gold {
            *freq.entry(sp.surface_lower(&a.sentence)).or_default() += 1;
        }
    }
    let max = freq.values().max().copied().unwrap_or(0);
    let total: usize = freq.values().sum();
    assert!(
        max * 8 > total,
        "head entity should hold >12.5% of mentions: {max}/{total}"
    );
}
