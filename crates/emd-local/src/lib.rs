//! # emd-local
//!
//! The four Local EMD instantiations of the paper (§IV-A), each a
//! from-scratch Rust implementation of the corresponding system family and
//! each implementing [`emd_core::LocalEmd`] so the framework can wrap them
//! as black boxes:
//!
//! | Paper system        | This crate          | Type     | Entity-aware embeddings |
//! |---------------------|---------------------|----------|--------------------------|
//! | TweeboParser NP chunker | [`np_chunker::NpChunker`] | non-deep | – (syntactic 6-dim path) |
//! | TwitterNLP (Ritter et al.) | [`twitter_nlp::TwitterNlp`] | non-deep | – (syntactic 6-dim path) |
//! | Aguilar et al. (WNUT17 winner) | [`aguilar::Aguilar`] | deep | 100-dim (last dense before CRF) |
//! | BERTweet (fine-tuned) | [`mini_bert::MiniBert`] | deep | model-dim (last encoder layer) |
//!
//! [`tcap::TCap`] reproduces TwitterNLP's capitalization-informativeness
//! classifier; [`train_data`] holds shared corpus-preparation helpers;
//! [`persist`] saves/loads trained checkpoints as JSON.

pub mod aguilar;
pub mod mini_bert;
pub mod np_chunker;
pub mod persist;
pub mod tcap;
pub mod train_data;
pub mod twitter_nlp;

pub(crate) mod obs {
    //! Per-system inference latency instrumentation. Handles live in
    //! module-level statics (not on the model structs, which are
    //! serialized as checkpoints) and register lazily in the process-wide
    //! [`emd_obs::global`] registry on first use.
    use emd_obs::{Histogram, Timer};
    use std::sync::OnceLock;

    /// A lazily registered `emd_local_<system>_process_ns` histogram.
    pub(crate) struct ProcessHist {
        name: &'static str,
        hist: OnceLock<Histogram>,
    }

    impl ProcessHist {
        pub(crate) const fn new(name: &'static str) -> ProcessHist {
            ProcessHist {
                name,
                hist: OnceLock::new(),
            }
        }

        /// Start an RAII span over one `process` call (inert in noop mode).
        pub(crate) fn span(&self) -> Timer {
            Timer::start(
                self.hist
                    .get_or_init(|| emd_obs::global().histogram(self.name)),
            )
        }
    }
}

pub use aguilar::Aguilar;
pub use mini_bert::MiniBert;
pub use np_chunker::NpChunker;
pub use twitter_nlp::TwitterNlp;
