//! # emd-local
//!
//! The four Local EMD instantiations of the paper (§IV-A), each a
//! from-scratch Rust implementation of the corresponding system family and
//! each implementing [`emd_core::LocalEmd`] so the framework can wrap them
//! as black boxes:
//!
//! | Paper system        | This crate          | Type     | Entity-aware embeddings |
//! |---------------------|---------------------|----------|--------------------------|
//! | TweeboParser NP chunker | [`np_chunker::NpChunker`] | non-deep | – (syntactic 6-dim path) |
//! | TwitterNLP (Ritter et al.) | [`twitter_nlp::TwitterNlp`] | non-deep | – (syntactic 6-dim path) |
//! | Aguilar et al. (WNUT17 winner) | [`aguilar::Aguilar`] | deep | 100-dim (last dense before CRF) |
//! | BERTweet (fine-tuned) | [`mini_bert::MiniBert`] | deep | model-dim (last encoder layer) |
//!
//! [`tcap::TCap`] reproduces TwitterNLP's capitalization-informativeness
//! classifier; [`train_data`] holds shared corpus-preparation helpers;
//! [`persist`] saves/loads trained checkpoints as JSON.

pub mod aguilar;
pub mod mini_bert;
pub mod np_chunker;
pub mod persist;
pub mod tcap;
pub mod train_data;
pub mod twitter_nlp;

pub use aguilar::Aguilar;
pub use mini_bert::MiniBert;
pub use np_chunker::NpChunker;
pub use twitter_nlp::TwitterNlp;
