//! Model persistence: save/load trained Local EMD systems (and any other
//! serializable model component) as JSON checkpoints.
//!
//! JSON is chosen deliberately: checkpoints here are small (tens of
//! thousands of `f32`s), human-inspectable, and diff-able — the right
//! trade-off for a reproduction whose models retrain in seconds. The
//! format records the crate version so stale checkpoints fail loudly.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Envelope written around every checkpoint.
#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    /// Crate version that wrote the checkpoint.
    version: String,
    /// Model kind tag (defensive: loading the wrong type fails clearly).
    kind: String,
    /// The model itself.
    model: T,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// (De)serialization failure.
    Json(serde_json::Error),
    /// The checkpoint's `kind` tag does not match the requested type.
    KindMismatch {
        /// Tag found in the file.
        found: String,
        /// Tag the caller expected.
        expected: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            PersistError::Json(e) => write!(f, "checkpoint serialization error: {e}"),
            PersistError::KindMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint kind mismatch: found {found:?}, expected {expected:?}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Save a model checkpoint. `kind` tags the model type (use
/// [`kind_of`] for consistency).
pub fn save<T: Serialize>(
    path: impl AsRef<Path>,
    kind: &str,
    model: &T,
) -> Result<(), PersistError> {
    let env = Envelope {
        version: env!("CARGO_PKG_VERSION").to_string(),
        kind: kind.to_string(),
        model,
    };
    let json = serde_json::to_string(&env)?;
    fs::write(path, json)?;
    Ok(())
}

/// Load a model checkpoint, verifying the `kind` tag.
pub fn load<T: DeserializeOwned>(path: impl AsRef<Path>, kind: &str) -> Result<T, PersistError> {
    let json = fs::read_to_string(path)?;
    let env: Envelope<T> = serde_json::from_str(&json)?;
    if env.kind != kind {
        return Err(PersistError::KindMismatch {
            found: env.kind,
            expected: kind.to_string(),
        });
    }
    Ok(env.model)
}

/// Canonical kind tag for a model type name.
pub fn kind_of<T>() -> &'static str {
    std::any::type_name::<T>()
        .rsplit("::")
        .next()
        .unwrap_or("model")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twitter_nlp::{TwitterNlp, TwitterNlpConfig};
    use emd_core::local::LocalEmd;
    use emd_synth::datasets::training_stream;

    #[test]
    fn twitter_nlp_roundtrip_preserves_predictions() {
        let (world, d5) = training_stream(51, 0.003);
        let model = TwitterNlp::train(&d5, world.gazetteer.clone(), &TwitterNlpConfig::default());
        let dir = std::env::temp_dir().join("emd_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("twitter_nlp.json");
        save(&path, kind_of::<TwitterNlp>(), &model).unwrap();
        let loaded: TwitterNlp = load(&path, kind_of::<TwitterNlp>()).unwrap();
        for ann in d5.sentences.iter().take(25) {
            assert_eq!(
                model.process(&ann.sentence).spans,
                loaded.process(&ann.sentence).spans,
                "loaded model must reproduce predictions"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_mismatch_is_detected() {
        let dir = std::env::temp_dir().join("emd_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kind.json");
        save(&path, "alpha", &vec![1.0f32, 2.0]).unwrap();
        let err = load::<Vec<f32>>(&path, "beta").unwrap_err();
        assert!(matches!(err, PersistError::KindMismatch { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_of_strips_path() {
        assert_eq!(kind_of::<TwitterNlp>(), "TwitterNlp");
    }
}
