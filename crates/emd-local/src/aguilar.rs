//! Aguilar et al. (WNUT17 winner): BiLSTM-CNN-CRF multi-feature network
//! (§IV-A.3), scaled to laptop dimensions.
//!
//! Per-token features, mirroring the original's three representation
//! tracks:
//!
//! * **character level**: char embeddings → CNN → max-over-time (24-d),
//! * **token level**: word embedding (32-d) ‖ POS embedding (8-d),
//! * **lexical**: the 6-d gazetteer vector through the shared dense layer.
//!
//! Concatenated features feed a BiLSTM (50 hidden/dir → 100-d), then a
//! common dense layer with ReLU whose outputs are the 100-dimensional
//! **entity-aware token embeddings** the Global EMD phase consumes (the
//! paper: "the output of the last fully connected layer, prior to the CRF
//! layer"). A final linear layer produces emissions for the CRF.

use emd_core::local::{LocalEmd, LocalEmdOutput};
use emd_nn::activations::Relu;
use emd_nn::conv::{CharCnn, CnnCache};
use emd_nn::crf::CrfLayer;
use emd_nn::dense::Dense;
use emd_nn::embedding::Embedding;
use emd_nn::lstm::BiLstm;
use emd_nn::matrix::Matrix;
use emd_nn::optim::Adam;
use emd_nn::param::{Net, Param};
use emd_text::gazetteer::Gazetteer;
use emd_text::normalize;
use emd_text::pos::{tag_sentence, PosTag};
use emd_text::token::{bio_to_spans, Bio, Dataset, Sentence};
use emd_text::vocab::Vocab;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::train_data::{build_char_vocab, build_word_vocab, encode_chars};

const WORD_DIM: usize = 32;
const CHAR_DIM: usize = 16;
const CNN_FILTERS: usize = 24;
const POS_DIM: usize = 8;
const GAZ_DIM: usize = 6;
const FEAT_DIM: usize = WORD_DIM + CNN_FILTERS + POS_DIM + GAZ_DIM;
const HIDDEN: usize = 50;
/// Entity-aware embedding size (matches the paper's 100-dim Aguilar
/// candidate embeddings).
pub const EMB_DIM: usize = 2 * HIDDEN;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct AguilarConfig {
    /// Epochs over the training corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sentences per optimizer step.
    pub batch_size: usize,
    /// Init/shuffle seed.
    pub seed: u64,
    /// Gradient clipping max-norm.
    pub clip: f32,
}

impl Default for AguilarConfig {
    fn default() -> Self {
        AguilarConfig {
            epochs: 3,
            lr: 0.004,
            batch_size: 8,
            seed: 42,
            clip: 5.0,
        }
    }
}

/// The BiLSTM-CNN-CRF Local EMD system.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Aguilar {
    word_vocab: Vocab,
    char_vocab: Vocab,
    word_emb: Embedding,
    char_emb: Embedding,
    char_cnn: CharCnn,
    pos_emb: Embedding,
    bilstm: BiLstm,
    dense: Dense,
    emit: Dense,
    crf: CrfLayer,
    gazetteer: Gazetteer,
}

/// Per-sentence encoded inputs.
struct Encoded {
    word_ids: Vec<u32>,
    char_ids: Vec<Vec<u32>>,
    pos_ids: Vec<u32>,
    gaz: Vec<[f32; GAZ_DIM]>,
}

impl Aguilar {
    /// Initialize an untrained model against a training corpus's
    /// vocabularies and the world gazetteer.
    pub fn init(dataset: &Dataset, gazetteer: Gazetteer, seed: u64) -> Aguilar {
        let mut rng = StdRng::seed_from_u64(seed);
        let word_vocab = build_word_vocab(dataset, 2);
        let char_vocab = build_char_vocab(dataset);
        Aguilar {
            word_emb: Embedding::new(word_vocab.len(), WORD_DIM, &mut rng),
            char_emb: Embedding::new(char_vocab.len(), CHAR_DIM, &mut rng),
            char_cnn: CharCnn::new(CHAR_DIM, 3, CNN_FILTERS, &mut rng),
            pos_emb: Embedding::new(PosTag::COUNT + 1, POS_DIM, &mut rng),
            bilstm: BiLstm::new(FEAT_DIM, HIDDEN, &mut rng),
            dense: Dense::new(EMB_DIM, EMB_DIM, &mut rng),
            emit: Dense::new(EMB_DIM, Bio::COUNT, &mut rng),
            crf: CrfLayer::new(Bio::COUNT),
            word_vocab,
            char_vocab,
            gazetteer,
        }
    }

    /// Train on the corpus; returns per-epoch mean NLL.
    pub fn train(
        dataset: &Dataset,
        gazetteer: Gazetteer,
        cfg: &AguilarConfig,
    ) -> (Aguilar, Vec<f32>) {
        let mut model = Aguilar::init(dataset, gazetteer, cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1234);
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut history = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut count = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                model.zero_grads();
                for &i in chunk {
                    let ann = &dataset.sentences[i];
                    if ann.sentence.is_empty() {
                        continue;
                    }
                    let gold: Vec<usize> = ann.gold_bio().iter().map(|b| b.index()).collect();
                    total += model.train_sentence(&ann.sentence, &gold);
                    count += 1;
                }
                model.clip_grad_norm(cfg.clip);
                let mut params = model.params_mut();
                opt.step(&mut params);
            }
            history.push(if count > 0 { total / count as f32 } else { 0.0 });
        }
        (model, history)
    }

    fn encode(&self, sentence: &Sentence) -> Encoded {
        let texts: Vec<&str> = sentence.texts().collect();
        let pos = tag_sentence(&texts);
        Encoded {
            word_ids: texts
                .iter()
                .map(|t| self.word_vocab.get(&normalize::normalize_token(t)))
                .collect(),
            char_ids: texts
                .iter()
                .map(|t| encode_chars(&self.char_vocab, t))
                .collect(),
            pos_ids: pos.iter().map(|p| p.index() as u32 + 1).collect(),
            gaz: texts
                .iter()
                .map(|t| self.gazetteer.lexical_vector(t))
                .collect(),
        }
    }

    /// Inference-only feature assembly `[T, FEAT_DIM]`.
    fn features_infer(&self, enc: &Encoded) -> Matrix {
        let t_len = enc.word_ids.len();
        let mut x = Matrix::zeros(t_len, FEAT_DIM);
        let we = self.word_emb.infer(&enc.word_ids);
        let pe = self.pos_emb.infer(&enc.pos_ids);
        for t in 0..t_len {
            let row = x.row_mut(t);
            row[..WORD_DIM].copy_from_slice(we.row(t));
            let ce = self.char_emb.infer(&enc.char_ids[t]);
            let cv = self.char_cnn.infer(&ce);
            row[WORD_DIM..WORD_DIM + CNN_FILTERS].copy_from_slice(cv.row(0));
            row[WORD_DIM + CNN_FILTERS..WORD_DIM + CNN_FILTERS + POS_DIM]
                .copy_from_slice(pe.row(t));
            row[FEAT_DIM - GAZ_DIM..].copy_from_slice(&enc.gaz[t]);
        }
        x
    }

    /// Replace the gazetteer (external lexical resource) used at inference.
    pub fn set_gazetteer(&mut self, gazetteer: Gazetteer) {
        self.gazetteer = gazetteer;
    }

    /// Inference: (emissions, entity-aware embeddings).
    fn infer_forward(&self, sentence: &Sentence) -> (Matrix, Matrix) {
        let enc = self.encode(sentence);
        let x = self.features_infer(&enc);
        let h = self.bilstm.infer(&x);
        let mut a = self.dense.infer(&h);
        for v in &mut a.data {
            *v = v.max(0.0);
        }
        let e = self.emit.infer(&a);
        (e, a)
    }

    /// One training example: forward, CRF NLL, full backward. Returns loss.
    #[allow(clippy::needless_range_loop)] // indexing three parallel buffers
    fn train_sentence(&mut self, sentence: &Sentence, gold: &[usize]) -> f32 {
        let enc = self.encode(sentence);
        let t_len = enc.word_ids.len();
        // --- forward with caches ---
        let we = self.word_emb.forward(&enc.word_ids);
        let pe = self.pos_emb.forward(&enc.pos_ids);
        let mut cnn_caches: Vec<CnnCache> = Vec::with_capacity(t_len);
        let mut x = Matrix::zeros(t_len, FEAT_DIM);
        for t in 0..t_len {
            let ce = self.char_emb.infer(&enc.char_ids[t]);
            let (cv, cache) = self.char_cnn.forward_cached(&ce);
            cnn_caches.push(cache);
            let row = x.row_mut(t);
            row[..WORD_DIM].copy_from_slice(we.row(t));
            row[WORD_DIM..WORD_DIM + CNN_FILTERS].copy_from_slice(cv.row(0));
            row[WORD_DIM + CNN_FILTERS..WORD_DIM + CNN_FILTERS + POS_DIM]
                .copy_from_slice(pe.row(t));
            row[FEAT_DIM - GAZ_DIM..].copy_from_slice(&enc.gaz[t]);
        }
        let h = self.bilstm.forward(&x);
        let a = self.dense.forward(&h);
        let mut relu = Relu::new();
        let r = relu.forward(&a);
        let e = self.emit.forward(&r);
        let (loss, de) = self.crf.nll(&e, gold);
        // --- backward ---
        let gr = self.emit.backward(&de);
        let ga = relu.backward(&gr);
        let gh = self.dense.backward(&ga);
        let gx = self.bilstm.backward(&gh);
        // Split the feature gradient back to the encoders.
        let mut gw = Matrix::zeros(t_len, WORD_DIM);
        let mut gp = Matrix::zeros(t_len, POS_DIM);
        for t in 0..t_len {
            let row = gx.row(t);
            gw.row_mut(t).copy_from_slice(&row[..WORD_DIM]);
            gp.row_mut(t)
                .copy_from_slice(&row[WORD_DIM + CNN_FILTERS..WORD_DIM + CNN_FILTERS + POS_DIM]);
            let gc = Matrix::row_vector(&row[WORD_DIM..WORD_DIM + CNN_FILTERS]);
            let cache = cnn_caches[t].clone();
            let gchar = self.char_cnn.backward_cached(cache, &gc);
            self.char_emb.accumulate_grad(&enc.char_ids[t], &gchar);
        }
        self.word_emb.accumulate_grad(&enc.word_ids, &gw);
        self.pos_emb.accumulate_grad(&enc.pos_ids, &gp);
        loss
    }
}

impl Net for Aguilar {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.word_emb.params_mut();
        ps.extend(self.char_emb.params_mut());
        ps.extend(self.char_cnn.params_mut());
        ps.extend(self.pos_emb.params_mut());
        ps.extend(self.bilstm.params_mut());
        ps.extend(self.dense.params_mut());
        ps.extend(self.emit.params_mut());
        ps.extend(self.crf.params_mut());
        ps
    }
}

impl LocalEmd for Aguilar {
    fn name(&self) -> &str {
        "Aguilar et al."
    }

    fn embedding_dim(&self) -> Option<usize> {
        Some(EMB_DIM)
    }

    fn process(&self, sentence: &Sentence) -> LocalEmdOutput {
        static PROCESS_NS: crate::obs::ProcessHist =
            crate::obs::ProcessHist::new("emd_local_aguilar_process_ns");
        let _span = PROCESS_NS.span();
        if sentence.is_empty() {
            return LocalEmdOutput {
                spans: vec![],
                token_embeddings: Some(Matrix::zeros(0, EMB_DIM)),
            };
        }
        let (e, emb) = self.infer_forward(sentence);
        let labels = self.crf.decode(&e);
        let bio: Vec<Bio> = labels.into_iter().map(Bio::from_index).collect();
        LocalEmdOutput {
            spans: bio_to_spans(&bio),
            token_embeddings: Some(emb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_synth::datasets::training_stream;

    #[test]
    fn training_reduces_loss_and_tags() {
        let (world, d5) = training_stream(21, 0.005); // ~190 messages
        let (model, history) = Aguilar::train(
            &d5,
            world.gazetteer.clone(),
            &AguilarConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        assert!(
            history.last().unwrap() < &(history[0] * 0.7),
            "loss should drop: {history:?}"
        );
        // Token accuracy on the training data.
        let mut correct = 0usize;
        let mut total = 0usize;
        for s in d5.sentences.iter().take(80) {
            let out = model.process(&s.sentence);
            let pred = emd_text::token::spans_to_bio(&out.spans, s.sentence.len());
            let gold = s.gold_bio();
            correct += pred.iter().zip(gold.iter()).filter(|(a, b)| a == b).count();
            total += gold.len();
        }
        let acc = correct as f32 / total as f32;
        assert!(acc > 0.75, "token accuracy too low: {acc}");
    }

    #[test]
    fn emits_entity_aware_embeddings() {
        let (world, d5) = training_stream(22, 0.002);
        let (model, _) = Aguilar::train(
            &d5,
            world.gazetteer.clone(),
            &AguilarConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let s = &d5.sentences[0].sentence;
        let out = model.process(s);
        let emb = out
            .token_embeddings
            .expect("deep system must emit embeddings");
        assert_eq!(emb.rows, s.len());
        assert_eq!(emb.cols, EMB_DIM);
        assert!(
            emb.data.iter().all(|v| *v >= 0.0),
            "post-ReLU embeddings are non-negative"
        );
        assert!(model.is_deep());
    }

    #[test]
    fn empty_sentence_ok() {
        let (world, d5) = training_stream(23, 0.002);
        let model = Aguilar::init(&d5, world.gazetteer.clone(), 0);
        let s = Sentence {
            id: emd_text::token::SentenceId::new(0, 0),
            tokens: vec![],
        };
        let out = model.process(&s);
        assert!(out.spans.is_empty());
        assert_eq!(out.token_embeddings.unwrap().rows, 0);
    }
}
