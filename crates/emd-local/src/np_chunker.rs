//! Chunker-based EMD (§IV-A.1): noun-phrase chunking over POS tags.
//!
//! The paper's first instantiation runs TweeboParser to obtain POS tags and
//! dependency trees, then extracts noun phrases as entity candidates. Ours
//! chunks maximal nominal runs over the rule-based tagger of `emd-text` —
//! deliberately a *weak, syntax-only proposer*: high candidate coverage,
//! low precision (the paper reports P as low as 0.30), leaving plenty for
//! Global EMD to clean up.

use emd_core::local::{LocalEmd, LocalEmdOutput};
use emd_text::pos::{tag_sentence, PosTag};
use emd_text::token::{Sentence, Span};

/// If a chunk contains proper nouns, trim it to the maximal Propn run —
/// "governor Andy Beshear" → "Andy Beshear". Plain noun chunks are kept
/// whole (that is where the chunker's characteristic false positives come
/// from).
fn trim_to_propn(span: Span, tags: &[PosTag]) -> Span {
    let propn: Vec<usize> = (span.start..span.end)
        .filter(|&i| tags[i] == PosTag::Propn)
        .collect();
    if propn.is_empty() {
        return span;
    }
    // Maximal contiguous run containing the first Propn.
    let mut s = propn[0];
    let mut e = propn[0] + 1;
    while e < span.end && tags[e] == PosTag::Propn {
        e += 1;
    }
    while s > span.start && tags[s - 1] == PosTag::Propn {
        s -= 1;
    }
    Span::new(s, e)
}

/// Noun-phrase chunker Local EMD system.
#[derive(Debug, Clone, Default)]
pub struct NpChunker {
    /// Maximum chunk length in tokens.
    pub max_len: usize,
}

impl NpChunker {
    /// Default configuration (chunks capped at 6 tokens).
    pub fn new() -> NpChunker {
        NpChunker { max_len: 6 }
    }
}

/// Can this tag begin or continue a candidate noun phrase?
fn chunkable(tag: PosTag, token: &str) -> bool {
    match tag {
        PosTag::Propn => true,
        PosTag::Noun => token.len() > 2, // drop 1-2 letter noise
        _ => false,
    }
}

impl LocalEmd for NpChunker {
    fn name(&self) -> &str {
        "NP Chunker"
    }

    fn embedding_dim(&self) -> Option<usize> {
        None
    }

    fn process(&self, sentence: &Sentence) -> LocalEmdOutput {
        static PROCESS_NS: crate::obs::ProcessHist =
            crate::obs::ProcessHist::new("emd_local_np_chunker_process_ns");
        let _span = PROCESS_NS.span();
        let texts: Vec<&str> = sentence.texts().collect();
        let tags = tag_sentence(&texts);
        let mut spans = Vec::new();
        let mut start: Option<usize> = None;
        for i in 0..texts.len() {
            let ok = chunkable(tags[i], texts[i]);
            match (start, ok) {
                (None, true) => start = Some(i),
                (Some(s), true) => {
                    if i - s + 1 > self.max_len {
                        spans.push(Span::new(s, i));
                        start = Some(i);
                    }
                }
                (Some(s), false) => {
                    spans.push(Span::new(s, i));
                    start = None;
                }
                (None, false) => {}
            }
        }
        if let Some(s) = start {
            spans.push(Span::new(s, texts.len()));
        }
        let spans = spans
            .into_iter()
            .map(|sp| trim_to_propn(sp, &tags))
            .collect();
        LocalEmdOutput {
            spans,
            token_embeddings: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::SentenceId;

    fn run(words: &[&str]) -> Vec<Span> {
        let s = Sentence::from_tokens(SentenceId::new(0, 0), words.iter().copied());
        NpChunker::new().process(&s).spans
    }

    #[test]
    fn chunks_proper_noun_runs() {
        let spans = run(&["governor", "Andy", "Beshear", "speaks"]);
        // The chunk is trimmed to the proper-noun run.
        assert!(spans.contains(&Span::new(1, 3)), "{spans:?}");
    }

    #[test]
    fn common_nouns_overgenerate() {
        // The chunker is supposed to be noisy: plain nouns become candidates.
        let spans = run(&["the", "virus", "spreads"]);
        assert!(spans.contains(&Span::new(1, 2)), "{spans:?}");
    }

    #[test]
    fn verbs_and_function_words_excluded() {
        let spans = run(&["they", "are", "rising", "quickly"]);
        assert!(spans.is_empty(), "{spans:?}");
    }

    #[test]
    fn trailing_chunk_closed() {
        let spans = run(&["cases", "rise", "in", "Italy"]);
        assert!(spans.contains(&Span::new(3, 4)), "{spans:?}");
    }

    #[test]
    fn no_embeddings() {
        let s = Sentence::from_tokens(SentenceId::new(0, 0), ["Italy"]);
        let out = NpChunker::new().process(&s);
        assert!(out.token_embeddings.is_none());
        assert!(!NpChunker::new().is_deep());
    }
}
