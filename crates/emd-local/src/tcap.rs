//! T-CAP: the capitalization-informativeness classifier (§IV-A.2).
//!
//! TwitterNLP trains a classifier that "studies capitalization throughout
//! the entire sentence to predict whether or not it is informative" —
//! unreliable casing is rampant in tweets. We reproduce it as a logistic
//! regression over sentence-level casing statistics, trained against the
//! uninformative-casing criterion on a reference corpus.

use emd_nn::activations::sigmoid;
use emd_text::casing::{sentence_casing_uninformative, CapShape};
use emd_text::token::{Dataset, Sentence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

const N_FEATS: usize = 6;

/// Logistic-regression capitalization classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TCap {
    w: [f32; N_FEATS],
    b: f32,
}

/// Sentence-level casing statistics.
fn features(sentence: &Sentence) -> [f32; N_FEATS] {
    let mut n_alpha = 0f32;
    let mut n_init = 0f32;
    let mut n_upper = 0f32;
    let mut n_lower = 0f32;
    let mut first_cap = 0f32;
    for (i, t) in sentence.texts().enumerate() {
        match CapShape::of(t) {
            CapShape::Init | CapShape::Mixed => {
                n_alpha += 1.0;
                n_init += 1.0;
                if i == 0 {
                    first_cap = 1.0;
                }
            }
            CapShape::AllUpper => {
                n_alpha += 1.0;
                n_upper += 1.0;
                if i == 0 {
                    first_cap = 1.0;
                }
            }
            CapShape::AllLower => {
                n_alpha += 1.0;
                n_lower += 1.0;
            }
            CapShape::NonAlpha => {}
        }
    }
    let d = n_alpha.max(1.0);
    [
        n_init / d,
        n_upper / d,
        n_lower / d,
        first_cap,
        n_alpha / 20.0,
        1.0,
    ]
}

impl TCap {
    /// Train on a reference corpus: label 1 = informative casing.
    pub fn train(dataset: &Dataset, seed: u64) -> TCap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = [0f32; N_FEATS];
        for x in &mut w {
            *x = rng.gen_range(-0.01..0.01);
        }
        let mut model = TCap { w, b: 0.0 };
        let data: Vec<([f32; N_FEATS], f32)> = dataset
            .sentences
            .iter()
            .map(|s| {
                let y = if sentence_casing_uninformative(&s.sentence) {
                    0.0
                } else {
                    1.0
                };
                (features(&s.sentence), y)
            })
            .collect();
        let lr = 0.5f32;
        for _ in 0..30 {
            for (x, y) in &data {
                let z: f32 = model
                    .w
                    .iter()
                    .zip(x.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    + model.b;
                let g = sigmoid(z) - y;
                for (wi, xi) in model.w.iter_mut().zip(x.iter()) {
                    *wi -= lr * g * xi / data.len().max(1) as f32 * 64.0;
                }
                model.b -= lr * g / data.len().max(1) as f32 * 64.0;
            }
        }
        model
    }

    /// Probability that the sentence's casing is informative.
    pub fn predict(&self, sentence: &Sentence) -> f32 {
        let x = features(sentence);
        let z: f32 = self.w.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f32>() + self.b;
        sigmoid(z)
    }

    /// Hard decision at 0.5.
    pub fn informative(&self, sentence: &Sentence) -> bool {
        self.predict(sentence) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::{AnnotatedSentence, DatasetKind, SentenceId};

    fn corpus() -> Dataset {
        let mk = |id: u64, words: &[&str]| AnnotatedSentence {
            sentence: Sentence::from_tokens(SentenceId::new(id, 0), words.iter().copied()),
            gold: vec![],
        };
        let mut sentences = Vec::new();
        // Informative: normal mixed-case sentences.
        for i in 0..30u64 {
            sentences.push(mk(i, &["Cases", "rise", "in", "Italy", "today"]));
            sentences.push(mk(100 + i, &["the", "governor", "Beshear", "said", "so"]));
        }
        // Uninformative: ALL CAPS or all lowercase.
        for i in 0..30u64 {
            sentences.push(mk(200 + i, &["WE", "ARE", "DONE", "WITH", "THIS"]));
            sentences.push(mk(300 + i, &["italy", "is", "rising", "fast", "now"]));
        }
        Dataset {
            name: "t".into(),
            kind: DatasetKind::Streaming,
            n_topics: 1,
            sentences,
        }
    }

    #[test]
    fn learns_to_separate_casing_regimes() {
        let tcap = TCap::train(&corpus(), 0);
        let informative =
            Sentence::from_tokens(SentenceId::new(0, 0), ["Cases", "rise", "in", "Canada"]);
        let shouty =
            Sentence::from_tokens(SentenceId::new(1, 0), ["THIS", "IS", "ALL", "CAPS", "NOW"]);
        let flat = Sentence::from_tokens(
            SentenceId::new(2, 0),
            ["all", "lower", "case", "words", "here"],
        );
        assert!(tcap.predict(&informative) > tcap.predict(&shouty));
        assert!(tcap.predict(&informative) > tcap.predict(&flat));
        assert!(tcap.informative(&informative));
        assert!(!tcap.informative(&shouty));
    }
}
