//! TwitterNLP-style CRF tagging (§IV-A.2).
//!
//! Ritter et al.'s T-SEG: a CRF over orthographic, contextual (T-POS /
//! T-CHUNK), capitalization (T-CAP) and dictionary features. Here: the
//! `emd-crf` sparse linear-chain CRF over the same feature families, with a
//! trained [`TCap`] gating the shape features, and the world gazetteer
//! supplying dictionary features.

use crate::tcap::TCap;
use emd_core::local::{LocalEmd, LocalEmdOutput};
use emd_crf::features::{extract_features, FeatureConfig};
use emd_crf::tagger::{CrfTagger, Example, TrainConfig};
use emd_text::gazetteer::Gazetteer;
use emd_text::pos::tag_sentence;
use emd_text::token::{bio_to_spans, Bio, Dataset, Sentence};

/// The CRF-based Local EMD system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TwitterNlp {
    tagger: CrfTagger,
    tcap: TCap,
    gazetteer: Gazetteer,
    feat_cfg: FeatureConfig,
}

/// Training options.
#[derive(Debug, Clone)]
pub struct TwitterNlpConfig {
    /// CRF training configuration.
    pub crf: TrainConfig,
    /// Feature-extraction configuration.
    pub features: FeatureConfig,
}

impl Default for TwitterNlpConfig {
    fn default() -> Self {
        TwitterNlpConfig {
            crf: TrainConfig {
                epochs: 6,
                lr: 0.05,
                l2: 1e-6,
                batch_size: 8,
                seed: 42,
            },
            features: FeatureConfig::default(),
        }
    }
}

impl TwitterNlp {
    /// Train the full system (T-CAP, then T-SEG) on an annotated corpus.
    pub fn train(dataset: &Dataset, gazetteer: Gazetteer, cfg: &TwitterNlpConfig) -> TwitterNlp {
        let tcap = TCap::train(dataset, cfg.crf.seed);
        let mut examples: Vec<Example> = Vec::with_capacity(dataset.len());
        for s in &dataset.sentences {
            if s.sentence.is_empty() {
                continue;
            }
            let toks: Vec<String> = s.sentence.texts().map(|t| t.to_string()).collect();
            let pos = tag_sentence(&toks);
            let informative = tcap.informative(&s.sentence);
            let feats = extract_features(&toks, &pos, &gazetteer, informative, &cfg.features);
            let gold: Vec<usize> = s.gold_bio().iter().map(|b| b.index()).collect();
            examples.push((feats, gold));
        }
        let mut tagger = CrfTagger::new(&cfg.features);
        tagger.train(&examples, &cfg.crf);
        TwitterNlp {
            tagger,
            tcap,
            gazetteer,
            feat_cfg: cfg.features.clone(),
        }
    }

    /// Replace the gazetteer (external dictionary resource).
    pub fn set_gazetteer(&mut self, gazetteer: Gazetteer) {
        self.gazetteer = gazetteer;
    }

    /// Access to the trained T-CAP (diagnostics).
    pub fn tcap(&self) -> &TCap {
        &self.tcap
    }
}

impl LocalEmd for TwitterNlp {
    fn name(&self) -> &str {
        "TwitterNLP"
    }

    fn embedding_dim(&self) -> Option<usize> {
        None
    }

    fn process(&self, sentence: &Sentence) -> LocalEmdOutput {
        static PROCESS_NS: crate::obs::ProcessHist =
            crate::obs::ProcessHist::new("emd_local_twitter_nlp_process_ns");
        let _span = PROCESS_NS.span();
        if sentence.is_empty() {
            return LocalEmdOutput {
                spans: vec![],
                token_embeddings: None,
            };
        }
        let toks: Vec<String> = sentence.texts().map(|t| t.to_string()).collect();
        let pos = tag_sentence(&toks);
        let informative = self.tcap.informative(sentence);
        let feats = extract_features(&toks, &pos, &self.gazetteer, informative, &self.feat_cfg);
        let bio: Vec<Bio> = self.tagger.decode_bio(&feats);
        LocalEmdOutput {
            spans: bio_to_spans(&bio),
            token_embeddings: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_synth::datasets::training_stream;

    #[test]
    fn trains_and_tags_synthetic_stream() {
        let (world, d5) = training_stream(11, 0.01); // ~380 messages
        let model = TwitterNlp::train(&d5, world.gazetteer.clone(), &TwitterNlpConfig::default());
        // Evaluate token-level agreement on the training data (should be
        // well above chance).
        let mut correct = 0usize;
        let mut total = 0usize;
        for s in d5.sentences.iter().take(150) {
            let out = model.process(&s.sentence);
            let pred = emd_text::token::spans_to_bio(&out.spans, s.sentence.len());
            let gold = s.gold_bio();
            correct += pred.iter().zip(gold.iter()).filter(|(a, b)| a == b).count();
            total += gold.len();
        }
        let acc = correct as f32 / total as f32;
        assert!(acc > 0.75, "token accuracy too low: {acc}");
    }

    #[test]
    fn empty_sentence() {
        let (world, d5) = training_stream(12, 0.003);
        let model = TwitterNlp::train(&d5, world.gazetteer.clone(), &TwitterNlpConfig::default());
        let s = Sentence {
            id: emd_text::token::SentenceId::new(0, 0),
            tokens: vec![],
        };
        assert!(model.process(&s).spans.is_empty());
    }
}
