//! Shared corpus-preparation helpers for training Local EMD systems.

use emd_text::normalize;
use emd_text::token::{Bio, Dataset};
use emd_text::vocab::Vocab;

/// Build a lower-cased, normalized word vocabulary from a dataset, pruned
/// to `min_freq`.
pub fn build_word_vocab(dataset: &Dataset, min_freq: u64) -> Vocab {
    let mut v = Vocab::new(true);
    for s in &dataset.sentences {
        for t in s.sentence.texts() {
            v.add(&normalize::normalize_token(t));
        }
    }
    v.pruned(min_freq)
}

/// Build a character vocabulary (single-char strings) from a dataset.
pub fn build_char_vocab(dataset: &Dataset) -> Vocab {
    let mut v = Vocab::new(false);
    for s in &dataset.sentences {
        for t in s.sentence.texts() {
            for c in t.chars() {
                v.add(&c.to_string());
            }
        }
    }
    v
}

/// Encode a word's characters with a char vocabulary.
pub fn encode_chars(vocab: &Vocab, word: &str) -> Vec<u32> {
    word.chars().map(|c| vocab.get(&c.to_string())).collect()
}

/// Per-sentence gold BIO label indices for the whole dataset.
pub fn gold_labels(dataset: &Dataset) -> Vec<Vec<usize>> {
    dataset
        .sentences
        .iter()
        .map(|s| s.gold_bio().iter().map(|b| b.index()).collect())
        .collect()
}

/// Sanity helper: label count matches [`Bio::COUNT`].
pub const N_LABELS: usize = Bio::COUNT;

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::{AnnotatedSentence, DatasetKind, Sentence, SentenceId, Span};

    fn toy() -> Dataset {
        let s = AnnotatedSentence {
            sentence: Sentence::from_tokens(SentenceId::new(0, 0), ["Italy", "Italy", "x"]),
            gold: vec![Span::new(0, 1), Span::new(1, 2)],
        };
        Dataset {
            name: "t".into(),
            kind: DatasetKind::Streaming,
            n_topics: 1,
            sentences: vec![s],
        }
    }

    #[test]
    fn word_vocab_normalizes_and_prunes() {
        let v = build_word_vocab(&toy(), 2);
        assert_ne!(v.get("italy"), emd_text::vocab::UNK);
        assert_eq!(v.get("x"), emd_text::vocab::UNK, "freq-1 token pruned");
    }

    #[test]
    fn char_vocab_and_encoding() {
        let v = build_char_vocab(&toy());
        let ids = encode_chars(&v, "Ix");
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|&i| i != emd_text::vocab::UNK));
        assert_eq!(encode_chars(&v, "Z")[0], emd_text::vocab::UNK);
    }

    #[test]
    fn gold_labels_shape() {
        let g = gold_labels(&toy());
        assert_eq!(g, vec![vec![0, 0, 2]]); // B B O
    }
}
