//! MiniBERT: a from-scratch transformer encoder fine-tuned for EMD,
//! standing in for BERTweet (§IV-A.4).
//!
//! Same computational shape as the original at laptop scale: learned BPE
//! subwords ([`emd_text::bpe`]), learned positional embeddings, a stack of
//! post-LN transformer encoder blocks, and a feed-forward + softmax token
//! classification head (BERTweet's fine-tuning head — no CRF). The hidden
//! states of the last encoder layer, gathered at each word's first subword,
//! are the **entity-aware token embeddings** the Global EMD phase consumes
//! ("the layer prior to the output softmax layer").

use emd_core::local::{LocalEmd, LocalEmdOutput};
use emd_nn::activations::Relu;
use emd_nn::attention::MultiHeadAttention;
use emd_nn::dense::Dense;
use emd_nn::embedding::Embedding;
use emd_nn::layernorm::LayerNorm;
use emd_nn::loss::softmax_xent;
use emd_nn::matrix::Matrix;
use emd_nn::optim::Adam;
use emd_nn::param::{Net, Param};
use emd_text::bpe::{Bpe, CLS};
use emd_text::normalize;
use emd_text::token::{bio_to_spans, Bio, Dataset, Sentence};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Model (hidden) dimensionality — BERTweet's 768 scaled down; the paper
/// itself projects 768 → 300 in the phrase embedder, so the dimension is a
/// free hyperparameter.
pub const MODEL_DIM: usize = 48;
const N_HEADS: usize = 4;
const N_BLOCKS: usize = 2;
const FF_DIM: usize = 96;
const MAX_SUBWORDS: usize = 96;
const BPE_MERGES: usize = 500;

/// One post-LN transformer encoder block.
#[derive(serde::Serialize, serde::Deserialize)]
struct EncoderBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff1: Dense,
    ff2: Dense,
    ln2: LayerNorm,
    #[serde(skip)]
    relu: Relu,
}

impl EncoderBlock {
    fn new(rng: &mut StdRng) -> EncoderBlock {
        EncoderBlock {
            attn: MultiHeadAttention::new(MODEL_DIM, N_HEADS, rng),
            ln1: LayerNorm::new(MODEL_DIM),
            ff1: Dense::new(MODEL_DIM, FF_DIM, rng),
            ff2: Dense::new(FF_DIM, MODEL_DIM, rng),
            ln2: LayerNorm::new(MODEL_DIM),
            relu: Relu::new(),
        }
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let a = self.attn.forward(x);
        let mut x1 = x.clone();
        x1.add_assign(&a);
        let h1 = self.ln1.forward(&x1);
        let f = self.ff2.forward(&self.relu.forward(&self.ff1.forward(&h1)));
        let mut x2 = h1.clone();
        x2.add_assign(&f);
        self.ln2.forward(&x2)
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        let a = self.attn.infer(x);
        let mut x1 = x.clone();
        x1.add_assign(&a);
        let h1 = self.ln1.infer(&x1);
        let mut pre = self.ff1.infer(&h1);
        for v in &mut pre.data {
            *v = v.max(0.0);
        }
        let f = self.ff2.infer(&pre);
        let mut x2 = h1.clone();
        x2.add_assign(&f);
        self.ln2.infer(&x2)
    }

    fn backward(&mut self, g: &Matrix) -> Matrix {
        let g2 = self.ln2.backward(g);
        let gff = self
            .ff1
            .backward(&self.relu.backward(&self.ff2.backward(&g2)));
        let mut gh1 = g2;
        gh1.add_assign(&gff);
        let g1 = self.ln1.backward(&gh1);
        let gattn = self.attn.backward(&g1);
        let mut gx = g1;
        gx.add_assign(&gattn);
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.attn.params_mut();
        ps.extend(self.ln1.params_mut());
        ps.extend(self.ff1.params_mut());
        ps.extend(self.ff2.params_mut());
        ps.extend(self.ln2.params_mut());
        ps
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct MiniBertConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sentences per optimizer step.
    pub batch_size: usize,
    /// Init/shuffle seed.
    pub seed: u64,
    /// Gradient clipping max-norm.
    pub clip: f32,
    /// Masked-language-model pretraining epochs over the (unlabeled)
    /// corpus before fine-tuning — BERTweet's recipe at miniature scale.
    pub pretrain_epochs: usize,
    /// Fraction of subword positions masked during pretraining.
    pub mask_prob: f64,
}

impl Default for MiniBertConfig {
    fn default() -> Self {
        MiniBertConfig {
            epochs: 6,
            lr: 0.0025,
            batch_size: 8,
            seed: 42,
            clip: 5.0,
            pretrain_epochs: 2,
            mask_prob: 0.15,
        }
    }
}

/// The MiniBERT Local EMD system.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct MiniBert {
    bpe: Bpe,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<EncoderBlock>,
    head: Dense,
    /// Masked-LM prediction head, used only during pretraining.
    mlm_head: Dense,
}

impl MiniBert {
    /// Learn a BPE vocabulary from the corpus and initialize the model.
    pub fn init(dataset: &Dataset, seed: u64) -> MiniBert {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for s in &dataset.sentences {
            for t in s.sentence.texts() {
                *counts.entry(normalize::normalize_token(t)).or_insert(0) += 1;
            }
        }
        // Sort for determinism (HashMap iteration order is randomized).
        let mut sorted: Vec<(&String, &u64)> = counts.iter().collect();
        sorted.sort();
        let bpe = Bpe::learn(
            sorted.into_iter().map(|(w, c)| (w.as_str(), *c)),
            BPE_MERGES,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        MiniBert {
            tok_emb: Embedding::new(bpe.vocab_size(), MODEL_DIM, &mut rng),
            pos_emb: Embedding::new(MAX_SUBWORDS + 1, MODEL_DIM, &mut rng),
            blocks: (0..N_BLOCKS).map(|_| EncoderBlock::new(&mut rng)).collect(),
            head: Dense::new(MODEL_DIM, Bio::COUNT, &mut rng),
            mlm_head: Dense::new(MODEL_DIM, bpe.vocab_size(), &mut rng),
            bpe,
        }
    }

    /// One masked-LM pretraining step: mask a fraction of subword
    /// positions (replacing their ids with `UNK`), predict the original
    /// ids at the masked positions. Returns the loss, or `None` when
    /// nothing was masked.
    fn pretrain_sentence(
        &mut self,
        sentence: &Sentence,
        mask_prob: f64,
        rng: &mut StdRng,
    ) -> Option<f32> {
        use rand::Rng;
        let (ids, positions, _) = self.encode(sentence);
        if ids.len() < 3 {
            return None;
        }
        let mut masked_ids = ids.clone();
        let mut targets: Vec<(usize, usize)> = Vec::new(); // (position, original id)
        for (i, id) in ids.iter().enumerate().skip(1) {
            if rng.gen_bool(mask_prob) {
                targets.push((i, *id as usize));
                masked_ids[i] = emd_text::bpe::UNK;
            }
        }
        if targets.is_empty() {
            return None;
        }
        // Forward with caches.
        let xe = self.tok_emb.forward(&masked_ids);
        let pe = self.pos_emb.forward(&positions);
        let mut h = xe.clone();
        h.add_assign(&pe);
        for b in &mut self.blocks {
            h = b.forward(&h);
        }
        let mut masked_h = Matrix::zeros(targets.len(), MODEL_DIM);
        for (r, (p, _)) in targets.iter().enumerate() {
            masked_h.row_mut(r).copy_from_slice(h.row(*p));
        }
        let logits = self.mlm_head.forward(&masked_h);
        let labels: Vec<usize> = targets.iter().map(|(_, t)| *t).collect();
        let (loss, glogits) = softmax_xent(&logits, &labels);
        // Backward.
        let gmasked = self.mlm_head.backward(&glogits);
        let mut gh = Matrix::zeros(h.rows, MODEL_DIM);
        for (r, (p, _)) in targets.iter().enumerate() {
            let dst = gh.row_mut(*p);
            for (a, &b) in dst.iter_mut().zip(gmasked.row(r)) {
                *a += b;
            }
        }
        for b in self.blocks.iter_mut().rev() {
            gh = b.backward(&gh);
        }
        self.tok_emb.backward(&gh);
        self.pos_emb.backward(&gh);
        Some(loss)
    }

    /// Masked-LM pretraining over the corpus (ignores annotations).
    /// Returns per-epoch mean MLM loss.
    pub fn pretrain(&mut self, dataset: &Dataset, cfg: &MiniBertConfig) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x91e);
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut history = Vec::new();
        for _ in 0..cfg.pretrain_epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut count = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                self.zero_grads();
                for &i in chunk {
                    let s = &dataset.sentences[i].sentence;
                    if let Some(l) = self.pretrain_sentence(s, cfg.mask_prob, &mut rng) {
                        total += l;
                        count += 1;
                    }
                }
                self.clip_grad_norm(cfg.clip);
                let mut params = self.params_mut();
                opt.step(&mut params);
            }
            history.push(if count > 0 { total / count as f32 } else { 0.0 });
        }
        history
    }

    /// Fine-tune on the annotated corpus; returns per-epoch mean loss.
    pub fn train(dataset: &Dataset, cfg: &MiniBertConfig) -> (MiniBert, Vec<f32>) {
        let mut model = MiniBert::init(dataset, cfg.seed);
        if cfg.pretrain_epochs > 0 {
            model.pretrain(dataset, cfg);
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xbeef);
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut history = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut count = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                model.zero_grads();
                for &i in chunk {
                    let ann = &dataset.sentences[i];
                    if ann.sentence.is_empty() {
                        continue;
                    }
                    let gold: Vec<usize> = ann.gold_bio().iter().map(|b| b.index()).collect();
                    if let Some(loss) = model.train_sentence(&ann.sentence, &gold) {
                        total += loss;
                        count += 1;
                    }
                }
                model.clip_grad_norm(cfg.clip);
                let mut params = model.params_mut();
                opt.step(&mut params);
            }
            history.push(if count > 0 { total / count as f32 } else { 0.0 });
        }
        (model, history)
    }

    /// Encode a sentence: `[CLS] subwords…` ids, position ids, and the
    /// (clamped) index of each word's first subword in the input sequence.
    fn encode(&self, sentence: &Sentence) -> (Vec<u32>, Vec<u32>, Vec<usize>) {
        let texts: Vec<String> = sentence.texts().map(normalize::normalize_token).collect();
        let (sub_ids, first) = self.bpe.encode_tokens(texts.iter().map(|s| s.as_str()));
        let mut ids = Vec::with_capacity(sub_ids.len() + 1);
        ids.push(CLS);
        ids.extend(sub_ids);
        ids.truncate(MAX_SUBWORDS);
        let positions: Vec<u32> = (0..ids.len() as u32).map(|p| p + 1).collect();
        let word_pos: Vec<usize> = first
            .iter()
            .map(|&f| (f + 1).min(ids.len().saturating_sub(1)))
            .collect();
        (ids, positions, word_pos)
    }

    fn embed(&self, ids: &[u32], positions: &[u32]) -> Matrix {
        let mut x = self.tok_emb.infer(ids);
        x.add_assign(&self.pos_emb.infer(positions));
        x
    }

    /// Inference: word-level (emissions, entity-aware embeddings).
    fn infer_forward(&self, sentence: &Sentence) -> (Matrix, Matrix) {
        let (ids, positions, word_pos) = self.encode(sentence);
        let mut h = self.embed(&ids, &positions);
        for b in &self.blocks {
            h = b.infer(&h);
        }
        let mut word_h = Matrix::zeros(word_pos.len(), MODEL_DIM);
        for (w, &p) in word_pos.iter().enumerate() {
            word_h.row_mut(w).copy_from_slice(h.row(p));
        }
        let logits = self.head.infer(&word_h);
        (logits, word_h)
    }

    /// One training step; `None` if the sentence produced no usable words.
    fn train_sentence(&mut self, sentence: &Sentence, gold: &[usize]) -> Option<f32> {
        let (ids, positions, word_pos) = self.encode(sentence);
        if word_pos.is_empty() {
            return None;
        }
        // Forward with caches.
        let xe = self.tok_emb.forward(&ids);
        let pe = self.pos_emb.forward(&positions);
        let mut h = xe.clone();
        h.add_assign(&pe);
        for b in &mut self.blocks {
            h = b.forward(&h);
        }
        let mut word_h = Matrix::zeros(word_pos.len(), MODEL_DIM);
        for (w, &p) in word_pos.iter().enumerate() {
            word_h.row_mut(w).copy_from_slice(h.row(p));
        }
        let logits = self.head.forward(&word_h);
        let (loss, glogits) = softmax_xent(&logits, gold);
        // Backward.
        let gword = self.head.backward(&glogits);
        let mut gh = Matrix::zeros(h.rows, MODEL_DIM);
        for (w, &p) in word_pos.iter().enumerate() {
            let dst = gh.row_mut(p);
            for (a, &b) in dst.iter_mut().zip(gword.row(w)) {
                *a += b;
            }
        }
        for b in self.blocks.iter_mut().rev() {
            gh = b.backward(&gh);
        }
        self.tok_emb.backward(&gh);
        self.pos_emb.backward(&gh);
        Some(loss)
    }
}

impl Net for MiniBert {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.tok_emb.params_mut();
        ps.extend(self.pos_emb.params_mut());
        for b in &mut self.blocks {
            ps.extend(b.params_mut());
        }
        ps.extend(self.head.params_mut());
        ps.extend(self.mlm_head.params_mut());
        ps
    }
}

impl LocalEmd for MiniBert {
    fn name(&self) -> &str {
        "BERTweet"
    }

    fn embedding_dim(&self) -> Option<usize> {
        Some(MODEL_DIM)
    }

    fn process(&self, sentence: &Sentence) -> LocalEmdOutput {
        static PROCESS_NS: crate::obs::ProcessHist =
            crate::obs::ProcessHist::new("emd_local_mini_bert_process_ns");
        let _span = PROCESS_NS.span();
        if sentence.is_empty() {
            return LocalEmdOutput {
                spans: vec![],
                token_embeddings: Some(Matrix::zeros(0, MODEL_DIM)),
            };
        }
        let (logits, emb) = self.infer_forward(sentence);
        let mut bio = Vec::with_capacity(logits.rows);
        for r in 0..logits.rows {
            let row = logits.row(r);
            let mut best = 0usize;
            for c in 1..row.len() {
                if row[c] > row[best] {
                    best = c;
                }
            }
            bio.push(Bio::from_index(best));
        }
        LocalEmdOutput {
            spans: bio_to_spans(&bio),
            token_embeddings: Some(emb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_synth::datasets::training_stream;

    #[test]
    fn training_reduces_loss_and_tags() {
        let (_, d5) = training_stream(31, 0.004); // ~150 messages
        let (model, history) = MiniBert::train(
            &d5,
            &MiniBertConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        assert!(
            history.last().unwrap() < &(history[0] * 0.8),
            "loss should drop: {history:?}"
        );
        let mut correct = 0usize;
        let mut total = 0usize;
        for s in d5.sentences.iter().take(60) {
            let out = model.process(&s.sentence);
            let pred = emd_text::token::spans_to_bio(&out.spans, s.sentence.len());
            let gold = s.gold_bio();
            correct += pred.iter().zip(gold.iter()).filter(|(a, b)| a == b).count();
            total += gold.len();
        }
        let acc = correct as f32 / total as f32;
        assert!(acc > 0.7, "token accuracy too low: {acc}");
    }

    #[test]
    fn mlm_pretraining_reduces_loss() {
        let (_, d5) = training_stream(35, 0.003);
        let mut model = MiniBert::init(&d5, 0);
        let cfg = MiniBertConfig {
            pretrain_epochs: 3,
            ..Default::default()
        };
        let hist = model.pretrain(&d5, &cfg);
        assert_eq!(hist.len(), 3);
        assert!(
            hist.last().unwrap() < &hist[0],
            "MLM loss should decrease: {hist:?}"
        );
    }

    #[test]
    fn embeddings_word_aligned() {
        let (_, d5) = training_stream(32, 0.002);
        let model = MiniBert::init(&d5, 0);
        let s = &d5.sentences[0].sentence;
        let out = model.process(s);
        let emb = out.token_embeddings.unwrap();
        assert_eq!(emb.rows, s.len(), "one embedding row per word");
        assert_eq!(emb.cols, MODEL_DIM);
    }

    #[test]
    fn long_sentence_truncates_safely() {
        let (_, d5) = training_stream(33, 0.002);
        let model = MiniBert::init(&d5, 0);
        let words: Vec<String> = (0..200).map(|i| format!("word{i}")).collect();
        let s = Sentence::from_tokens(emd_text::token::SentenceId::new(0, 0), words);
        let out = model.process(&s);
        assert_eq!(out.token_embeddings.unwrap().rows, 200);
    }

    #[test]
    fn empty_sentence_ok() {
        let (_, d5) = training_stream(34, 0.002);
        let model = MiniBert::init(&d5, 0);
        let s = Sentence {
            id: emd_text::token::SentenceId::new(0, 0),
            tokens: vec![],
        };
        let out = model.process(&s);
        assert!(out.spans.is_empty());
    }
}
