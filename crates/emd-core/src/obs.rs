//! Pipeline observability: named metric handles for every Globalizer
//! phase, plus the always-on per-run [`PhaseTimings`] breakdown.
//!
//! Two complementary mechanisms:
//!
//! * [`PipelineMetrics`] — handles into an [`emd_obs::Registry`]
//!   (the process-wide [`emd_obs::global`] one by default). Counters,
//!   gauges, and latency histograms across runs; gated on the global
//!   enabled flag ([`emd_obs::set_enabled`]), so an uninstrumented binary
//!   pays only a relaxed load + branch per phase.
//! * [`PhaseTimings`] — cumulative per-run wall-clock nanoseconds per
//!   phase, accumulated unconditionally (one `Instant` read per phase
//!   *call*, not per record) in the [`crate::GlobalizerState`] and copied
//!   into [`crate::GlobalizerOutput::phase_timings`] at finalize. This is
//!   what experiments persist to `results/` JSON.
//!
//! Metric names follow `emd_<area>_<metric>_<unit>` (see DESIGN.md
//! § "Observability").

use emd_obs::{Counter, Gauge, Histogram, Registry, Snapshot};
use serde::{Deserialize, Serialize};

/// Cumulative wall-clock nanoseconds spent in each pipeline phase over
/// one run (one `GlobalizerState`'s lifetime). Accumulated at phase-call
/// granularity regardless of the metrics flag; excluded from output
/// equality comparisons, so instrumented and uninstrumented runs stay
/// bit-identical where it matters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Local EMD inference (per-sentence plug-in calls).
    pub local_infer_ns: u64,
    /// TweetBase record storage + CTrie seed registration.
    pub ingest_ns: u64,
    /// Mention extraction / occurrence scan (staging, all shards).
    pub scan_ns: u64,
    /// Sequential apply: candidate pool updates + embedding pooling.
    pub pool_ns: u64,
    /// Candidate classification (scoring + label application).
    pub classify_ns: u64,
    /// Adjacent-pair promotion search at stream close.
    pub promotion_ns: u64,
    /// Output assembly (per-sentence span emission).
    pub emit_ns: u64,
    /// Whole finalize call (closing rescan + γ resolution + emit).
    pub finalize_ns: u64,
    /// Window enforcement: settling rescans, record eviction, candidate
    /// pruning, and state compaction.
    pub evict_ns: u64,
}

impl PhaseTimings {
    /// Total nanoseconds across the batch-time phases (finalize already
    /// subsumes its sub-phases, so it is not added again).
    pub fn batch_total_ns(&self) -> u64 {
        self.local_infer_ns + self.ingest_ns + self.scan_ns + self.pool_ns + self.classify_ns
    }

    /// `(phase name, cumulative ns)` pairs in pipeline order, for tables
    /// and JSON reports.
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("local_infer_ns", self.local_infer_ns),
            ("ingest_ns", self.ingest_ns),
            ("scan_ns", self.scan_ns),
            ("pool_ns", self.pool_ns),
            ("classify_ns", self.classify_ns),
            ("promotion_ns", self.promotion_ns),
            ("emit_ns", self.emit_ns),
            ("finalize_ns", self.finalize_ns),
            ("evict_ns", self.evict_ns),
        ]
    }
}

macro_rules! pipeline_metrics {
    (
        counters { $($cfield:ident => $cname:literal),* $(,)? }
        gauges { $($gfield:ident => $gname:literal),* $(,)? }
        histograms { $($hfield:ident => $hname:literal),* $(,)? }
    ) => {
        /// Named handles for every pipeline metric, resolved once against
        /// a registry so hot paths never take the registry lock.
        #[derive(Debug, Clone)]
        pub struct PipelineMetrics {
            $(#[doc = concat!("`", $cname, "`")] pub $cfield: Counter,)*
            $(#[doc = concat!("`", $gname, "`")] pub $gfield: Gauge,)*
            $(#[doc = concat!("`", $hname, "`")] pub $hfield: Histogram,)*
        }

        impl PipelineMetrics {
            /// Resolve (get-or-create) every pipeline metric in `registry`.
            pub fn from_registry(registry: &Registry) -> PipelineMetrics {
                PipelineMetrics {
                    $($cfield: registry.counter($cname),)*
                    $($gfield: registry.gauge($gname),)*
                    $($hfield: registry.histogram($hname),)*
                }
            }

            /// A point-in-time [`Snapshot`] of the pipeline metrics alone
            /// (unlike [`Registry::snapshot`], unrelated metrics sharing
            /// the registry are not included). Sorted by name within each
            /// kind, like a registry snapshot.
            pub fn snapshot(&self) -> Snapshot {
                let mut snap = Snapshot::default();
                $(snap.counters.push(emd_obs::CounterSnapshot {
                    name: $cname.to_string(),
                    value: self.$cfield.get(),
                });)*
                $(snap.gauges.push(emd_obs::GaugeSnapshot {
                    name: $gname.to_string(),
                    value: self.$gfield.get(),
                });)*
                $(snap.histograms.push(self.$hfield.snapshot($hname));)*
                snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
                snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
                snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
                snap
            }
        }
    };
}

pipeline_metrics! {
    counters {
        sentences_total => "emd_pipeline_sentences_total",
        local_spans_total => "emd_pipeline_local_spans_total",
        trie_inserts_total => "emd_trie_inserts_total",
        scan_records_total => "emd_scan_records_total",
        scan_mentions_total => "emd_scan_mentions_total",
        pool_embeddings_total => "emd_pool_embeddings_total",
        classify_candidates_total => "emd_classify_candidates_total",
        finalize_rescan_sentences_total => "emd_finalize_rescan_sentences_total",
        finalize_promotion_rounds_total => "emd_finalize_promotion_rounds_total",
        finalize_promotions_total => "emd_finalize_promotions_total",
        quarantined_total => "emd_resilience_quarantined_total",
        shard_retries_total => "emd_resilience_shard_retries_total",
        item_retries_total => "emd_resilience_item_retries_total",
        trace_events_total => "emd_trace_events_total",
        trace_dropped_events_total => "emd_trace_dropped_events_total",
        evicted_records_total => "emd_window_evicted_records_total",
        pruned_candidates_total => "emd_window_pruned_candidates_total",
        compactions_total => "emd_window_compactions_total",
        sentinel_alerts_total => "emd_sentinel_alerts_total",
        sentinel_drift_total => "emd_sentinel_drift_total",
        sentinel_transitions_total => "emd_sentinel_transitions_total",
        sentinel_slo_burn_total => "emd_sentinel_slo_burn_batches_total",
        guard_admitted_total => "emd_guard_admitted_batches_total",
        guard_shed_total => "emd_guard_shed_batches_total",
        guard_deadline_exceeded_total => "emd_guard_deadline_exceeded_total",
        guard_breaker_transitions_total => "emd_guard_breaker_transitions_total",
        guard_backoff_retries_total => "emd_guard_backoff_retries_total",
        deadletter_records_total => "emd_resilience_deadletter_records_total",
        checkpoint_fallbacks_total => "emd_resilience_checkpoint_fallbacks_total",
    }
    gauges {
        dirty_depth => "emd_finalize_dirty_depth",
        rescan_coverage => "emd_finalize_rescan_coverage",
        degraded_candidates => "emd_resilience_degraded_candidates",
        window_depth => "emd_window_depth",
        resident_bytes => "emd_window_resident_bytes",
        sentinel_health => "emd_sentinel_health",
        guard_queue_depth => "emd_guard_queue_depth",
        guard_breaker_open => "emd_guard_breaker_open",
        guard_backpressure => "emd_guard_backpressure",
    }
    histograms {
        local_infer_ns => "emd_pipeline_local_infer_ns",
        ingest_ns => "emd_pipeline_ingest_ns",
        trie_register_ns => "emd_trie_register_ns",
        scan_ns => "emd_pipeline_scan_ns",
        scan_shard_ns => "emd_pipeline_scan_shard_ns",
        pool_ns => "emd_pipeline_pool_ns",
        classify_ns => "emd_pipeline_classify_ns",
        finalize_ns => "emd_pipeline_finalize_ns",
        evict_ns => "emd_pipeline_evict_ns",
        checkpoint_write_ns => "emd_resilience_checkpoint_write_ns",
        checkpoint_restore_ns => "emd_resilience_checkpoint_restore_ns",
    }
}

impl PipelineMetrics {
    /// Handles into the process-wide [`emd_obs::global`] registry — the
    /// default every [`crate::Globalizer`] records to.
    pub fn global() -> PipelineMetrics {
        PipelineMetrics::from_registry(emd_obs::global())
    }

    /// Handles into a per-stream [`emd_obs::Scope`]'s registry. Samples
    /// recorded through the returned handles land only in that scope;
    /// an [`emd_obs::ScopeSet`] roll-up renders them as labeled series
    /// next to the process aggregate.
    pub fn from_scope(scope: &emd_obs::Scope) -> PipelineMetrics {
        PipelineMetrics::from_registry(scope.registry())
    }
}

impl Default for PipelineMetrics {
    fn default() -> PipelineMetrics {
        PipelineMetrics::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_contains_every_pipeline_metric() {
        let reg = Registry::new();
        let m = PipelineMetrics::from_registry(&reg);
        let snap = m.snapshot();
        assert_eq!(snap.counters.len(), 29);
        assert_eq!(snap.gauges.len(), 9);
        assert_eq!(snap.histograms.len(), 11);
        assert!(snap.counter("emd_guard_admitted_batches_total").is_some());
        assert!(snap.counter("emd_guard_shed_batches_total").is_some());
        assert!(snap.counter("emd_guard_deadline_exceeded_total").is_some());
        assert!(snap
            .counter("emd_guard_breaker_transitions_total")
            .is_some());
        assert!(snap.counter("emd_guard_backoff_retries_total").is_some());
        assert!(snap
            .counter("emd_resilience_deadletter_records_total")
            .is_some());
        assert!(snap
            .counter("emd_resilience_checkpoint_fallbacks_total")
            .is_some());
        assert!(snap.gauge("emd_guard_queue_depth").is_some());
        assert!(snap.gauge("emd_guard_breaker_open").is_some());
        assert!(snap.gauge("emd_guard_backpressure").is_some());
        assert!(snap.counter("emd_sentinel_alerts_total").is_some());
        assert!(snap.counter("emd_sentinel_drift_total").is_some());
        assert!(snap.counter("emd_sentinel_transitions_total").is_some());
        assert!(snap
            .counter("emd_sentinel_slo_burn_batches_total")
            .is_some());
        assert!(snap.gauge("emd_sentinel_health").is_some());
        assert!(snap.counter("emd_trie_inserts_total").is_some());
        assert!(snap.counter("emd_window_evicted_records_total").is_some());
        assert!(snap.counter("emd_window_pruned_candidates_total").is_some());
        assert!(snap.counter("emd_window_compactions_total").is_some());
        assert!(snap.gauge("emd_window_depth").is_some());
        assert!(snap.gauge("emd_window_resident_bytes").is_some());
        assert!(snap.histogram("emd_pipeline_evict_ns").is_some());
        assert!(snap.counter("emd_trace_events_total").is_some());
        assert!(snap.counter("emd_trace_dropped_events_total").is_some());
        assert!(snap.counter("emd_resilience_quarantined_total").is_some());
        assert!(snap.gauge("emd_resilience_degraded_candidates").is_some());
        assert!(snap.histogram("emd_pipeline_scan_shard_ns").is_some());
        assert!(snap
            .histogram("emd_resilience_checkpoint_write_ns")
            .is_some());
        let sorted: Vec<_> = snap.counters.iter().map(|c| c.name.clone()).collect();
        let mut expect = sorted.clone();
        expect.sort();
        assert_eq!(sorted, expect, "snapshot is name-sorted");
    }

    #[test]
    fn phase_timings_pairs_cover_all_fields() {
        let t = PhaseTimings {
            local_infer_ns: 1,
            ingest_ns: 2,
            scan_ns: 3,
            pool_ns: 4,
            classify_ns: 5,
            promotion_ns: 6,
            emit_ns: 7,
            finalize_ns: 8,
            evict_ns: 9,
        };
        let pairs = t.as_pairs();
        assert_eq!(pairs.len(), 9);
        let sum: u64 = pairs.iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, 45);
        assert_eq!(t.batch_total_ns(), 15);
    }

    #[test]
    fn phase_timings_serde_round_trip() {
        let t = PhaseTimings {
            local_infer_ns: 10,
            scan_ns: 30,
            ..Default::default()
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: PhaseTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
