//! CandidateBase: per-candidate records with incrementally pooled global
//! embeddings.
//!
//! A candidate is keyed by its lower-cased space-joined token string. Every
//! mention found in the stream contributes its *local candidate embedding*
//! to a running sum; the **global candidate embedding** is the mean over
//! all contributions — "a consensus representation over all contextual
//! possibilities in which a candidate appears in the stream" (§V-C). The
//! pooling is incremental, so new mentions arriving in later batches simply
//! extend the pool.

use crate::classifier::CandidateLabel;
use emd_text::token::{SentenceId, Span};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A single located mention of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MentionRef {
    /// Sentence the mention occurs in.
    pub sid: SentenceId,
    /// Token span inside that sentence.
    pub span: Span,
    /// Whether the Local EMD system itself found this mention (as opposed
    /// to the global rescan recovering it).
    pub locally_detected: bool,
}

/// Per-candidate record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Lower-cased space-joined key.
    pub key: String,
    /// Lower-cased tokens of the candidate.
    pub tokens: Vec<String>,
    /// All located mentions, in discovery order.
    pub mentions: Vec<MentionRef>,
    /// `(sentence, span)` pairs already in `mentions`, for O(1) dedup when
    /// overlapping rescans revisit a sentence.
    seen: HashSet<(SentenceId, Span)>,
    /// Running sum of local candidate embeddings.
    emb_sum: Vec<f32>,
    /// Number of pooled embeddings.
    emb_count: usize,
    /// The individual per-mention local embeddings (kept so training can
    /// expose the classifier to the single-mention regime, and for pooled
    /// variants in ablations).
    pub local_embeddings: Vec<Vec<f32>>,
    /// Classifier outcome (updated as the stream progresses).
    pub label: CandidateLabel,
    /// Last classifier probability, if scored.
    pub score: Option<f32>,
    /// Degraded-mode flag: the phrase embedder or classifier failed
    /// persistently for this candidate, so its classifier verdict is
    /// unreliable. Emission falls back to trusting only the Local EMD
    /// system's own detections for this candidate (LocalOnly behaviour).
    pub degraded: bool,
}

impl CandidateRecord {
    fn new(key: String, dim: usize) -> CandidateRecord {
        let tokens = key.split(' ').map(|s| s.to_string()).collect();
        CandidateRecord {
            key,
            tokens,
            mentions: Vec::new(),
            seen: HashSet::new(),
            emb_sum: vec![0.0; dim],
            emb_count: 0,
            local_embeddings: Vec::new(),
            label: CandidateLabel::Pending,
            score: None,
            degraded: false,
        }
    }

    /// Record a mention unless an identical `(sentence, span)` pair is
    /// already present. Returns `true` when the mention was new. This is
    /// the dedup gate the rescan relies on: a sentence revisited because
    /// two new candidates both touch it must not double-count mentions.
    pub fn try_add_mention(&mut self, mref: MentionRef) -> bool {
        if self.seen.insert((mref.sid, mref.span)) {
            self.mentions.push(mref);
            true
        } else {
            false
        }
    }

    /// Pool one local embedding into the global embedding.
    pub fn add_embedding(&mut self, local: &[f32]) {
        assert_eq!(local.len(), self.emb_sum.len(), "embedding dim mismatch");
        for (s, &v) in self.emb_sum.iter_mut().zip(local.iter()) {
            *s += v;
        }
        self.emb_count += 1;
        self.local_embeddings.push(local.to_vec());
    }

    /// The pooled global candidate embedding (mean), or zeros if no
    /// embeddings were contributed yet.
    pub fn global_embedding(&self) -> Vec<f32> {
        if self.emb_count == 0 {
            return self.emb_sum.clone();
        }
        let n = self.emb_count as f32;
        self.emb_sum.iter().map(|&s| s / n).collect()
    }

    /// Global embedding under an explicit pooling mode (ablation support).
    pub fn pooled_embedding(&self, pooling: crate::config::Pooling) -> Vec<f32> {
        match pooling {
            crate::config::Pooling::Mean => self.global_embedding(),
            crate::config::Pooling::Max => {
                if self.local_embeddings.is_empty() {
                    return vec![0.0; self.emb_sum.len()];
                }
                let mut out = self.local_embeddings[0].clone();
                for emb in &self.local_embeddings[1..] {
                    for (o, &v) in out.iter_mut().zip(emb.iter()) {
                        *o = o.max(v);
                    }
                }
                out
            }
        }
    }

    /// Number of pooled embeddings (= mentions with embeddings).
    pub fn n_pooled(&self) -> usize {
        self.emb_count
    }

    /// Mention frequency.
    pub fn frequency(&self) -> usize {
        self.mentions.len()
    }

    /// Number of tokens in the candidate (the paper's `+1` length feature).
    pub fn token_len(&self) -> usize {
        self.tokens.len()
    }
}

/// The stream-wide candidate store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateBase {
    records: Vec<CandidateRecord>,
    index: HashMap<String, usize>,
    dim: usize,
}

impl CandidateBase {
    /// New store for embeddings of dimension `dim`.
    pub fn new(dim: usize) -> CandidateBase {
        CandidateBase {
            records: Vec::new(),
            index: HashMap::new(),
            dim,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Get-or-create a record for the (already lower-cased) key.
    pub fn entry(&mut self, key: &str) -> &mut CandidateRecord {
        let i = match self.index.get(key) {
            Some(&i) => i,
            None => {
                let i = self.records.len();
                self.index.insert(key.to_string(), i);
                self.records
                    .push(CandidateRecord::new(key.to_string(), self.dim));
                i
            }
        };
        &mut self.records[i]
    }

    /// Lookup by key.
    pub fn get(&self, key: &str) -> Option<&CandidateRecord> {
        self.index.get(key).map(|&i| &self.records[i])
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut CandidateRecord> {
        let i = *self.index.get(key)?;
        Some(&mut self.records[i])
    }

    /// All records in discovery order.
    pub fn iter(&self) -> impl Iterator<Item = &CandidateRecord> {
        self.records.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CandidateRecord> {
        self.records.iter_mut()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_creates_once() {
        let mut cb = CandidateBase::new(3);
        cb.entry("andy beshear");
        cb.entry("andy beshear");
        cb.entry("italy");
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.get("andy beshear").unwrap().token_len(), 2);
    }

    #[test]
    fn incremental_pooling_is_mean() {
        let mut cb = CandidateBase::new(2);
        let r = cb.entry("covid");
        r.add_embedding(&[1.0, 0.0]);
        r.add_embedding(&[0.0, 1.0]);
        r.add_embedding(&[2.0, 2.0]);
        assert_eq!(r.global_embedding(), vec![1.0, 1.0]);
        assert_eq!(r.n_pooled(), 3);
    }

    #[test]
    fn max_pooling() {
        use crate::config::Pooling;
        let mut cb = CandidateBase::new(2);
        let r = cb.entry("covid");
        r.add_embedding(&[1.0, 0.0]);
        r.add_embedding(&[0.0, 2.0]);
        assert_eq!(r.pooled_embedding(Pooling::Max), vec![1.0, 2.0]);
        assert_eq!(r.pooled_embedding(Pooling::Mean), vec![0.5, 1.0]);
    }

    #[test]
    fn empty_pool_is_zeros() {
        let mut cb = CandidateBase::new(4);
        let r = cb.entry("x");
        assert_eq!(r.global_embedding(), vec![0.0; 4]);
    }

    #[test]
    fn mentions_tracked() {
        let mut cb = CandidateBase::new(1);
        let r = cb.entry("italy");
        r.mentions.push(MentionRef {
            sid: SentenceId::new(1, 0),
            span: Span::new(0, 1),
            locally_detected: true,
        });
        r.mentions.push(MentionRef {
            sid: SentenceId::new(2, 0),
            span: Span::new(3, 4),
            locally_detected: false,
        });
        assert_eq!(r.frequency(), 2);
        assert_eq!(r.mentions.iter().filter(|m| m.locally_detected).count(), 1);
    }

    #[test]
    fn try_add_mention_dedups() {
        let mut cb = CandidateBase::new(1);
        let r = cb.entry("italy");
        let a = MentionRef {
            sid: SentenceId::new(1, 0),
            span: Span::new(0, 1),
            locally_detected: true,
        };
        let b = MentionRef {
            span: Span::new(3, 4),
            ..a
        };
        assert!(r.try_add_mention(a));
        assert!(r.try_add_mention(b));
        // Same (sid, span) again — even with a different provenance flag —
        // is a duplicate.
        assert!(!r.try_add_mention(MentionRef {
            locally_detected: false,
            ..a
        }));
        assert_eq!(r.frequency(), 2);
    }

    #[test]
    #[should_panic(expected = "embedding dim mismatch")]
    fn wrong_dim_panics() {
        let mut cb = CandidateBase::new(3);
        cb.entry("x").add_embedding(&[1.0]);
    }
}
