//! CandidateBase: per-candidate records with incrementally pooled global
//! embeddings.
//!
//! A candidate is keyed by its lower-cased space-joined token string. Every
//! mention found in the stream contributes its *local candidate embedding*
//! to a running sum; the **global candidate embedding** is the mean over
//! all contributions — "a consensus representation over all contextual
//! possibilities in which a candidate appears in the stream" (§V-C). The
//! pooling is incremental, so new mentions arriving in later batches simply
//! extend the pool.

use crate::classifier::CandidateLabel;
use emd_text::token::{SentenceId, Span};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A single located mention of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MentionRef {
    /// Sentence the mention occurs in.
    pub sid: SentenceId,
    /// Token span inside that sentence.
    pub span: Span,
    /// Whether the Local EMD system itself found this mention (as opposed
    /// to the global rescan recovering it).
    pub locally_detected: bool,
}

/// Per-candidate record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Lower-cased space-joined key.
    pub key: String,
    /// Lower-cased tokens of the candidate.
    pub tokens: Vec<String>,
    /// All located mentions, in discovery order.
    pub mentions: Vec<MentionRef>,
    /// `(sentence, span)` pairs already in `mentions`, for O(1) dedup when
    /// overlapping rescans revisit a sentence.
    seen: HashSet<(SentenceId, Span)>,
    /// Mentions whose sentences left the sliding window: the refs are
    /// released but the count is folded into [`CandidateRecord::frequency`]
    /// so every frequency-based decision stays cumulative.
    evicted_mentions: usize,
    /// How many of the evicted mentions were locally detected (keeps the
    /// trust-local emission ratio cumulative too).
    evicted_locally_detected: usize,
    /// Whether [`CandidateRecord::add_embedding`] retains the individual
    /// per-mention embeddings (needed for max pooling and training
    /// harvests; released in windowed mean-pooling mode, where only the
    /// running sum is consulted).
    store_local: bool,
    /// Running sum of local candidate embeddings.
    emb_sum: Vec<f32>,
    /// Number of pooled embeddings.
    emb_count: usize,
    /// The individual per-mention local embeddings, flattened row-major
    /// (`n × dim`, one contiguous block instead of a heap allocation per
    /// mention — iterate with [`CandidateRecord::local_rows`]). Kept so
    /// training can expose the classifier to the single-mention regime,
    /// and for pooled variants in ablations.
    local_flat: Vec<f32>,
    /// Classifier outcome (updated as the stream progresses).
    pub label: CandidateLabel,
    /// Last classifier probability, if scored.
    pub score: Option<f32>,
    /// Degraded-mode flag: the phrase embedder or classifier failed
    /// persistently for this candidate, so its classifier verdict is
    /// unreliable. Emission falls back to trusting only the Local EMD
    /// system's own detections for this candidate (LocalOnly behaviour).
    pub degraded: bool,
}

impl CandidateRecord {
    fn new(key: String, dim: usize, store_local: bool) -> CandidateRecord {
        let tokens = key.split(' ').map(|s| s.to_string()).collect();
        CandidateRecord {
            key,
            tokens,
            mentions: Vec::new(),
            seen: HashSet::new(),
            evicted_mentions: 0,
            evicted_locally_detected: 0,
            store_local,
            emb_sum: vec![0.0; dim],
            emb_count: 0,
            local_flat: Vec::new(),
            label: CandidateLabel::Pending,
            score: None,
            degraded: false,
        }
    }

    /// Record a mention unless an identical `(sentence, span)` pair is
    /// already present. Returns `true` when the mention was new. This is
    /// the dedup gate the rescan relies on: a sentence revisited because
    /// two new candidates both touch it must not double-count mentions.
    pub fn try_add_mention(&mut self, mref: MentionRef) -> bool {
        if self.seen.insert((mref.sid, mref.span)) {
            self.mentions.push(mref);
            true
        } else {
            false
        }
    }

    /// Pool one local embedding into the global embedding.
    pub fn add_embedding(&mut self, local: &[f32]) {
        assert_eq!(local.len(), self.emb_sum.len(), "embedding dim mismatch");
        emd_simd::add_assign(&mut self.emb_sum, local);
        self.emb_count += 1;
        if self.store_local {
            self.local_flat.extend_from_slice(local);
        }
    }

    /// The retained per-mention local embeddings as `dim`-wide rows, in
    /// pooling order (empty in windowed mean-pooling mode).
    pub fn local_rows(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.local_flat.chunks_exact(self.emb_sum.len().max(1))
    }

    /// The pooled global candidate embedding (mean), or zeros if no
    /// embeddings were contributed yet.
    pub fn global_embedding(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.emb_sum.len()];
        self.global_embedding_into(&mut out);
        out
    }

    /// [`CandidateRecord::global_embedding`] into a caller-owned buffer
    /// (resized to `dim`) — the allocation-free classification hot path.
    pub fn global_embedding_into(&self, out: &mut Vec<f32>) {
        out.resize(self.emb_sum.len(), 0.0);
        if self.emb_count == 0 {
            out.copy_from_slice(&self.emb_sum);
            return;
        }
        // Division (not reciprocal-multiply): the historical op sequence
        // of this path, preserved for bit-identity.
        emd_simd::div_into(out, &self.emb_sum, self.emb_count as f32);
    }

    /// Global embedding under an explicit pooling mode (ablation support).
    pub fn pooled_embedding(&self, pooling: crate::config::Pooling) -> Vec<f32> {
        let mut out = Vec::new();
        self.pooled_embedding_into(pooling, &mut out);
        out
    }

    /// [`CandidateRecord::pooled_embedding`] into a caller-owned buffer.
    pub fn pooled_embedding_into(&self, pooling: crate::config::Pooling, out: &mut Vec<f32>) {
        match pooling {
            crate::config::Pooling::Mean => self.global_embedding_into(out),
            crate::config::Pooling::Max => {
                let mut rows = self.local_rows();
                match rows.next() {
                    None => {
                        out.clear();
                        out.resize(self.emb_sum.len(), 0.0);
                    }
                    Some(first) => {
                        out.clear();
                        out.extend_from_slice(first);
                        for emb in rows {
                            emd_simd::max_assign(out, emb);
                        }
                    }
                }
            }
        }
    }

    /// Number of pooled embeddings (= mentions with embeddings).
    pub fn n_pooled(&self) -> usize {
        self.emb_count
    }

    /// Mention frequency — cumulative over the whole stream, including
    /// mentions whose sentences have since been evicted from the window.
    pub fn frequency(&self) -> usize {
        self.mentions.len() + self.evicted_mentions
    }

    /// How many of the candidate's mentions (cumulative, including
    /// evicted ones) the Local EMD system found itself. Feeds the
    /// trust-local emission fallback for degraded candidates.
    pub fn locally_detected_frequency(&self) -> usize {
        self.mentions.iter().filter(|m| m.locally_detected).count() + self.evicted_locally_detected
    }

    /// Release the per-mention bookkeeping of every mention whose sentence
    /// fails `is_live`: drop its [`MentionRef`]s and dedup entries while
    /// folding the counts into the cumulative totals. The pooled embedding
    /// sum is untouched — evicted mentions keep contributing to the global
    /// consensus embedding (§V-C); only their O(mentions) bookkeeping is
    /// reclaimed. Returns the number of refs released.
    pub fn release_dead<F: FnMut(SentenceId) -> bool>(&mut self, mut is_live: F) -> usize {
        let mut dropped = 0usize;
        let mut dropped_local = 0usize;
        self.mentions.retain(|m| {
            if is_live(m.sid) {
                true
            } else {
                dropped += 1;
                if m.locally_detected {
                    dropped_local += 1;
                }
                false
            }
        });
        if dropped == 0 {
            return 0;
        }
        self.evicted_mentions += dropped;
        self.evicted_locally_detected += dropped_local;
        self.seen.retain(|&(sid, _)| is_live(sid));
        if self.mentions.capacity() > 2 * self.mentions.len() + 4 {
            self.mentions.shrink_to_fit();
        }
        self.seen.shrink_to_fit();
        dropped
    }

    /// Number of tokens in the candidate (the paper's `+1` length feature).
    pub fn token_len(&self) -> usize {
        self.tokens.len()
    }
}

/// The stream-wide candidate store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateBase {
    records: Vec<CandidateRecord>,
    index: HashMap<String, usize>,
    dim: usize,
    store_local: bool,
}

impl CandidateBase {
    /// New store for embeddings of dimension `dim`.
    pub fn new(dim: usize) -> CandidateBase {
        CandidateBase {
            records: Vec::new(),
            index: HashMap::new(),
            dim,
            store_local: true,
        }
    }

    /// Control whether new records retain individual per-mention
    /// embeddings (on by default). Windowed mean-pooling pipelines turn
    /// this off: only the running sum is ever consulted there, and the
    /// per-mention list would grow with stream length, not window size.
    pub fn set_store_local(&mut self, on: bool) {
        self.store_local = on;
    }

    /// Release per-mention bookkeeping for every mention whose sentence
    /// fails `is_live`, across all records (see
    /// [`CandidateRecord::release_dead`]). Returns total refs released.
    pub fn release_dead<F: FnMut(SentenceId) -> bool>(&mut self, mut is_live: F) -> usize {
        self.records
            .iter_mut()
            .map(|r| r.release_dead(&mut is_live))
            .sum()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Get-or-create a record for the (already lower-cased) key.
    pub fn entry(&mut self, key: &str) -> &mut CandidateRecord {
        let i = match self.index.get(key) {
            Some(&i) => i,
            None => {
                let i = self.records.len();
                self.index.insert(key.to_string(), i);
                self.records.push(CandidateRecord::new(
                    key.to_string(),
                    self.dim,
                    self.store_local,
                ));
                i
            }
        };
        &mut self.records[i]
    }

    /// Lookup by key.
    pub fn get(&self, key: &str) -> Option<&CandidateRecord> {
        self.index.get(key).map(|&i| &self.records[i])
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut CandidateRecord> {
        let i = *self.index.get(key)?;
        Some(&mut self.records[i])
    }

    /// All records in discovery order.
    pub fn iter(&self) -> impl Iterator<Item = &CandidateRecord> {
        self.records.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CandidateRecord> {
        self.records.iter_mut()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop every record failing `keep`, preserving discovery order of the
    /// survivors and rebuilding the key index. Returns the pruned records
    /// (the caller traces them and removes their CTrie paths). A candidate
    /// pruned here and re-seen later is simply rediscovered as a fresh
    /// record — the paper's Figure 7 argument: a low-frequency candidate
    /// whose mentions have all left the window no longer contributes to
    /// global-embedding quality, so its pool can be rebuilt from scratch.
    pub fn prune_retain<F: FnMut(&CandidateRecord) -> bool>(
        &mut self,
        mut keep: F,
    ) -> Vec<CandidateRecord> {
        // Pruning fires every window enforcement, but on most batches
        // nothing is prunable — scan for the first casualty before
        // committing to the record sweep, so the common case is one
        // predicate pass with no moves, no allocation, and no index
        // rebuild. `keep` runs exactly once per record in discovery
        // order either way.
        let first_pruned = match self.records.iter().position(|r| !keep(r)) {
            None => return Vec::new(),
            Some(i) => i,
        };
        let mut pruned = Vec::new();
        let tail: Vec<CandidateRecord> = self.records.drain(first_pruned..).collect();
        for (j, r) in tail.into_iter().enumerate() {
            // `position` already judged the first tail record prunable.
            if j > 0 && keep(&r) {
                self.records.push(r);
            } else {
                pruned.push(r);
            }
        }
        self.index.clear();
        for (i, r) in self.records.iter().enumerate() {
            self.index.insert(r.key.clone(), i);
        }
        pruned
    }

    /// Estimated resident heap bytes: keys, mention lists, dedup sets, and
    /// the pooled + per-mention embeddings (the dominant term for deep
    /// local systems). An estimate for gauges, not allocator-exact.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = self.records.capacity() * size_of::<CandidateRecord>();
        for r in &self.records {
            total += r.key.len();
            total += r
                .tokens
                .iter()
                .map(|t| t.len() + size_of::<String>())
                .sum::<usize>();
            total += r.mentions.capacity() * size_of::<MentionRef>();
            total += r.seen.len() * size_of::<(SentenceId, Span)>();
            total += r.emb_sum.capacity() * size_of::<f32>();
            total += r.local_flat.capacity() * size_of::<f32>();
        }
        for key in self.index.keys() {
            total += key.len() + size_of::<usize>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_creates_once() {
        let mut cb = CandidateBase::new(3);
        cb.entry("andy beshear");
        cb.entry("andy beshear");
        cb.entry("italy");
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.get("andy beshear").unwrap().token_len(), 2);
    }

    #[test]
    fn incremental_pooling_is_mean() {
        let mut cb = CandidateBase::new(2);
        let r = cb.entry("covid");
        r.add_embedding(&[1.0, 0.0]);
        r.add_embedding(&[0.0, 1.0]);
        r.add_embedding(&[2.0, 2.0]);
        assert_eq!(r.global_embedding(), vec![1.0, 1.0]);
        assert_eq!(r.n_pooled(), 3);
    }

    #[test]
    fn max_pooling() {
        use crate::config::Pooling;
        let mut cb = CandidateBase::new(2);
        let r = cb.entry("covid");
        r.add_embedding(&[1.0, 0.0]);
        r.add_embedding(&[0.0, 2.0]);
        assert_eq!(r.pooled_embedding(Pooling::Max), vec![1.0, 2.0]);
        assert_eq!(r.pooled_embedding(Pooling::Mean), vec![0.5, 1.0]);
    }

    #[test]
    fn empty_pool_is_zeros() {
        let mut cb = CandidateBase::new(4);
        let r = cb.entry("x");
        assert_eq!(r.global_embedding(), vec![0.0; 4]);
    }

    #[test]
    fn mentions_tracked() {
        let mut cb = CandidateBase::new(1);
        let r = cb.entry("italy");
        r.mentions.push(MentionRef {
            sid: SentenceId::new(1, 0),
            span: Span::new(0, 1),
            locally_detected: true,
        });
        r.mentions.push(MentionRef {
            sid: SentenceId::new(2, 0),
            span: Span::new(3, 4),
            locally_detected: false,
        });
        assert_eq!(r.frequency(), 2);
        assert_eq!(r.mentions.iter().filter(|m| m.locally_detected).count(), 1);
    }

    #[test]
    fn try_add_mention_dedups() {
        let mut cb = CandidateBase::new(1);
        let r = cb.entry("italy");
        let a = MentionRef {
            sid: SentenceId::new(1, 0),
            span: Span::new(0, 1),
            locally_detected: true,
        };
        let b = MentionRef {
            span: Span::new(3, 4),
            ..a
        };
        assert!(r.try_add_mention(a));
        assert!(r.try_add_mention(b));
        // Same (sid, span) again — even with a different provenance flag —
        // is a duplicate.
        assert!(!r.try_add_mention(MentionRef {
            locally_detected: false,
            ..a
        }));
        assert_eq!(r.frequency(), 2);
    }

    #[test]
    #[should_panic(expected = "embedding dim mismatch")]
    fn wrong_dim_panics() {
        let mut cb = CandidateBase::new(3);
        cb.entry("x").add_embedding(&[1.0]);
    }

    #[test]
    fn prune_retain_preserves_order_and_rebuilds_index() {
        let mut cb = CandidateBase::new(1);
        for key in ["a", "b", "c", "d"] {
            cb.entry(key);
        }
        let pruned = cb.prune_retain(|r| r.key != "b" && r.key != "d");
        assert_eq!(
            pruned.iter().map(|r| r.key.as_str()).collect::<Vec<_>>(),
            vec!["b", "d"]
        );
        assert_eq!(
            cb.iter().map(|r| r.key.as_str()).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
        assert_eq!(cb.len(), 2);
        assert!(cb.get("b").is_none());
        // The rebuilt index must point at the right survivors.
        cb.get_mut("c").unwrap().mentions.push(MentionRef {
            sid: SentenceId::new(9, 0),
            span: Span::new(0, 1),
            locally_detected: false,
        });
        assert_eq!(cb.get("c").unwrap().frequency(), 1);
        assert_eq!(cb.get("a").unwrap().frequency(), 0);
        // A pruned key re-enters as a fresh record at the tail.
        cb.entry("b");
        assert_eq!(cb.len(), 3);
        assert_eq!(cb.get("b").unwrap().frequency(), 0);
    }

    #[test]
    fn prune_retain_all_kept_is_noop() {
        let mut cb = CandidateBase::new(1);
        cb.entry("a");
        cb.entry("b");
        let pruned = cb.prune_retain(|_| true);
        assert!(pruned.is_empty());
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.get("a").unwrap().key, "a");
    }

    #[test]
    fn release_dead_folds_counts_and_keeps_frequency_cumulative() {
        let mut cb = CandidateBase::new(1);
        let r = cb.entry("italy");
        for i in 0..6u64 {
            assert!(r.try_add_mention(MentionRef {
                sid: SentenceId::new(i, 0),
                span: Span::new(0, 1),
                locally_detected: i % 2 == 0,
            }));
        }
        assert_eq!(r.frequency(), 6);
        assert_eq!(r.locally_detected_frequency(), 3);
        // Sentences 0..4 leave the window.
        let released = cb.release_dead(|sid| sid.tweet_id >= 4);
        assert_eq!(released, 4);
        let r = cb.get("italy").unwrap();
        assert_eq!(r.mentions.len(), 2, "only live refs remain");
        assert_eq!(r.frequency(), 6, "frequency stays cumulative");
        assert_eq!(r.locally_detected_frequency(), 3);
        // The dedup gate forgets released (sid, span) pairs: a re-used
        // sentence id would re-count, which is why quarantine permanence
        // (not this set) guards against id re-delivery.
        let r = cb.get_mut("italy").unwrap();
        assert!(r.try_add_mention(MentionRef {
            sid: SentenceId::new(0, 0),
            span: Span::new(0, 1),
            locally_detected: false,
        }));
        assert_eq!(r.frequency(), 7);
    }

    #[test]
    fn release_dead_with_all_live_is_noop() {
        let mut cb = CandidateBase::new(1);
        let r = cb.entry("covid");
        r.try_add_mention(MentionRef {
            sid: SentenceId::new(0, 0),
            span: Span::new(0, 1),
            locally_detected: true,
        });
        assert_eq!(cb.release_dead(|_| true), 0);
        assert_eq!(cb.get("covid").unwrap().mentions.len(), 1);
    }

    #[test]
    fn store_local_off_skips_per_mention_embeddings() {
        let mut cb = CandidateBase::new(2);
        cb.set_store_local(false);
        let r = cb.entry("covid");
        r.add_embedding(&[1.0, 0.0]);
        r.add_embedding(&[0.0, 1.0]);
        // The pooled mean is unaffected; only the per-mention list is
        // elided.
        assert_eq!(r.global_embedding(), vec![0.5, 0.5]);
        assert_eq!(r.n_pooled(), 2);
        assert_eq!(r.local_rows().len(), 0);
    }

    #[test]
    fn resident_bytes_shrinks_on_prune() {
        let mut cb = CandidateBase::new(8);
        for i in 0..16 {
            let key = format!("candidate number {i}");
            let r = cb.entry(&key);
            r.add_embedding(&[0.5; 8]);
        }
        let before = cb.resident_bytes();
        cb.prune_retain(|r| r.key.ends_with('1'));
        assert!(
            cb.resident_bytes() < before,
            "pruning must shrink resident bytes"
        );
    }
}
