//! TweetBase: per-sentence records maintained across the pipeline.
//!
//! Indexed by `(tweet id, sentence id)` pairs, a record stores the sentence
//! itself, the token embeddings produced at Local EMD (deep systems only),
//! the spans the local system detected, and the mention list that Global
//! EMD updates as the sentences pass through the second phase.

use emd_nn::matrix::Matrix;
use emd_text::token::{Sentence, SentenceId, Span};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One sentence's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TweetRecord {
    /// The sentence.
    pub sentence: Sentence,
    /// Entity-aware token embeddings `[T, d]` from Local EMD (deep only).
    pub token_embeddings: Option<Matrix>,
    /// Spans the Local EMD system itself proposed.
    pub local_spans: Vec<Span>,
    /// All candidate mentions found by the global rescan (superset of the
    /// verified `local_spans`, aligned to CTrie candidates).
    pub global_mentions: Vec<Span>,
}

/// The stream-wide sentence store.
///
/// Besides the id → record map, the store maintains an inverted index from
/// lower-cased token to the (stream-ordered) record indices of sentences
/// containing that token. Global EMD uses it to find which sentences a
/// newly discovered candidate could possibly match — a candidate insertion
/// only changes a sentence's extraction if the sentence contains the
/// candidate's first token — so the close-of-stream rescan touches only
/// those sentences instead of the whole stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TweetBase {
    records: Vec<TweetRecord>,
    index: HashMap<SentenceId, usize>,
    /// Lower-cased token → ascending record indices of sentences containing
    /// it. Postings for a replaced record are left in place (a harmless
    /// superset: rescans re-check the sentence text anyway).
    token_index: HashMap<String, Vec<usize>>,
}

impl TweetBase {
    /// Empty TweetBase.
    pub fn new() -> TweetBase {
        TweetBase::default()
    }

    /// Insert a record at the end of the stream order. Replaces any
    /// previous record with the same id (streams should not repeat ids).
    pub fn insert(&mut self, record: TweetRecord) -> usize {
        let id = record.sentence.id;
        let i = if let Some(&i) = self.index.get(&id) {
            self.records[i] = record;
            i
        } else {
            let i = self.records.len();
            self.index.insert(id, i);
            self.records.push(record);
            i
        };
        for text in self.records[i].sentence.texts() {
            let postings = self.token_index.entry(text.to_lowercase()).or_default();
            // Pushes for one record are consecutive, so a last-element check
            // dedups repeated tokens and keeps the postings sorted.
            if postings.last() != Some(&i) {
                postings.push(i);
            }
        }
        i
    }

    /// Ascending record indices of sentences containing the (already
    /// lower-cased) token. May include indices of records that were later
    /// replaced under the same id; callers re-scan the sentence, so stale
    /// entries cost a lookup, never correctness.
    pub fn indices_with_token(&self, token_lower: &str) -> &[usize] {
        self.token_index
            .get(token_lower)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Record by stream-order index.
    pub fn get_by_index(&self, i: usize) -> &TweetRecord {
        &self.records[i]
    }

    /// Mutable record by stream-order index.
    pub fn get_mut_by_index(&mut self, i: usize) -> &mut TweetRecord {
        &mut self.records[i]
    }

    /// Stream-order index for a sentence id.
    pub fn index_of(&self, id: SentenceId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Lookup by sentence id.
    pub fn get(&self, id: SentenceId) -> Option<&TweetRecord> {
        self.index.get(&id).map(|&i| &self.records[i])
    }

    /// Mutable lookup by sentence id.
    pub fn get_mut(&mut self, id: SentenceId) -> Option<&mut TweetRecord> {
        let i = *self.index.get(&id)?;
        Some(&mut self.records[i])
    }

    /// Records in stream order.
    pub fn iter(&self) -> impl Iterator<Item = &TweetRecord> {
        self.records.iter()
    }

    /// Mutable iteration in stream order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut TweetRecord> {
        self.records.iter_mut()
    }

    /// Number of sentences stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no sentences are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tweet: u64) -> TweetRecord {
        TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(tweet, 0), ["a", "b"]),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.insert(rec(2));
        assert_eq!(tb.len(), 2);
        assert!(tb.get(SentenceId::new(1, 0)).is_some());
        assert!(tb.get(SentenceId::new(3, 0)).is_none());
    }

    #[test]
    fn duplicate_id_replaces() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        let mut r = rec(1);
        r.local_spans.push(Span::new(0, 1));
        tb.insert(r);
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.get(SentenceId::new(1, 0)).unwrap().local_spans.len(), 1);
    }

    #[test]
    fn stream_order_preserved() {
        let mut tb = TweetBase::new();
        for t in [5u64, 2, 9] {
            tb.insert(rec(t));
        }
        let ids: Vec<u64> = tb.iter().map(|r| r.sentence.id.tweet_id).collect();
        assert_eq!(ids, vec![5, 2, 9]);
    }

    #[test]
    fn token_index_finds_sentences() {
        let mut tb = TweetBase::new();
        tb.insert(TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(1, 0), ["Italy", "report"]),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        });
        tb.insert(TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(2, 0), ["italy", "italy", "again"]),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        });
        // Case-folded, deduped per record, ascending order.
        assert_eq!(tb.indices_with_token("italy"), &[0, 1]);
        assert_eq!(tb.indices_with_token("report"), &[0]);
        assert_eq!(tb.indices_with_token("missing"), &[] as &[usize]);
    }

    #[test]
    fn token_index_survives_replacement() {
        let mut tb = TweetBase::new();
        tb.insert(TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(1, 0), ["old", "text"]),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        });
        tb.insert(TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(1, 0), ["new", "text"]),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        });
        // The new token is indexed; the stale posting for "old" may remain
        // (documented superset behaviour) but must point at the live record.
        assert_eq!(tb.indices_with_token("new"), &[0]);
        assert_eq!(tb.indices_with_token("text"), &[0]);
        assert_eq!(tb.len(), 1);
        for &i in tb.indices_with_token("old") {
            assert_eq!(tb.get_by_index(i).sentence.id, SentenceId::new(1, 0));
        }
    }

    #[test]
    fn by_index_accessors() {
        let mut tb = TweetBase::new();
        tb.insert(rec(7));
        assert_eq!(tb.index_of(SentenceId::new(7, 0)), Some(0));
        assert_eq!(tb.get_by_index(0).sentence.id.tweet_id, 7);
        tb.get_mut_by_index(0).global_mentions.push(Span::new(0, 1));
        assert_eq!(tb.get_by_index(0).global_mentions.len(), 1);
    }

    #[test]
    fn mutable_update() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.get_mut(SentenceId::new(1, 0))
            .unwrap()
            .global_mentions
            .push(Span::new(0, 2));
        assert_eq!(
            tb.get(SentenceId::new(1, 0)).unwrap().global_mentions.len(),
            1
        );
    }
}
