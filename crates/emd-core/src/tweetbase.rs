//! TweetBase: per-sentence records maintained across the pipeline.
//!
//! Indexed by `(tweet id, sentence id)` pairs, a record stores the sentence
//! itself, the token embeddings produced at Local EMD (deep systems only),
//! the spans the local system detected, and the mention list that Global
//! EMD updates as the sentences pass through the second phase.

use emd_nn::matrix::Matrix;
use emd_text::token::{Sentence, SentenceId, Span};
use std::collections::HashMap;

/// One sentence's record.
#[derive(Debug, Clone)]
pub struct TweetRecord {
    /// The sentence.
    pub sentence: Sentence,
    /// Entity-aware token embeddings `[T, d]` from Local EMD (deep only).
    pub token_embeddings: Option<Matrix>,
    /// Spans the Local EMD system itself proposed.
    pub local_spans: Vec<Span>,
    /// All candidate mentions found by the global rescan (superset of the
    /// verified `local_spans`, aligned to CTrie candidates).
    pub global_mentions: Vec<Span>,
}

/// The stream-wide sentence store.
#[derive(Debug, Clone, Default)]
pub struct TweetBase {
    records: Vec<TweetRecord>,
    index: HashMap<SentenceId, usize>,
}

impl TweetBase {
    /// Empty TweetBase.
    pub fn new() -> TweetBase {
        TweetBase::default()
    }

    /// Insert a record at the end of the stream order. Replaces any
    /// previous record with the same id (streams should not repeat ids).
    pub fn insert(&mut self, record: TweetRecord) -> usize {
        let id = record.sentence.id;
        if let Some(&i) = self.index.get(&id) {
            self.records[i] = record;
            i
        } else {
            let i = self.records.len();
            self.index.insert(id, i);
            self.records.push(record);
            i
        }
    }

    /// Lookup by sentence id.
    pub fn get(&self, id: SentenceId) -> Option<&TweetRecord> {
        self.index.get(&id).map(|&i| &self.records[i])
    }

    /// Mutable lookup by sentence id.
    pub fn get_mut(&mut self, id: SentenceId) -> Option<&mut TweetRecord> {
        let i = *self.index.get(&id)?;
        Some(&mut self.records[i])
    }

    /// Records in stream order.
    pub fn iter(&self) -> impl Iterator<Item = &TweetRecord> {
        self.records.iter()
    }

    /// Mutable iteration in stream order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut TweetRecord> {
        self.records.iter_mut()
    }

    /// Number of sentences stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no sentences are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tweet: u64) -> TweetRecord {
        TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(tweet, 0), ["a", "b"]),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.insert(rec(2));
        assert_eq!(tb.len(), 2);
        assert!(tb.get(SentenceId::new(1, 0)).is_some());
        assert!(tb.get(SentenceId::new(3, 0)).is_none());
    }

    #[test]
    fn duplicate_id_replaces() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        let mut r = rec(1);
        r.local_spans.push(Span::new(0, 1));
        tb.insert(r);
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.get(SentenceId::new(1, 0)).unwrap().local_spans.len(), 1);
    }

    #[test]
    fn stream_order_preserved() {
        let mut tb = TweetBase::new();
        for t in [5u64, 2, 9] {
            tb.insert(rec(t));
        }
        let ids: Vec<u64> = tb.iter().map(|r| r.sentence.id.tweet_id).collect();
        assert_eq!(ids, vec![5, 2, 9]);
    }

    #[test]
    fn mutable_update() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.get_mut(SentenceId::new(1, 0)).unwrap().global_mentions.push(Span::new(0, 2));
        assert_eq!(tb.get(SentenceId::new(1, 0)).unwrap().global_mentions.len(), 1);
    }
}
