//! TweetBase: per-sentence records maintained across the pipeline.
//!
//! Indexed by `(tweet id, sentence id)` pairs, a record stores the sentence
//! itself, the token embeddings produced at Local EMD (deep systems only),
//! the spans the local system detected, and the mention list that Global
//! EMD updates as the sentences pass through the second phase.
//!
//! ## Bounded-memory storage
//!
//! For 24/7 streams the store supports *eviction*: a record can be removed
//! from its slot (the slot becomes a tombstone) while stream-order indices
//! of the remaining records stay stable — the globalizer's dirty set,
//! quarantine set, and the token posting lists all hold slot indices, and
//! none of them need rewriting when a cold record is dropped. Eviction
//! removes the record's posting-list entries and frees the sentence,
//! token-embedding matrix, and span storage (the dominant resident bytes).
//! [`TweetBase::compact`] later squeezes out the tombstones (returning an
//! old→new index remap for the caller's index-keyed sets) so checkpoints
//! and restarts stay O(live window), not O(stream).

use emd_nn::matrix::Matrix;
use emd_text::token::{Sentence, SentenceId, Span};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One sentence's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TweetRecord {
    /// The sentence.
    pub sentence: Sentence,
    /// Entity-aware token embeddings `[T, d]` from Local EMD (deep only).
    pub token_embeddings: Option<Matrix>,
    /// Spans the Local EMD system itself proposed.
    pub local_spans: Vec<Span>,
    /// All candidate mentions found by the global rescan (superset of the
    /// verified `local_spans`, aligned to CTrie candidates).
    pub global_mentions: Vec<Span>,
}

/// The stream-wide sentence store.
///
/// Besides the id → record map, the store maintains an inverted index from
/// lower-cased token to the (stream-ordered) record indices of sentences
/// containing that token. Global EMD uses it to find which sentences a
/// newly discovered candidate could possibly match — a candidate insertion
/// only changes a sentence's extraction if the sentence contains the
/// candidate's first token — so the close-of-stream rescan touches only
/// those sentences instead of the whole stream.
///
/// Posting-list invariant: every list holds strictly ascending indices of
/// **live** records whose sentence contains the token. Replacement and
/// eviction both maintain this by removing the outgoing record's postings;
/// there are no stale or duplicated entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TweetBase {
    /// Stream-ordered record slots; `None` marks an evicted record.
    slots: Vec<Option<TweetRecord>>,
    /// Sentence id → slot index, live records only.
    index: HashMap<SentenceId, usize>,
    /// Lower-cased token → strictly ascending live slot indices.
    token_index: HashMap<String, Vec<usize>>,
    /// Number of live (non-tombstone) slots.
    live: usize,
    /// Cumulative count of evictions over the lifetime of the store
    /// (survives compaction; drives the evicted-records gauge).
    evicted_total: u64,
}

impl TweetBase {
    /// Empty TweetBase.
    pub fn new() -> TweetBase {
        TweetBase::default()
    }

    /// Insert a record at the end of the stream order. Replaces any
    /// previous record with the same id (streams should not repeat ids);
    /// the replaced record's posting-list entries are removed before the
    /// new sentence is indexed, so postings never go stale or unsorted.
    pub fn insert(&mut self, record: TweetRecord) -> usize {
        let id = record.sentence.id;
        let i = if let Some(&i) = self.index.get(&id) {
            // Replacement: drop the old sentence's postings first. Pushing
            // the new tokens directly would re-append index `i` *after*
            // any later records' indices (the old tail-only dedup produced
            // unsorted, duplicated lists like `[0, 1, 0]`).
            if let Some(old) = self.slots[i].take() {
                self.remove_postings(i, &old.sentence);
            }
            self.slots[i] = Some(record);
            i
        } else {
            let i = self.slots.len();
            self.index.insert(id, i);
            self.slots.push(Some(record));
            self.live += 1;
            i
        };
        self.add_postings(i);
        i
    }

    /// Index every distinct lower-cased token of slot `i`'s sentence,
    /// keeping each posting list strictly ascending.
    fn add_postings(&mut self, i: usize) {
        let sentence = &self.slots[i]
            .as_ref()
            .expect("add_postings on tombstone")
            .sentence;
        // Split the borrow: collect the keys first (a sentence is short).
        let mut keys: Vec<String> = sentence.texts().map(|t| t.to_lowercase()).collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let postings = self.token_index.entry(key).or_default();
            match postings.binary_search(&i) {
                Ok(_) => {}
                Err(pos) => postings.insert(pos, i),
            }
        }
    }

    /// Remove slot `i`'s entries from the posting lists of `sentence`'s
    /// tokens, dropping lists that become empty.
    fn remove_postings(&mut self, i: usize, sentence: &Sentence) {
        let mut keys: Vec<String> = sentence.texts().map(|t| t.to_lowercase()).collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            if let Some(postings) = self.token_index.get_mut(&key) {
                if let Ok(pos) = postings.binary_search(&i) {
                    postings.remove(pos);
                }
                if postings.is_empty() {
                    self.token_index.remove(&key);
                }
            }
        }
    }

    /// Ascending live-record indices of sentences containing the (already
    /// lower-cased) token. Strictly ascending, deduplicated, and free of
    /// replaced or evicted records.
    pub fn indices_with_token(&self, token_lower: &str) -> &[usize] {
        self.token_index
            .get(token_lower)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Record by stream-order index. Panics if the slot was evicted —
    /// internal callers only reach live indices (via postings, the dirty
    /// set, or [`TweetBase::iter_indexed`]).
    pub fn get_by_index(&self, i: usize) -> &TweetRecord {
        self.slots[i].as_ref().expect("record was evicted")
    }

    /// Mutable record by stream-order index (same liveness contract as
    /// [`TweetBase::get_by_index`]).
    pub fn get_mut_by_index(&mut self, i: usize) -> &mut TweetRecord {
        self.slots[i].as_mut().expect("record was evicted")
    }

    /// Record by stream-order index, `None` for tombstones.
    pub fn record_at(&self, i: usize) -> Option<&TweetRecord> {
        self.slots.get(i).and_then(Option::as_ref)
    }

    /// True when slot `i` holds a live record.
    pub fn is_live(&self, i: usize) -> bool {
        self.slots.get(i).map(Option::is_some).unwrap_or(false)
    }

    /// Stream-order index for a sentence id (live records only).
    pub fn index_of(&self, id: SentenceId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Lookup by sentence id.
    pub fn get(&self, id: SentenceId) -> Option<&TweetRecord> {
        self.index.get(&id).and_then(|&i| self.slots[i].as_ref())
    }

    /// Mutable lookup by sentence id.
    pub fn get_mut(&mut self, id: SentenceId) -> Option<&mut TweetRecord> {
        let i = *self.index.get(&id)?;
        self.slots[i].as_mut()
    }

    /// Live records in stream order.
    pub fn iter(&self) -> impl Iterator<Item = &TweetRecord> {
        self.slots.iter().flatten()
    }

    /// Live `(slot index, record)` pairs in stream order. Use this instead
    /// of `iter().enumerate()` when positions must align with the dirty /
    /// quarantine sets (enumeration over live records skips tombstones, so
    /// its ordinals are *not* slot indices).
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, &TweetRecord)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i, r)))
    }

    /// Mutable iteration over live records in stream order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut TweetRecord> {
        self.slots.iter_mut().flatten()
    }

    /// Number of live sentences stored.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live sentences are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slot count, including tombstones (the stream-order index
    /// space; `len() <= n_slots()`).
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Cumulative evictions over the lifetime of the store.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// First live slot index at or after `from`, scanning in stream order.
    pub fn first_live_from(&self, from: usize) -> Option<usize> {
        (from..self.slots.len()).find(|&i| self.slots[i].is_some())
    }

    /// Evict the record in slot `i`: remove its posting-list entries and
    /// its id mapping, free the record (sentence, embeddings, spans) and
    /// leave a tombstone so other slots keep their indices. Returns the
    /// evicted record, or `None` if the slot was already a tombstone.
    pub fn evict(&mut self, i: usize) -> Option<TweetRecord> {
        let record = self.slots.get_mut(i)?.take()?;
        self.remove_postings(i, &record.sentence);
        self.index.remove(&record.sentence.id);
        self.live -= 1;
        self.evicted_total += 1;
        Some(record)
    }

    /// Squeeze out tombstone slots so the stored vector is dense again.
    /// Returns the old→new slot-index remap (`None` for evicted slots) so
    /// callers can rebase any index-keyed side structures; returns an
    /// identity-free `None` when there was nothing to compact.
    pub fn compact(&mut self) -> Option<Vec<Option<usize>>> {
        if self.live == self.slots.len() {
            return None;
        }
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.slots.len());
        let mut next = 0usize;
        for slot in &self.slots {
            if slot.is_some() {
                remap.push(Some(next));
                next += 1;
            } else {
                remap.push(None);
            }
        }
        let old = std::mem::take(&mut self.slots);
        self.slots = old.into_iter().flatten().map(Some).collect();
        self.index.clear();
        self.token_index.clear();
        for i in 0..self.slots.len() {
            let id = self.slots[i]
                .as_ref()
                .map(|r| r.sentence.id)
                .expect("compacted slots are live");
            self.index.insert(id, i);
            self.add_postings(i);
        }
        Some(remap)
    }

    /// Estimated resident heap bytes of the store: sentences, token
    /// embeddings (the dominant term for deep local systems), span lists,
    /// and both indexes. An estimate for gauges and eviction budgeting,
    /// not an allocator-exact measurement.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = self.slots.capacity() * size_of::<Option<TweetRecord>>();
        for r in self.slots.iter().flatten() {
            for t in &r.sentence.tokens {
                total += size_of::<emd_text::token::Token>() + t.text.len();
            }
            if let Some(m) = &r.token_embeddings {
                total += m.data.len() * size_of::<f32>();
            }
            total += (r.local_spans.len() + r.global_mentions.len()) * size_of::<Span>();
        }
        for (key, postings) in &self.token_index {
            total += key.len() + postings.capacity() * size_of::<usize>() + 3 * size_of::<usize>();
        }
        total += self.index.len() * (size_of::<SentenceId>() + size_of::<usize>());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tweet: u64) -> TweetRecord {
        TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(tweet, 0), ["a", "b"]),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        }
    }

    fn rec_with(tweet: u64, tokens: &[&str]) -> TweetRecord {
        TweetRecord {
            sentence: Sentence::from_tokens(SentenceId::new(tweet, 0), tokens.iter().copied()),
            token_embeddings: None,
            local_spans: vec![],
            global_mentions: vec![],
        }
    }

    /// Every posting list must be strictly ascending, deduplicated, and
    /// point at a live record actually containing the token.
    fn assert_postings_consistent(tb: &TweetBase) {
        for (token, postings) in &tb.token_index {
            assert!(
                postings.windows(2).all(|w| w[0] < w[1]),
                "postings for {token:?} not strictly ascending: {postings:?}"
            );
            assert!(
                !postings.is_empty(),
                "empty posting list for {token:?} kept"
            );
            for &i in postings {
                let r = tb
                    .record_at(i)
                    .unwrap_or_else(|| panic!("posting for {token:?} points at tombstone {i}"));
                assert!(
                    r.sentence.texts().any(|t| t.to_lowercase() == *token),
                    "stale posting: record {i} does not contain {token:?}"
                );
            }
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.insert(rec(2));
        assert_eq!(tb.len(), 2);
        assert!(tb.get(SentenceId::new(1, 0)).is_some());
        assert!(tb.get(SentenceId::new(3, 0)).is_none());
    }

    #[test]
    fn duplicate_id_replaces() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        let mut r = rec(1);
        r.local_spans.push(Span::new(0, 1));
        tb.insert(r);
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.get(SentenceId::new(1, 0)).unwrap().local_spans.len(), 1);
    }

    #[test]
    fn stream_order_preserved() {
        let mut tb = TweetBase::new();
        for t in [5u64, 2, 9] {
            tb.insert(rec(t));
        }
        let ids: Vec<u64> = tb.iter().map(|r| r.sentence.id.tweet_id).collect();
        assert_eq!(ids, vec![5, 2, 9]);
    }

    #[test]
    fn token_index_finds_sentences() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["Italy", "report"]));
        tb.insert(rec_with(2, &["italy", "italy", "again"]));
        // Case-folded, deduped per record, ascending order.
        assert_eq!(tb.indices_with_token("italy"), &[0, 1]);
        assert_eq!(tb.indices_with_token("report"), &[0]);
        assert_eq!(tb.indices_with_token("missing"), &[] as &[usize]);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn token_index_survives_replacement() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["old", "text"]));
        tb.insert(rec_with(1, &["new", "text"]));
        // The new tokens are indexed; the replaced sentence's postings are
        // removed outright — no stale entries remain.
        assert_eq!(tb.indices_with_token("new"), &[0]);
        assert_eq!(tb.indices_with_token("text"), &[0]);
        assert_eq!(tb.indices_with_token("old"), &[] as &[usize]);
        assert_eq!(tb.len(), 1);
        assert_postings_consistent(&tb);
    }

    /// Regression for the replacement-path posting corruption: replacing a
    /// *non-final* record whose tokens also appear in later records used to
    /// re-push its index after theirs (`[0, 1, 0]`) because the tail-only
    /// dedup never saw the earlier entry. Postings must stay strictly
    /// ascending, deduplicated, and stale-free.
    #[test]
    fn replacing_non_final_record_keeps_postings_sorted() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["shared", "alpha"]));
        tb.insert(rec_with(2, &["shared", "beta"]));
        // Replace record 0 with a sentence still containing "shared".
        tb.insert(rec_with(1, &["shared", "gamma"]));
        assert_eq!(
            tb.indices_with_token("shared"),
            &[0, 1],
            "replacement must not duplicate or unsort postings"
        );
        assert_eq!(tb.indices_with_token("alpha"), &[] as &[usize]);
        assert_eq!(tb.indices_with_token("gamma"), &[0]);
        assert_postings_consistent(&tb);
        // Replace again with entirely fresh tokens: the shared posting for
        // record 0 must disappear.
        tb.insert(rec_with(1, &["delta"]));
        assert_eq!(tb.indices_with_token("shared"), &[1]);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn by_index_accessors() {
        let mut tb = TweetBase::new();
        tb.insert(rec(7));
        assert_eq!(tb.index_of(SentenceId::new(7, 0)), Some(0));
        assert_eq!(tb.get_by_index(0).sentence.id.tweet_id, 7);
        tb.get_mut_by_index(0).global_mentions.push(Span::new(0, 1));
        assert_eq!(tb.get_by_index(0).global_mentions.len(), 1);
    }

    #[test]
    fn mutable_update() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.get_mut(SentenceId::new(1, 0))
            .unwrap()
            .global_mentions
            .push(Span::new(0, 2));
        assert_eq!(
            tb.get(SentenceId::new(1, 0)).unwrap().global_mentions.len(),
            1
        );
    }

    #[test]
    fn evict_frees_record_and_postings() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["cold", "shared"]));
        tb.insert(rec_with(2, &["hot", "shared"]));
        let evicted = tb.evict(0).expect("slot 0 live");
        assert_eq!(evicted.sentence.id, SentenceId::new(1, 0));
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.n_slots(), 2, "indices stay stable after eviction");
        assert_eq!(tb.evicted_total(), 1);
        assert!(!tb.is_live(0));
        assert!(tb.record_at(0).is_none());
        assert!(tb.get(SentenceId::new(1, 0)).is_none());
        assert_eq!(tb.indices_with_token("cold"), &[] as &[usize]);
        assert_eq!(tb.indices_with_token("shared"), &[1]);
        // Double eviction is a no-op.
        assert!(tb.evict(0).is_none());
        assert_eq!(tb.evicted_total(), 1);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn eviction_preserves_live_iteration_and_indices() {
        let mut tb = TweetBase::new();
        for t in 0..5u64 {
            tb.insert(rec_with(t, &["tok"]));
        }
        tb.evict(1);
        tb.evict(3);
        let live: Vec<(usize, u64)> = tb
            .iter_indexed()
            .map(|(i, r)| (i, r.sentence.id.tweet_id))
            .collect();
        assert_eq!(live, vec![(0, 0), (2, 2), (4, 4)]);
        assert_eq!(tb.indices_with_token("tok"), &[0, 2, 4]);
        assert_eq!(tb.first_live_from(0), Some(0));
        assert_eq!(tb.first_live_from(1), Some(2));
        assert_eq!(tb.first_live_from(3), Some(4));
        assert_eq!(tb.first_live_from(5), None);
    }

    #[test]
    fn reinserting_an_evicted_id_appends_fresh() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["one"]));
        tb.insert(rec_with(2, &["two"]));
        tb.evict(0);
        let i = tb.insert(rec_with(1, &["one", "again"]));
        assert_eq!(i, 2, "an evicted id re-enters at the stream tail");
        assert_eq!(tb.indices_with_token("one"), &[2]);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn compact_squeezes_tombstones_with_remap() {
        let mut tb = TweetBase::new();
        for t in 0..6u64 {
            tb.insert(rec_with(t, &["tok", &format!("w{t}")]));
        }
        tb.evict(0);
        tb.evict(2);
        tb.evict(3);
        let remap = tb.compact().expect("had tombstones");
        assert_eq!(remap, vec![None, Some(0), None, None, Some(1), Some(2)]);
        assert_eq!(tb.n_slots(), 3);
        assert_eq!(tb.len(), 3);
        assert_eq!(
            tb.evicted_total(),
            3,
            "cumulative count survives compaction"
        );
        let ids: Vec<u64> = tb.iter().map(|r| r.sentence.id.tweet_id).collect();
        assert_eq!(ids, vec![1, 4, 5]);
        assert_eq!(tb.indices_with_token("tok"), &[0, 1, 2]);
        assert_eq!(tb.index_of(SentenceId::new(4, 0)), Some(1));
        assert_postings_consistent(&tb);
        // Dense store: nothing to compact.
        assert!(tb.compact().is_none());
    }

    #[test]
    fn resident_bytes_shrinks_on_eviction() {
        let mut tb = TweetBase::new();
        for t in 0..8u64 {
            tb.insert(rec_with(
                t,
                &["some", "reasonably", "long", "sentence", "tokens"],
            ));
        }
        let before = tb.resident_bytes();
        for i in 0..6 {
            tb.evict(i);
        }
        let after = tb.resident_bytes();
        assert!(
            after < before,
            "eviction must shrink resident bytes: {before} -> {after}"
        );
    }
}
