//! TweetBase: per-sentence records maintained across the pipeline.
//!
//! Indexed by `(tweet id, sentence id)` pairs, a record stores the sentence
//! itself, the token embeddings produced at Local EMD (deep systems only),
//! the spans the local system detected, and the mention list that Global
//! EMD updates as the sentences pass through the second phase.
//!
//! ## SoA layout
//!
//! The store is the owner of the pipeline's shared token [`Interner`]. At
//! insert every token is case-folded and interned once into
//! [`TweetRecord::tok_syms`]; the occurrence scan, the inverted index, and
//! the CTrie walk all operate on those `u32` symbols — the per-scan
//! `to_lowercase()` string churn of the original layout is gone. The
//! inverted index itself is a symbol-indexed `Vec<Vec<usize>>` instead of
//! a `HashMap<String, _>`, and token-embedding matrices live in one flat
//! `f32` arena (`emb_arena`) with per-record row offsets instead of a heap
//! allocation per sentence.
//!
//! Records *outside* the store are always self-contained: `insert` drains
//! an incoming record's `token_embeddings` matrix into the arena, and
//! `evict` copies the rows back out into the returned record — so callers
//! that hold evicted records (quarantine, replay) never see arena offsets
//! that a later [`TweetBase::compact`] would invalidate.
//!
//! ## Bounded-memory storage
//!
//! For 24/7 streams the store supports *eviction*: a record can be removed
//! from its slot (the slot becomes a tombstone) while stream-order indices
//! of the remaining records stay stable — the globalizer's dirty set,
//! quarantine set, and the token posting lists all hold slot indices, and
//! none of them need rewriting when a cold record is dropped. Eviction
//! removes the record's posting-list entries and frees the sentence and
//! span storage; its arena rows become dead bytes that
//! [`TweetBase::compact`] reclaims when it squeezes out the tombstones
//! (returning an old→new index remap for the caller's index-keyed sets) so
//! checkpoints and restarts stay O(live window), not O(stream).

use emd_nn::matrix::Matrix;
use emd_text::intern::{Interner, Sym};
use emd_text::token::{Sentence, SentenceId, Span};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a record's token-embedding rows live inside the store's arena.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct EmbSlot {
    /// Flat offset of row 0 in `emb_arena`.
    off: usize,
    /// Number of rows (= sentence tokens for deep local systems).
    rows: usize,
    /// Embedding dimensionality.
    cols: usize,
}

/// Borrowed view of one record's token-embedding rows in the arena.
#[derive(Debug, Clone, Copy)]
pub struct EmbView<'a> {
    /// The record's `rows * cols` floats, row-major.
    pub data: &'a [f32],
    /// Number of token rows.
    pub rows: usize,
    /// Embedding dimensionality.
    pub cols: usize,
}

impl<'a> EmbView<'a> {
    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// One sentence's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TweetRecord {
    /// The sentence.
    pub sentence: Sentence,
    /// Entity-aware token embeddings `[T, d]` from Local EMD (deep only).
    /// Carried by records *outside* the store; drained into the arena at
    /// insert (stored records answer through [`TweetBase::embedding_view`])
    /// and re-materialized by [`TweetBase::evict`].
    pub token_embeddings: Option<Matrix>,
    /// Spans the Local EMD system itself proposed.
    pub local_spans: Vec<Span>,
    /// All candidate mentions found by the global rescan (superset of the
    /// verified `local_spans`, aligned to CTrie candidates).
    pub global_mentions: Vec<Span>,
    /// Case-folded interned symbol per token, filled at insert. The scan
    /// walks these against the CTrie's symbol edges allocation-free.
    pub tok_syms: Vec<Sym>,
    /// Arena placement of the token embeddings while stored.
    emb: Option<EmbSlot>,
}

impl TweetRecord {
    /// A fresh (not-yet-inserted) record. `tok_syms` is populated by
    /// [`TweetBase::insert`].
    pub fn new(
        sentence: Sentence,
        token_embeddings: Option<Matrix>,
        local_spans: Vec<Span>,
    ) -> TweetRecord {
        TweetRecord {
            sentence,
            token_embeddings,
            local_spans,
            global_mentions: Vec::new(),
            tok_syms: Vec::new(),
            emb: None,
        }
    }
}

/// The stream-wide sentence store.
///
/// Besides the id → record map, the store maintains an inverted index from
/// interned token symbol to the (stream-ordered) record indices of
/// sentences containing that token. Global EMD uses it to find which
/// sentences a newly discovered candidate could possibly match — a
/// candidate insertion only changes a sentence's extraction if the
/// sentence contains the candidate's first token — so the close-of-stream
/// rescan touches only those sentences instead of the whole stream.
///
/// Posting-list invariant: every list holds strictly ascending indices of
/// **live** records whose sentence contains the token. Replacement and
/// eviction both maintain this by removing the outgoing record's postings;
/// there are no stale or duplicated entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TweetBase {
    /// Stream-ordered record slots; `None` marks an evicted record.
    slots: Vec<Option<TweetRecord>>,
    /// Sentence id → slot index, live records only.
    index: HashMap<SentenceId, usize>,
    /// The pipeline-wide token interner (symbols shared with the CTrie).
    interner: Interner,
    /// Symbol → strictly ascending live slot indices. Indexed by `Sym`;
    /// symbols never seen in a sentence simply have an empty list.
    postings: Vec<PostingList>,
    /// Flat row-major token-embedding storage for all live records.
    emb_arena: Vec<f32>,
    /// Arena floats belonging to evicted/replaced records (reclaimed by
    /// [`TweetBase::compact`]).
    emb_dead: usize,
    /// Number of live (non-tombstone) slots.
    live: usize,
    /// Cumulative count of evictions over the lifetime of the store
    /// (survives compaction; drives the evicted-records gauge).
    evicted_total: u64,
    /// Reusable scratch for posting-list updates (sorted/deduped symbols
    /// of one sentence) — keeps add/remove allocation-free in steady
    /// state.
    #[serde(skip)]
    scratch_syms: Vec<Sym>,
}

/// One symbol's posting list: strictly ascending live slot indices
/// behind an amortised head offset. Window eviction runs oldest-first,
/// so removals overwhelmingly hit the logical front — and popping the
/// front of a plain `Vec` memmoves the whole tail, which at window
/// scale was the dominant eviction cost. Here a front removal just
/// advances `head` in O(1); the dead prefix is physically reclaimed
/// once it outgrows the live part, keeping memory O(live). Serializes
/// as the logical (head-trimmed) list, so the checkpoint schema is
/// identical to the plain-`Vec` representation it replaced.
#[derive(Debug, Clone, Default)]
struct PostingList {
    items: Vec<usize>,
    head: usize,
}

impl PostingList {
    /// The live entries, strictly ascending.
    #[inline]
    fn as_slice(&self) -> &[usize] {
        &self.items[self.head..]
    }

    /// Insert `i`, keeping the list strictly ascending and deduplicated.
    fn insert(&mut self, i: usize) {
        match self.as_slice().binary_search(&i) {
            Ok(_) => {}
            Err(pos) => self.items.insert(self.head + pos, i),
        }
    }

    /// Remove `i` if present. Front removals advance the head; the dead
    /// prefix is drained once it exceeds the live half.
    fn remove(&mut self, i: usize) {
        if let Ok(pos) = self.as_slice().binary_search(&i) {
            if pos == 0 {
                self.head += 1;
                if self.head * 2 > self.items.len() {
                    self.items.drain(..self.head);
                    self.head = 0;
                }
            } else {
                self.items.remove(self.head + pos);
            }
        }
    }

    /// No live entries left?
    fn is_empty(&self) -> bool {
        self.head == self.items.len()
    }

    /// Drop all entries, keeping the allocation for reuse.
    fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }

    /// Drop all entries and release the heap block (a token whose last
    /// sentence left the window should not pin memory).
    fn release(&mut self) {
        *self = PostingList::default();
    }

    /// Physical capacity in entries, for memory accounting.
    fn capacity(&self) -> usize {
        self.items.capacity()
    }
}

// Checkpoints carry the logical list only — byte-identical to the
// plain-`Vec` schema; `head` is a transient layout detail.
impl Serialize for PostingList {
    fn to_value(&self) -> serde::value::Value {
        self.as_slice().to_vec().to_value()
    }
}

impl Deserialize for PostingList {
    fn from_value(v: &serde::value::Value) -> Result<PostingList, serde::DeError> {
        Ok(PostingList {
            items: Vec::<usize>::from_value(v)?,
            head: 0,
        })
    }
}

impl TweetBase {
    /// Empty TweetBase.
    pub fn new() -> TweetBase {
        TweetBase::default()
    }

    /// The shared token interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the shared interner (trie registration interns
    /// candidate tokens through this).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Insert a record at the end of the stream order, interning its
    /// tokens and moving its embedding matrix into the arena. Replaces any
    /// previous record with the same id (streams should not repeat ids);
    /// the replaced record's posting-list entries are removed before the
    /// new sentence is indexed, so postings never go stale or unsorted.
    pub fn insert(&mut self, mut record: TweetRecord) -> usize {
        record.tok_syms.clear();
        for t in &record.sentence.tokens {
            record.tok_syms.push(self.interner.intern_folded(&t.text));
        }
        record.emb = record.token_embeddings.take().map(|m| {
            let off = self.emb_arena.len();
            self.emb_arena.extend_from_slice(&m.data);
            EmbSlot {
                off,
                rows: m.rows,
                cols: m.cols,
            }
        });
        let id = record.sentence.id;
        let i = if let Some(&i) = self.index.get(&id) {
            // Replacement: drop the old sentence's postings first. Pushing
            // the new tokens directly would re-append index `i` *after*
            // any later records' indices (the old tail-only dedup produced
            // unsorted, duplicated lists like `[0, 1, 0]`).
            if let Some(old) = self.slots[i].take() {
                self.remove_record_postings(i, &old);
            }
            self.slots[i] = Some(record);
            i
        } else {
            let i = self.slots.len();
            self.index.insert(id, i);
            self.slots.push(Some(record));
            self.live += 1;
            i
        };
        self.add_postings(i);
        i
    }

    /// Index every distinct symbol of slot `i`'s sentence, keeping each
    /// posting list strictly ascending. Uses the reusable scratch buffer —
    /// no per-call allocation once warm.
    fn add_postings(&mut self, i: usize) {
        let mut keys = std::mem::take(&mut self.scratch_syms);
        keys.clear();
        keys.extend_from_slice(
            &self.slots[i]
                .as_ref()
                .expect("add_postings on tombstone")
                .tok_syms,
        );
        keys.sort_unstable();
        keys.dedup();
        for &sym in &keys {
            let s = sym as usize;
            if self.postings.len() <= s {
                self.postings.resize_with(s + 1, PostingList::default);
            }
            self.postings[s].insert(i);
        }
        self.scratch_syms = keys;
    }

    /// Remove slot `i`'s entries from the posting lists of `record`'s
    /// symbols, releasing the heap block of lists that become empty (a
    /// token whose last sentence left the window should not pin memory),
    /// and marking the record's arena rows dead.
    fn remove_record_postings(&mut self, i: usize, record: &TweetRecord) {
        let mut keys = std::mem::take(&mut self.scratch_syms);
        keys.clear();
        keys.extend_from_slice(&record.tok_syms);
        keys.sort_unstable();
        keys.dedup();
        for &sym in &keys {
            if let Some(postings) = self.postings.get_mut(sym as usize) {
                postings.remove(i);
                if postings.is_empty() {
                    postings.release();
                }
            }
        }
        self.scratch_syms = keys;
        if let Some(slot) = record.emb {
            self.emb_dead += slot.rows * slot.cols;
        }
    }

    /// Ascending live-record indices of sentences containing the (already
    /// lower-cased) token. Strictly ascending, deduplicated, and free of
    /// replaced or evicted records.
    pub fn indices_with_token(&self, token_lower: &str) -> &[usize] {
        self.interner
            .lookup_folded(token_lower)
            .map(|sym| self.indices_with_sym(sym))
            .unwrap_or(&[])
    }

    /// [`TweetBase::indices_with_token`] by interned symbol — the
    /// allocation-free hot-path form.
    #[inline]
    pub fn indices_with_sym(&self, sym: Sym) -> &[usize] {
        self.postings
            .get(sym as usize)
            .map(PostingList::as_slice)
            .unwrap_or(&[])
    }

    /// Token-embedding rows of the record in slot `i`, if it is live and
    /// its local system produced embeddings.
    pub fn embedding_view(&self, i: usize) -> Option<EmbView<'_>> {
        let slot = self.slots.get(i)?.as_ref()?.emb?;
        Some(EmbView {
            data: &self.emb_arena[slot.off..slot.off + slot.rows * slot.cols],
            rows: slot.rows,
            cols: slot.cols,
        })
    }

    /// Record by stream-order index. Panics if the slot was evicted —
    /// internal callers only reach live indices (via postings, the dirty
    /// set, or [`TweetBase::iter_indexed`]).
    pub fn get_by_index(&self, i: usize) -> &TweetRecord {
        self.slots[i].as_ref().expect("record was evicted")
    }

    /// Mutable record by stream-order index (same liveness contract as
    /// [`TweetBase::get_by_index`]).
    pub fn get_mut_by_index(&mut self, i: usize) -> &mut TweetRecord {
        self.slots[i].as_mut().expect("record was evicted")
    }

    /// Record by stream-order index, `None` for tombstones.
    pub fn record_at(&self, i: usize) -> Option<&TweetRecord> {
        self.slots.get(i).and_then(Option::as_ref)
    }

    /// True when slot `i` holds a live record.
    pub fn is_live(&self, i: usize) -> bool {
        self.slots.get(i).map(Option::is_some).unwrap_or(false)
    }

    /// Stream-order index for a sentence id (live records only).
    pub fn index_of(&self, id: SentenceId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Lookup by sentence id.
    pub fn get(&self, id: SentenceId) -> Option<&TweetRecord> {
        self.index.get(&id).and_then(|&i| self.slots[i].as_ref())
    }

    /// Mutable lookup by sentence id.
    pub fn get_mut(&mut self, id: SentenceId) -> Option<&mut TweetRecord> {
        let i = *self.index.get(&id)?;
        self.slots[i].as_mut()
    }

    /// Live records in stream order.
    pub fn iter(&self) -> impl Iterator<Item = &TweetRecord> {
        self.slots.iter().flatten()
    }

    /// Live `(slot index, record)` pairs in stream order. Use this instead
    /// of `iter().enumerate()` when positions must align with the dirty /
    /// quarantine sets (enumeration over live records skips tombstones, so
    /// its ordinals are *not* slot indices).
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, &TweetRecord)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i, r)))
    }

    /// Mutable iteration over live records in stream order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut TweetRecord> {
        self.slots.iter_mut().flatten()
    }

    /// Number of live sentences stored.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live sentences are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slot count, including tombstones (the stream-order index
    /// space; `len() <= n_slots()`).
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Cumulative evictions over the lifetime of the store.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// First live slot index at or after `from`, scanning in stream order.
    pub fn first_live_from(&self, from: usize) -> Option<usize> {
        (from..self.slots.len()).find(|&i| self.slots[i].is_some())
    }

    /// Evict the record in slot `i`: remove its posting-list entries and
    /// its id mapping, free the record's storage and leave a tombstone so
    /// other slots keep their indices. The returned record is
    /// self-contained — its embedding rows are copied back out of the
    /// arena — so holding it across a later [`TweetBase::compact`] is
    /// safe. Returns `None` if the slot was already a tombstone.
    pub fn evict(&mut self, i: usize) -> Option<TweetRecord> {
        let mut record = self.slots.get_mut(i)?.take()?;
        self.remove_record_postings(i, &record);
        self.index.remove(&record.sentence.id);
        self.live -= 1;
        self.evicted_total += 1;
        if let Some(slot) = record.emb.take() {
            record.token_embeddings = Some(Matrix {
                rows: slot.rows,
                cols: slot.cols,
                data: self.emb_arena[slot.off..slot.off + slot.rows * slot.cols].to_vec(),
            });
        }
        Some(record)
    }

    /// Squeeze out tombstone slots so the stored vector is dense again,
    /// rebuilding the embedding arena with only live rows (reclaiming the
    /// dead floats of evicted and replaced records). Returns the old→new
    /// slot-index remap (`None` for evicted slots) so callers can rebase
    /// any index-keyed side structures; returns `None` when there was
    /// nothing to compact.
    pub fn compact(&mut self) -> Option<Vec<Option<usize>>> {
        if self.live == self.slots.len() && self.emb_dead == 0 {
            return None;
        }
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.slots.len());
        let mut next = 0usize;
        for slot in &self.slots {
            if slot.is_some() {
                remap.push(Some(next));
                next += 1;
            } else {
                remap.push(None);
            }
        }
        let old = std::mem::take(&mut self.slots);
        self.slots = old.into_iter().flatten().map(Some).collect();
        // Rewrite the arena with live rows only, in slot order. Bit-for-bit
        // copies: compaction must not perturb any downstream f32 result.
        let live_floats = self.emb_arena.len().saturating_sub(self.emb_dead);
        let mut arena = Vec::with_capacity(live_floats);
        for slot in self.slots.iter_mut().flatten() {
            if let Some(e) = &mut slot.emb {
                let off = arena.len();
                arena.extend_from_slice(&self.emb_arena[e.off..e.off + e.rows * e.cols]);
                e.off = off;
            }
        }
        self.emb_arena = arena;
        self.emb_dead = 0;
        self.index.clear();
        for p in &mut self.postings {
            p.clear();
        }
        for i in 0..self.slots.len() {
            let id = self.slots[i]
                .as_ref()
                .map(|r| r.sentence.id)
                .expect("compacted slots are live");
            self.index.insert(id, i);
            self.add_postings(i);
        }
        Some(remap)
    }

    /// Estimated resident heap bytes of the store: sentences, the
    /// token-embedding arena (the dominant term for deep local systems,
    /// including not-yet-compacted dead rows), span lists, symbol lists,
    /// and both indexes. An estimate for gauges and eviction budgeting,
    /// not an allocator-exact measurement.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = self.slots.capacity() * size_of::<Option<TweetRecord>>();
        for r in self.slots.iter().flatten() {
            for t in &r.sentence.tokens {
                total += size_of::<emd_text::token::Token>() + t.text.len();
            }
            total += r.tok_syms.capacity() * size_of::<Sym>();
            total += (r.local_spans.len() + r.global_mentions.len()) * size_of::<Span>();
        }
        total += self.emb_arena.capacity() * size_of::<f32>();
        total += self.postings.capacity() * size_of::<PostingList>();
        for postings in &self.postings {
            total += postings.capacity() * size_of::<usize>();
        }
        total += self.interner.resident_bytes();
        total += self.index.len() * (size_of::<SentenceId>() + size_of::<usize>());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tweet: u64) -> TweetRecord {
        TweetRecord::new(
            Sentence::from_tokens(SentenceId::new(tweet, 0), ["a", "b"]),
            None,
            vec![],
        )
    }

    fn rec_with(tweet: u64, tokens: &[&str]) -> TweetRecord {
        TweetRecord::new(
            Sentence::from_tokens(SentenceId::new(tweet, 0), tokens.iter().copied()),
            None,
            vec![],
        )
    }

    fn rec_with_emb(tweet: u64, tokens: &[&str], dim: usize) -> TweetRecord {
        let rows = tokens.len();
        let data: Vec<f32> = (0..rows * dim)
            .map(|i| tweet as f32 * 100.0 + i as f32)
            .collect();
        TweetRecord::new(
            Sentence::from_tokens(SentenceId::new(tweet, 0), tokens.iter().copied()),
            Some(Matrix {
                rows,
                cols: dim,
                data,
            }),
            vec![],
        )
    }

    /// Every posting list must be strictly ascending, deduplicated, and
    /// point at a live record actually containing the token.
    fn assert_postings_consistent(tb: &TweetBase) {
        for (sym, postings) in tb.postings.iter().enumerate() {
            let token = tb.interner.resolve(sym as Sym);
            let postings = postings.as_slice();
            assert!(
                postings.windows(2).all(|w| w[0] < w[1]),
                "postings for {token:?} not strictly ascending: {postings:?}"
            );
            for &i in postings {
                let r = tb
                    .record_at(i)
                    .unwrap_or_else(|| panic!("posting for {token:?} points at tombstone {i}"));
                assert!(
                    r.sentence.texts().any(|t| t.to_lowercase() == *token),
                    "stale posting: record {i} does not contain {token:?}"
                );
            }
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.insert(rec(2));
        assert_eq!(tb.len(), 2);
        assert!(tb.get(SentenceId::new(1, 0)).is_some());
        assert!(tb.get(SentenceId::new(3, 0)).is_none());
    }

    #[test]
    fn insert_interns_folded_token_symbols() {
        let mut tb = TweetBase::new();
        let i = tb.insert(rec_with(1, &["Italy", "reports", "ITALY"]));
        let r = tb.get_by_index(i);
        assert_eq!(r.tok_syms.len(), 3);
        assert_eq!(r.tok_syms[0], r.tok_syms[2], "case variants share a sym");
        assert_eq!(tb.interner().resolve(r.tok_syms[0]), "italy");
    }

    #[test]
    fn duplicate_id_replaces() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        let mut r = rec(1);
        r.local_spans.push(Span::new(0, 1));
        tb.insert(r);
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.get(SentenceId::new(1, 0)).unwrap().local_spans.len(), 1);
    }

    #[test]
    fn stream_order_preserved() {
        let mut tb = TweetBase::new();
        for t in [5u64, 2, 9] {
            tb.insert(rec(t));
        }
        let ids: Vec<u64> = tb.iter().map(|r| r.sentence.id.tweet_id).collect();
        assert_eq!(ids, vec![5, 2, 9]);
    }

    #[test]
    fn token_index_finds_sentences() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["Italy", "report"]));
        tb.insert(rec_with(2, &["italy", "italy", "again"]));
        // Case-folded, deduped per record, ascending order.
        assert_eq!(tb.indices_with_token("italy"), &[0, 1]);
        assert_eq!(tb.indices_with_token("report"), &[0]);
        assert_eq!(tb.indices_with_token("missing"), &[] as &[usize]);
        let sym = tb.interner().lookup_folded("ITALY").unwrap();
        assert_eq!(tb.indices_with_sym(sym), &[0, 1]);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn token_index_survives_replacement() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["old", "text"]));
        tb.insert(rec_with(1, &["new", "text"]));
        // The new tokens are indexed; the replaced sentence's postings are
        // removed outright — no stale entries remain.
        assert_eq!(tb.indices_with_token("new"), &[0]);
        assert_eq!(tb.indices_with_token("text"), &[0]);
        assert_eq!(tb.indices_with_token("old"), &[] as &[usize]);
        assert_eq!(tb.len(), 1);
        assert_postings_consistent(&tb);
    }

    /// Regression for the replacement-path posting corruption: replacing a
    /// *non-final* record whose tokens also appear in later records used to
    /// re-push its index after theirs (`[0, 1, 0]`) because the tail-only
    /// dedup never saw the earlier entry. Postings must stay strictly
    /// ascending, deduplicated, and stale-free.
    #[test]
    fn replacing_non_final_record_keeps_postings_sorted() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["shared", "alpha"]));
        tb.insert(rec_with(2, &["shared", "beta"]));
        // Replace record 0 with a sentence still containing "shared".
        tb.insert(rec_with(1, &["shared", "gamma"]));
        assert_eq!(
            tb.indices_with_token("shared"),
            &[0, 1],
            "replacement must not duplicate or unsort postings"
        );
        assert_eq!(tb.indices_with_token("alpha"), &[] as &[usize]);
        assert_eq!(tb.indices_with_token("gamma"), &[0]);
        assert_postings_consistent(&tb);
        // Replace again with entirely fresh tokens: the shared posting for
        // record 0 must disappear.
        tb.insert(rec_with(1, &["delta"]));
        assert_eq!(tb.indices_with_token("shared"), &[1]);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn by_index_accessors() {
        let mut tb = TweetBase::new();
        tb.insert(rec(7));
        assert_eq!(tb.index_of(SentenceId::new(7, 0)), Some(0));
        assert_eq!(tb.get_by_index(0).sentence.id.tweet_id, 7);
        tb.get_mut_by_index(0).global_mentions.push(Span::new(0, 1));
        assert_eq!(tb.get_by_index(0).global_mentions.len(), 1);
    }

    #[test]
    fn mutable_update() {
        let mut tb = TweetBase::new();
        tb.insert(rec(1));
        tb.get_mut(SentenceId::new(1, 0))
            .unwrap()
            .global_mentions
            .push(Span::new(0, 2));
        assert_eq!(
            tb.get(SentenceId::new(1, 0)).unwrap().global_mentions.len(),
            1
        );
    }

    #[test]
    fn embeddings_live_in_arena_and_round_trip_through_evict() {
        let mut tb = TweetBase::new();
        let i1 = tb.insert(rec_with_emb(1, &["a", "b"], 3));
        let i2 = tb.insert(rec_with_emb(2, &["c"], 3));
        // Stored records hold no inline matrix; the view serves the rows.
        assert!(tb.get_by_index(i1).token_embeddings.is_none());
        let v = tb.embedding_view(i1).expect("record has embeddings");
        assert_eq!((v.rows, v.cols), (2, 3));
        assert_eq!(v.row(1), &[103.0, 104.0, 105.0]);
        let v2 = tb.embedding_view(i2).unwrap();
        assert_eq!(v2.row(0), &[200.0, 201.0, 202.0]);
        // No-embedding records answer None.
        let i3 = tb.insert(rec_with(3, &["d"]));
        assert!(tb.embedding_view(i3).is_none());
        // Evict re-materializes a self-contained matrix, bit-for-bit.
        let out = tb.evict(i1).unwrap();
        let m = out.token_embeddings.expect("copied back out");
        assert_eq!((m.rows, m.cols), (2, 3));
        assert_eq!(m.data, vec![100.0, 101.0, 102.0, 103.0, 104.0, 105.0]);
        assert!(tb.embedding_view(i1).is_none());
        // Survivor's view is untouched by the eviction...
        assert_eq!(
            tb.embedding_view(i2).unwrap().row(0),
            &[200.0, 201.0, 202.0]
        );
        // ...and by compaction, which reclaims the dead rows.
        let before = tb.emb_arena.len();
        tb.compact().expect("had tombstones");
        assert!(tb.emb_arena.len() < before, "dead rows reclaimed");
        assert_eq!(tb.emb_dead, 0);
        let i2_new = tb.index_of(SentenceId::new(2, 0)).unwrap();
        assert_eq!(
            tb.embedding_view(i2_new).unwrap().row(0),
            &[200.0, 201.0, 202.0]
        );
    }

    #[test]
    fn evict_frees_record_and_postings() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["cold", "shared"]));
        tb.insert(rec_with(2, &["hot", "shared"]));
        let evicted = tb.evict(0).expect("slot 0 live");
        assert_eq!(evicted.sentence.id, SentenceId::new(1, 0));
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.n_slots(), 2, "indices stay stable after eviction");
        assert_eq!(tb.evicted_total(), 1);
        assert!(!tb.is_live(0));
        assert!(tb.record_at(0).is_none());
        assert!(tb.get(SentenceId::new(1, 0)).is_none());
        assert_eq!(tb.indices_with_token("cold"), &[] as &[usize]);
        assert_eq!(tb.indices_with_token("shared"), &[1]);
        // Double eviction is a no-op.
        assert!(tb.evict(0).is_none());
        assert_eq!(tb.evicted_total(), 1);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn eviction_preserves_live_iteration_and_indices() {
        let mut tb = TweetBase::new();
        for t in 0..5u64 {
            tb.insert(rec_with(t, &["tok"]));
        }
        tb.evict(1);
        tb.evict(3);
        let live: Vec<(usize, u64)> = tb
            .iter_indexed()
            .map(|(i, r)| (i, r.sentence.id.tweet_id))
            .collect();
        assert_eq!(live, vec![(0, 0), (2, 2), (4, 4)]);
        assert_eq!(tb.indices_with_token("tok"), &[0, 2, 4]);
        assert_eq!(tb.first_live_from(0), Some(0));
        assert_eq!(tb.first_live_from(1), Some(2));
        assert_eq!(tb.first_live_from(3), Some(4));
        assert_eq!(tb.first_live_from(5), None);
    }

    #[test]
    fn reinserting_an_evicted_id_appends_fresh() {
        let mut tb = TweetBase::new();
        tb.insert(rec_with(1, &["one"]));
        tb.insert(rec_with(2, &["two"]));
        tb.evict(0);
        let i = tb.insert(rec_with(1, &["one", "again"]));
        assert_eq!(i, 2, "an evicted id re-enters at the stream tail");
        assert_eq!(tb.indices_with_token("one"), &[2]);
        assert_postings_consistent(&tb);
    }

    #[test]
    fn compact_squeezes_tombstones_with_remap() {
        let mut tb = TweetBase::new();
        for t in 0..6u64 {
            tb.insert(rec_with(t, &["tok", &format!("w{t}")]));
        }
        tb.evict(0);
        tb.evict(2);
        tb.evict(3);
        let remap = tb.compact().expect("had tombstones");
        assert_eq!(remap, vec![None, Some(0), None, None, Some(1), Some(2)]);
        assert_eq!(tb.n_slots(), 3);
        assert_eq!(tb.len(), 3);
        assert_eq!(
            tb.evicted_total(),
            3,
            "cumulative count survives compaction"
        );
        let ids: Vec<u64> = tb.iter().map(|r| r.sentence.id.tweet_id).collect();
        assert_eq!(ids, vec![1, 4, 5]);
        assert_eq!(tb.indices_with_token("tok"), &[0, 1, 2]);
        assert_eq!(tb.index_of(SentenceId::new(4, 0)), Some(1));
        assert_postings_consistent(&tb);
        // Dense store: nothing to compact.
        assert!(tb.compact().is_none());
    }

    #[test]
    fn resident_bytes_shrinks_on_eviction() {
        let mut tb = TweetBase::new();
        for t in 0..8u64 {
            tb.insert(rec_with(
                t,
                &["some", "reasonably", "long", "sentence", "tokens"],
            ));
        }
        let before = tb.resident_bytes();
        for i in 0..6 {
            tb.evict(i);
        }
        let after = tb.resident_bytes();
        assert!(
            after < before,
            "eviction must shrink resident bytes: {before} -> {after}"
        );
    }
}
