//! Candidate Mention Extraction (§V-A).
//!
//! With the seed candidates registered in the CTrie, segmenting a sentence
//! into candidate mention boundaries reduces to a greedy longest-match
//! lookup: a window scans the token sequence; at each anchor position the
//! scan follows the trie as far as tokens match (case-insensitively),
//! remembering the last position where the path ended on a terminal node.
//!
//! * On a match, the longest matching subsequence is emitted and the next
//!   window starts right after it (matched tokens are consumed).
//! * On no match, the window advances by a single token.
//!
//! This verifies — and sometimes *corrects* — the Local EMD extractions:
//! a partial extraction like `Andy` is replaced by the full registered
//! candidate `Andy Beshear` when the full string is present.

use crate::ctrie::CTrie;
use emd_text::token::{Sentence, Span};

/// Find all (non-overlapping, greedy-longest) candidate mentions in
/// `sentence`, bounded by `max_len` tokens per mention.
pub fn extract_mentions(trie: &CTrie, sentence: &Sentence, max_len: usize) -> Vec<Span> {
    let n = sentence.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        let mut node = CTrie::ROOT;
        let mut last_terminal: Option<usize> = None; // exclusive end
        let mut j = i;
        while j < n && j - i < max_len {
            match trie.child(node, &sentence.tokens[j].text) {
                Some(next) => {
                    node = next;
                    j += 1;
                    if trie.is_terminal(node) {
                        last_terminal = Some(j);
                    }
                }
                None => break,
            }
        }
        match last_terminal {
            Some(end) => {
                out.push(Span::new(i, end));
                i = end; // consume the matched subsequence
            }
            None => {
                i += 1; // restart one token to the right
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::SentenceId;

    fn sent(words: &[&str]) -> Sentence {
        Sentence::from_tokens(SentenceId::new(0, 0), words.iter().copied())
    }

    fn trie(cands: &[&[&str]]) -> CTrie {
        let mut t = CTrie::new();
        for c in cands {
            t.insert(c);
        }
        t
    }

    #[test]
    fn finds_case_variants() {
        let t = trie(&[&["coronavirus"]]);
        let s = sent(&["CORONAVIRUS", "and", "Coronavirus", "and", "coronavirus"]);
        let m = extract_mentions(&t, &s, 6);
        assert_eq!(m, vec![Span::new(0, 1), Span::new(2, 3), Span::new(4, 5)]);
    }

    #[test]
    fn longest_match_wins() {
        let t = trie(&[&["andy"], &["andy", "beshear"]]);
        let s = sent(&["Andy", "Beshear", "speaks"]);
        let m = extract_mentions(&t, &s, 6);
        assert_eq!(m, vec![Span::new(0, 2)], "prefer the longer candidate");
    }

    #[test]
    fn partial_extraction_corrected() {
        // Local EMD only found "Andy" somewhere; the full candidate was
        // registered from another tweet. The scan recovers the full form.
        let t = trie(&[&["andy", "beshear"]]);
        let s = sent(&["gov", "andy", "beshear", "said"]);
        let m = extract_mentions(&t, &s, 6);
        assert_eq!(m, vec![Span::new(1, 3)]);
    }

    #[test]
    fn failed_long_path_backtracks_to_shorter_terminal() {
        // "new york" is a candidate; "new york giants" is not. Scanning
        // "new york giants" must emit "new york".
        let t = trie(&[&["new", "york"]]);
        let s = sent(&["new", "york", "giants", "win"]);
        let m = extract_mentions(&t, &s, 6);
        assert_eq!(m, vec![Span::new(0, 2)]);
    }

    #[test]
    fn mid_path_failure_restarts_inside_prefix() {
        // Candidate "york city" exists; sentence "new york city": anchor at
        // "new" fails (no terminal), anchor advances to "york" and matches.
        let t = trie(&[&["new", "york", "island"], &["york", "city"]]);
        let s = sent(&["new", "york", "city"]);
        let m = extract_mentions(&t, &s, 6);
        assert_eq!(m, vec![Span::new(1, 3)]);
    }

    #[test]
    fn adjacent_mentions() {
        let t = trie(&[&["italy"], &["canada"]]);
        let s = sent(&["Italy", "Canada", "rise"]);
        let m = extract_mentions(&t, &s, 6);
        assert_eq!(m, vec![Span::new(0, 1), Span::new(1, 2)]);
    }

    #[test]
    fn max_len_bounds_window() {
        let t = trie(&[&["a", "b", "c", "d"]]);
        let s = sent(&["a", "b", "c", "d"]);
        assert_eq!(extract_mentions(&t, &s, 3), vec![]);
        assert_eq!(extract_mentions(&t, &s, 4), vec![Span::new(0, 4)]);
    }

    #[test]
    fn empty_inputs() {
        let t = trie(&[&["x"]]);
        assert!(extract_mentions(&t, &sent(&[]), 6).is_empty());
        let empty = CTrie::new();
        assert!(extract_mentions(&empty, &sent(&["a", "b"]), 6).is_empty());
    }

    #[test]
    fn consumed_tokens_not_reused() {
        // After matching "world health", the next window starts at
        // "organization"; "health organization" must not also fire.
        let t = trie(&[&["world", "health"], &["health", "organization"]]);
        let s = sent(&["world", "health", "organization"]);
        let m = extract_mentions(&t, &s, 6);
        assert_eq!(m, vec![Span::new(0, 2)]);
    }

    #[test]
    fn no_overlaps_ever() {
        let t = trie(&[&["a", "b"], &["b", "c"], &["c"], &["a"]]);
        let s = sent(&["a", "b", "c", "a", "b", "c"]);
        let m = extract_mentions(&t, &s, 6);
        for w in m.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {:?}", m);
        }
    }
}
