//! Candidate Mention Extraction (§V-A).
//!
//! With the seed candidates registered in the CTrie, segmenting a sentence
//! into candidate mention boundaries reduces to a greedy longest-match
//! lookup: a window scans the token sequence; at each anchor position the
//! scan follows the trie as far as tokens match (case-insensitively),
//! remembering the last position where the path ended on a terminal node.
//!
//! * On a match, the longest matching subsequence is emitted and the next
//!   window starts right after it (matched tokens are consumed).
//! * On no match, the window advances by a single token.
//!
//! This verifies — and sometimes *corrects* — the Local EMD extractions:
//! a partial extraction like `Andy` is replaced by the full registered
//! candidate `Andy Beshear` when the full string is present.
//!
//! The hot-path entry point is [`extract_mentions_into`]: it walks a
//! sentence's pre-interned folded symbols (built once at ingest) against
//! the trie's symbol-labelled edges and writes into a caller-owned scratch
//! vector, so a steady-state scan performs **zero heap allocations** —
//! no `to_lowercase()`, no per-call `Vec`. [`extract_mentions`] is the
//! convenience form for tests and callers holding a raw [`Sentence`].

use crate::ctrie::CTrie;
use emd_text::intern::{Interner, Sym};
use emd_text::token::{Sentence, Span};

/// Find all (non-overlapping, greedy-longest) candidate mentions in the
/// pre-folded symbol sequence `syms`, bounded by `max_len` tokens per
/// mention, appending them to `out` (which is cleared first). Performs no
/// heap allocation beyond `out`'s amortized growth.
pub fn extract_mentions_into(trie: &CTrie, syms: &[Sym], max_len: usize, out: &mut Vec<Span>) {
    out.clear();
    let n = syms.len();
    let mut i = 0usize;
    while i < n {
        let mut node = CTrie::ROOT;
        let mut last_terminal: Option<usize> = None; // exclusive end
        let mut j = i;
        while j < n && j - i < max_len {
            match trie.child_sym(node, syms[j]) {
                Some(next) => {
                    node = next;
                    j += 1;
                    if trie.is_terminal(node) {
                        last_terminal = Some(j);
                    }
                }
                None => break,
            }
        }
        match last_terminal {
            Some(end) => {
                out.push(Span::new(i, end));
                i = end; // consume the matched subsequence
            }
            None => {
                i += 1; // restart one token to the right
            }
        }
    }
}

/// [`extract_mentions_into`] over a raw sentence: folds and interns the
/// tokens first (the convenience path — ingest-side callers already hold
/// the interned symbols and use the scratch-buffer form directly).
pub fn extract_mentions(
    trie: &CTrie,
    interner: &mut Interner,
    sentence: &Sentence,
    max_len: usize,
) -> Vec<Span> {
    let syms: Vec<Sym> = sentence
        .tokens
        .iter()
        .map(|t| interner.intern_folded(&t.text))
        .collect();
    let mut out = Vec::new();
    extract_mentions_into(trie, &syms, max_len, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::SentenceId;

    fn sent(words: &[&str]) -> Sentence {
        Sentence::from_tokens(SentenceId::new(0, 0), words.iter().copied())
    }

    fn trie(interner: &mut Interner, cands: &[&[&str]]) -> CTrie {
        let mut t = CTrie::new();
        for c in cands {
            t.insert(interner, c);
        }
        t
    }

    fn extract(t: &CTrie, interner: &mut Interner, s: &Sentence, max_len: usize) -> Vec<Span> {
        extract_mentions(t, interner, s, max_len)
    }

    #[test]
    fn finds_case_variants() {
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["coronavirus"]]);
        let s = sent(&["CORONAVIRUS", "and", "Coronavirus", "and", "coronavirus"]);
        let m = extract(&t, &mut it, &s, 6);
        assert_eq!(m, vec![Span::new(0, 1), Span::new(2, 3), Span::new(4, 5)]);
    }

    #[test]
    fn longest_match_wins() {
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["andy"], &["andy", "beshear"]]);
        let s = sent(&["Andy", "Beshear", "speaks"]);
        let m = extract(&t, &mut it, &s, 6);
        assert_eq!(m, vec![Span::new(0, 2)], "prefer the longer candidate");
    }

    #[test]
    fn partial_extraction_corrected() {
        // Local EMD only found "Andy" somewhere; the full candidate was
        // registered from another tweet. The scan recovers the full form.
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["andy", "beshear"]]);
        let s = sent(&["gov", "andy", "beshear", "said"]);
        let m = extract(&t, &mut it, &s, 6);
        assert_eq!(m, vec![Span::new(1, 3)]);
    }

    #[test]
    fn failed_long_path_backtracks_to_shorter_terminal() {
        // "new york" is a candidate; "new york giants" is not. Scanning
        // "new york giants" must emit "new york".
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["new", "york"]]);
        let s = sent(&["new", "york", "giants", "win"]);
        let m = extract(&t, &mut it, &s, 6);
        assert_eq!(m, vec![Span::new(0, 2)]);
    }

    #[test]
    fn mid_path_failure_restarts_inside_prefix() {
        // Candidate "york city" exists; sentence "new york city": anchor at
        // "new" fails (no terminal), anchor advances to "york" and matches.
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["new", "york", "island"], &["york", "city"]]);
        let s = sent(&["new", "york", "city"]);
        let m = extract(&t, &mut it, &s, 6);
        assert_eq!(m, vec![Span::new(1, 3)]);
    }

    #[test]
    fn adjacent_mentions() {
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["italy"], &["canada"]]);
        let s = sent(&["Italy", "Canada", "rise"]);
        let m = extract(&t, &mut it, &s, 6);
        assert_eq!(m, vec![Span::new(0, 1), Span::new(1, 2)]);
    }

    #[test]
    fn max_len_bounds_window() {
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["a", "b", "c", "d"]]);
        let s = sent(&["a", "b", "c", "d"]);
        assert_eq!(extract(&t, &mut it, &s, 3), vec![]);
        assert_eq!(extract(&t, &mut it, &s, 4), vec![Span::new(0, 4)]);
    }

    #[test]
    fn empty_inputs() {
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["x"]]);
        assert!(extract(&t, &mut it, &sent(&[]), 6).is_empty());
        let empty = CTrie::new();
        assert!(extract(&empty, &mut it, &sent(&["a", "b"]), 6).is_empty());
    }

    #[test]
    fn consumed_tokens_not_reused() {
        // After matching "world health", the next window starts at
        // "organization"; "health organization" must not also fire.
        let mut it = Interner::new();
        let t = trie(
            &mut it,
            &[&["world", "health"], &["health", "organization"]],
        );
        let s = sent(&["world", "health", "organization"]);
        let m = extract(&t, &mut it, &s, 6);
        assert_eq!(m, vec![Span::new(0, 2)]);
    }

    #[test]
    fn no_overlaps_ever() {
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["a", "b"], &["b", "c"], &["c"], &["a"]]);
        let s = sent(&["a", "b", "c", "a", "b", "c"]);
        let m = extract(&t, &mut it, &s, 6);
        for w in m.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {:?}", m);
        }
    }

    #[test]
    fn scratch_buffer_form_matches_and_clears() {
        let mut it = Interner::new();
        let t = trie(&mut it, &[&["italy"]]);
        let s = sent(&["Italy", "rises"]);
        let syms: Vec<Sym> = s.tokens.iter().map(|w| it.intern_folded(&w.text)).collect();
        let mut out = vec![Span::new(5, 9)]; // stale contents must be cleared
        extract_mentions_into(&t, &syms, 6, &mut out);
        assert_eq!(out, vec![Span::new(0, 1)]);
    }
}
