//! The CandidatePrefixTrie (CTrie): a case-insensitive, token-level prefix
//! trie forest indexing the seed entity candidates discovered by Local EMD.
//!
//! Nodes correspond to lower-cased tokens; candidates sharing a prefix live
//! in the same subtree. The trie supports the incremental traversal the
//! candidate-mention-extraction scan (§V-A) needs: `child(node, token)` and
//! `is_terminal(node)`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Node id inside the trie arena. The root is [`CTrie::ROOT`].
pub type NodeId = u32;

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Node {
    children: HashMap<String, NodeId>,
    /// True when the path from the root to this node spells a registered
    /// candidate.
    terminal: bool,
}

/// Case-insensitive token-level prefix trie forest.
///
/// Supports removal: pruning a low-frequency cold candidate unmarks its
/// terminal and frees any now-childless path nodes onto a free-list that
/// later insertions reuse, so a long-running stream's trie arena tracks the
/// *live* candidate set instead of growing monotonically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CTrie {
    nodes: Vec<Node>,
    n_candidates: usize,
    /// Arena slots freed by [`CTrie::remove`], reused by later inserts.
    free: Vec<NodeId>,
}

impl Default for CTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl CTrie {
    /// Root node id.
    pub const ROOT: NodeId = 0;

    /// Empty trie.
    pub fn new() -> CTrie {
        CTrie {
            nodes: vec![Node::default()],
            n_candidates: 0,
            free: Vec::new(),
        }
    }

    /// Insert a candidate given its tokens (any casing). Returns `true` if
    /// the candidate was new.
    pub fn insert<S: AsRef<str>>(&mut self, tokens: &[S]) -> bool {
        if tokens.is_empty() {
            return false;
        }
        let mut node = Self::ROOT;
        for t in tokens {
            let key = t.as_ref().to_lowercase();
            let next = match self.nodes[node as usize].children.get(&key) {
                Some(&id) => id,
                None => {
                    // Reuse a slot freed by `remove` before growing the
                    // arena (freed nodes are reset to default on removal).
                    let id = match self.free.pop() {
                        Some(id) => id,
                        None => {
                            let id = self.nodes.len() as NodeId;
                            self.nodes.push(Node::default());
                            id
                        }
                    };
                    self.nodes[node as usize].children.insert(key, id);
                    id
                }
            };
            node = next;
        }
        let node = &mut self.nodes[node as usize];
        if node.terminal {
            false
        } else {
            node.terminal = true;
            self.n_candidates += 1;
            true
        }
    }

    /// Remove a registered candidate. Unmarks the terminal and frees every
    /// now-childless, non-terminal node on the path (bottom-up) onto the
    /// free-list. Returns `true` when the candidate was present. Paths
    /// shared with other candidates (prefixes or extensions) are left
    /// intact.
    pub fn remove<S: AsRef<str>>(&mut self, tokens: &[S]) -> bool {
        if tokens.is_empty() {
            return false;
        }
        // Walk down, recording (parent, key, child) per step.
        let mut path: Vec<(NodeId, String, NodeId)> = Vec::with_capacity(tokens.len());
        let mut node = Self::ROOT;
        for t in tokens {
            let key = t.as_ref().to_lowercase();
            match self.nodes[node as usize].children.get(&key) {
                Some(&id) => {
                    path.push((node, key, id));
                    node = id;
                }
                None => return false,
            }
        }
        if !self.nodes[node as usize].terminal {
            return false;
        }
        self.nodes[node as usize].terminal = false;
        self.n_candidates -= 1;
        // Prune childless non-terminal nodes bottom-up; stop at the first
        // node still needed (terminal, or carrying other candidates below).
        for (parent, key, child) in path.into_iter().rev() {
            let n = &self.nodes[child as usize];
            if n.terminal || !n.children.is_empty() {
                break;
            }
            self.nodes[parent as usize].children.remove(&key);
            self.nodes[child as usize] = Node::default();
            self.free.push(child);
        }
        true
    }

    /// Follow the edge labelled with the lower-cased form of `token`.
    ///
    /// Already-lowercase ASCII tokens — the overwhelmingly common case in
    /// tweet streams — are looked up without allocating. The predicate must
    /// be "ASCII with no ASCII uppercase", not `char::is_lowercase`: some
    /// non-ASCII characters (e.g. titlecase forms) are not uppercase yet
    /// still change under `to_lowercase`.
    pub fn child(&self, node: NodeId, token: &str) -> Option<NodeId> {
        let children = &self.nodes[node as usize].children;
        if token
            .bytes()
            .all(|b| b.is_ascii() && !b.is_ascii_uppercase())
        {
            return children.get(token).copied();
        }
        children.get(&token.to_lowercase()).copied()
    }

    /// Does the path ending at `node` spell a candidate?
    pub fn is_terminal(&self, node: NodeId) -> bool {
        self.nodes[node as usize].terminal
    }

    /// Is the full token sequence a registered candidate?
    pub fn contains<S: AsRef<str>>(&self, tokens: &[S]) -> bool {
        let mut node = Self::ROOT;
        for t in tokens {
            match self.child(node, t.as_ref()) {
                Some(n) => node = n,
                None => return false,
            }
        }
        node != Self::ROOT && self.is_terminal(node)
    }

    /// Number of registered candidates.
    pub fn len(&self) -> usize {
        self.n_candidates
    }

    /// True when no candidates are registered.
    pub fn is_empty(&self) -> bool {
        self.n_candidates == 0
    }

    /// Number of live trie nodes (diagnostics / memory accounting; freed
    /// slots awaiting reuse are not counted).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Enumerate all candidates as lower-cased token vectors (test &
    /// diagnostics helper; not on the hot path).
    pub fn candidates(&self) -> Vec<Vec<String>> {
        let mut out = Vec::with_capacity(self.n_candidates);
        let mut stack: Vec<(NodeId, Vec<String>)> = vec![(Self::ROOT, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            let n = &self.nodes[node as usize];
            if n.terminal {
                out.push(path.clone());
            }
            for (tok, &child) in &n.children {
                let mut p = path.clone();
                p.push(tok.clone());
                stack.push((child, p));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_case_insensitive() {
        let mut t = CTrie::new();
        assert!(t.insert(&["Andy", "Beshear"]));
        assert!(t.contains(&["andy", "beshear"]));
        assert!(t.contains(&["ANDY", "BESHEAR"]));
        assert!(!t.contains(&["andy"]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_insert_returns_false() {
        let mut t = CTrie::new();
        assert!(t.insert(&["covid"]));
        assert!(!t.insert(&["COVID"]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prefix_is_not_candidate_unless_inserted() {
        let mut t = CTrie::new();
        t.insert(&["world", "health", "organization"]);
        assert!(!t.contains(&["world"]));
        assert!(!t.contains(&["world", "health"]));
        t.insert(&["world", "health"]);
        assert!(t.contains(&["world", "health"]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = CTrie::new();
        t.insert(&["andy", "beshear"]);
        t.insert(&["andy", "murray"]);
        // root + andy + beshear + murray = 4 nodes
        assert_eq!(t.n_nodes(), 4);
    }

    #[test]
    fn traversal_api() {
        let mut t = CTrie::new();
        t.insert(&["new", "york", "city"]);
        let n1 = t.child(CTrie::ROOT, "New").unwrap();
        assert!(!t.is_terminal(n1));
        let n2 = t.child(n1, "YORK").unwrap();
        let n3 = t.child(n2, "city").unwrap();
        assert!(t.is_terminal(n3));
        assert!(t.child(n1, "jersey").is_none());
    }

    #[test]
    fn child_fast_path_matches_slow_path() {
        let mut t = CTrie::new();
        t.insert(&["straße", "café"]);
        t.insert(&["covid"]);
        // Lowercase ASCII (fast path), mixed-case ASCII and non-ASCII
        // (slow path) must agree on every edge.
        assert!(t.child(CTrie::ROOT, "covid").is_some());
        assert!(t.child(CTrie::ROOT, "COVID").is_some());
        assert!(t.child(CTrie::ROOT, "CoViD").is_some());
        let n = t.child(CTrie::ROOT, "STRASSE");
        // "STRASSE".to_lowercase() is "strasse", a different key than
        // "straße" — both paths must agree that it misses.
        assert!(n.is_none());
        let n = t.child(CTrie::ROOT, "straße").unwrap();
        assert!(t.child(n, "CAFÉ").is_some());
        assert!(t.child(n, "café").is_some());
        assert!(t.child(CTrie::ROOT, "missing").is_none());
    }

    #[test]
    fn empty_insert_rejected() {
        let mut t = CTrie::new();
        assert!(!t.insert::<&str>(&[]));
        assert!(t.is_empty());
    }

    #[test]
    fn remove_prunes_exclusive_path() {
        let mut t = CTrie::new();
        t.insert(&["world", "health", "organization"]);
        assert_eq!(t.n_nodes(), 4);
        assert!(t.remove(&["World", "Health", "Organization"]));
        assert!(!t.contains(&["world", "health", "organization"]));
        assert_eq!(t.len(), 0);
        assert_eq!(t.n_nodes(), 1, "exclusive path fully pruned");
        // Removing again is a no-op.
        assert!(!t.remove(&["world", "health", "organization"]));
    }

    #[test]
    fn remove_keeps_shared_prefixes_and_extensions() {
        let mut t = CTrie::new();
        t.insert(&["andy", "beshear"]);
        t.insert(&["andy", "murray"]);
        t.insert(&["andy"]);
        assert!(t.remove(&["andy", "beshear"]));
        assert!(t.contains(&["andy", "murray"]));
        assert!(t.contains(&["andy"]));
        assert_eq!(t.len(), 2);
        // Removing a terminal that still has children keeps the node.
        assert!(t.remove(&["andy"]));
        assert!(t.contains(&["andy", "murray"]));
        assert!(!t.contains(&["andy"]));
        // A prefix that was never inserted cannot be removed.
        assert!(!t.remove(&["andy"]));
    }

    #[test]
    fn freed_nodes_are_reused_by_insert() {
        let mut t = CTrie::new();
        t.insert(&["alpha", "beta"]);
        let peak = t.n_nodes();
        t.remove(&["alpha", "beta"]);
        assert_eq!(t.n_nodes(), 1);
        t.insert(&["gamma", "delta"]);
        assert_eq!(
            t.n_nodes(),
            peak,
            "arena reuses freed slots instead of growing"
        );
        assert!(t.contains(&["gamma", "delta"]));
    }

    #[test]
    fn enumerate_candidates() {
        let mut t = CTrie::new();
        t.insert(&["Italy"]);
        t.insert(&["Andy", "Beshear"]);
        let mut cands = t.candidates();
        cands.sort();
        assert_eq!(
            cands,
            vec![
                vec!["andy".to_string(), "beshear".to_string()],
                vec!["italy".to_string()]
            ]
        );
    }
}
