//! The CandidatePrefixTrie (CTrie): a case-insensitive, token-level prefix
//! trie forest indexing the seed entity candidates discovered by Local EMD.
//!
//! Nodes correspond to lower-cased tokens; candidates sharing a prefix live
//! in the same subtree. The trie supports the incremental traversal the
//! candidate-mention-extraction scan (§V-A) needs: `child_sym(node, sym)`
//! and `is_terminal(node)`.
//!
//! Since the SoA-layout PR, edges are labelled with interned
//! [`Sym`]s from the pipeline's shared [`Interner`] rather than owned
//! `String`s: the scan walks the trie with integer compares against
//! symbols the ingest step already produced, so the per-token
//! `to_lowercase()` allocation the old scan paid is gone entirely. The
//! string-facing entry points (`insert`/`remove`/`contains`/`child`) take
//! the interner and fold through it with `str::to_lowercase()` semantics,
//! exactly as before.

use emd_text::intern::{Interner, Sym};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Node id inside the trie arena. The root is [`CTrie::ROOT`].
pub type NodeId = u32;

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Node {
    children: HashMap<Sym, NodeId>,
    /// True when the path from the root to this node spells a registered
    /// candidate.
    terminal: bool,
}

/// Case-insensitive token-level prefix trie forest.
///
/// Supports removal: pruning a low-frequency cold candidate unmarks its
/// terminal and frees any now-childless path nodes onto a free-list that
/// later insertions reuse, so a long-running stream's trie arena tracks the
/// *live* candidate set instead of growing monotonically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CTrie {
    nodes: Vec<Node>,
    n_candidates: usize,
    /// Arena slots freed by [`CTrie::remove`], reused by later inserts.
    free: Vec<NodeId>,
}

impl Default for CTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl CTrie {
    /// Root node id.
    pub const ROOT: NodeId = 0;

    /// Empty trie.
    pub fn new() -> CTrie {
        CTrie {
            nodes: vec![Node::default()],
            n_candidates: 0,
            free: Vec::new(),
        }
    }

    /// Insert a candidate given its tokens (any casing), interning each
    /// folded token. Returns `true` if the candidate was new.
    pub fn insert<S: AsRef<str>>(&mut self, interner: &mut Interner, tokens: &[S]) -> bool {
        if tokens.is_empty() {
            return false;
        }
        let mut node = Self::ROOT;
        for t in tokens {
            let key = interner.intern_folded(t.as_ref());
            node = self.child_or_insert(node, key);
        }
        let node = &mut self.nodes[node as usize];
        if node.terminal {
            false
        } else {
            node.terminal = true;
            self.n_candidates += 1;
            true
        }
    }

    /// Insert a candidate given its already-folded symbols. Returns `true`
    /// if the candidate was new.
    pub fn insert_syms(&mut self, syms: &[Sym]) -> bool {
        if syms.is_empty() {
            return false;
        }
        let mut node = Self::ROOT;
        for &key in syms {
            node = self.child_or_insert(node, key);
        }
        let node = &mut self.nodes[node as usize];
        if node.terminal {
            false
        } else {
            node.terminal = true;
            self.n_candidates += 1;
            true
        }
    }

    /// Follow the edge `key` from `node`, creating it (reusing a freed
    /// arena slot when one exists) if absent.
    fn child_or_insert(&mut self, node: NodeId, key: Sym) -> NodeId {
        match self.nodes[node as usize].children.get(&key) {
            Some(&id) => id,
            None => {
                // Reuse a slot freed by `remove` before growing the arena
                // (freed nodes are reset to default on removal).
                let id = match self.free.pop() {
                    Some(id) => id,
                    None => {
                        let id = self.nodes.len() as NodeId;
                        self.nodes.push(Node::default());
                        id
                    }
                };
                self.nodes[node as usize].children.insert(key, id);
                id
            }
        }
    }

    /// Remove a registered candidate. Unmarks the terminal and frees every
    /// now-childless, non-terminal node on the path (bottom-up) onto the
    /// free-list. Returns `true` when the candidate was present. Paths
    /// shared with other candidates (prefixes or extensions) are left
    /// intact.
    pub fn remove<S: AsRef<str>>(&mut self, interner: &Interner, tokens: &[S]) -> bool {
        if tokens.is_empty() {
            return false;
        }
        // A token the interner has never seen cannot label any edge.
        let mut syms = Vec::with_capacity(tokens.len());
        for t in tokens {
            match interner.lookup_folded(t.as_ref()) {
                Some(s) => syms.push(s),
                None => return false,
            }
        }
        self.remove_syms(&syms)
    }

    /// [`CTrie::remove`] by already-folded symbols.
    pub fn remove_syms(&mut self, syms: &[Sym]) -> bool {
        if syms.is_empty() {
            return false;
        }
        // Walk down, recording (parent, key, child) per step.
        let mut path: Vec<(NodeId, Sym, NodeId)> = Vec::with_capacity(syms.len());
        let mut node = Self::ROOT;
        for &key in syms {
            match self.nodes[node as usize].children.get(&key) {
                Some(&id) => {
                    path.push((node, key, id));
                    node = id;
                }
                None => return false,
            }
        }
        if !self.nodes[node as usize].terminal {
            return false;
        }
        self.nodes[node as usize].terminal = false;
        self.n_candidates -= 1;
        // Prune childless non-terminal nodes bottom-up; stop at the first
        // node still needed (terminal, or carrying other candidates below).
        for (parent, key, child) in path.into_iter().rev() {
            let n = &self.nodes[child as usize];
            if n.terminal || !n.children.is_empty() {
                break;
            }
            self.nodes[parent as usize].children.remove(&key);
            self.nodes[child as usize] = Node::default();
            self.free.push(child);
        }
        true
    }

    /// Follow the edge labelled `sym` — the allocation-free hot-path step
    /// the occurrence scan uses (sentence tokens are interned at ingest).
    #[inline]
    pub fn child_sym(&self, node: NodeId, sym: Sym) -> Option<NodeId> {
        self.nodes[node as usize].children.get(&sym).copied()
    }

    /// Follow the edge labelled with the lower-cased form of `token`.
    ///
    /// Folding goes through [`Interner::lookup_folded`], which preserves
    /// the historical `str::to_lowercase()` key scheme: some non-ASCII
    /// characters (e.g. "ß") do not fold to the same key as their
    /// uppercase spelling ("SS" → "ss"), and the interner keeps them
    /// distinct just as the old String-keyed edges did.
    pub fn child(&self, interner: &Interner, node: NodeId, token: &str) -> Option<NodeId> {
        let sym = interner.lookup_folded(token)?;
        self.child_sym(node, sym)
    }

    /// Does the path ending at `node` spell a candidate?
    pub fn is_terminal(&self, node: NodeId) -> bool {
        self.nodes[node as usize].terminal
    }

    /// Is the full token sequence a registered candidate?
    pub fn contains<S: AsRef<str>>(&self, interner: &Interner, tokens: &[S]) -> bool {
        let mut node = Self::ROOT;
        for t in tokens {
            match self.child(interner, node, t.as_ref()) {
                Some(n) => node = n,
                None => return false,
            }
        }
        node != Self::ROOT && self.is_terminal(node)
    }

    /// Number of registered candidates.
    pub fn len(&self) -> usize {
        self.n_candidates
    }

    /// True when no candidates are registered.
    pub fn is_empty(&self) -> bool {
        self.n_candidates == 0
    }

    /// Number of live trie nodes (diagnostics / memory accounting; freed
    /// slots awaiting reuse are not counted).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Enumerate all candidates as lower-cased token vectors (test &
    /// diagnostics helper; not on the hot path).
    pub fn candidates(&self, interner: &Interner) -> Vec<Vec<String>> {
        let mut out = Vec::with_capacity(self.n_candidates);
        let mut stack: Vec<(NodeId, Vec<String>)> = vec![(Self::ROOT, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            let n = &self.nodes[node as usize];
            if n.terminal {
                out.push(path.clone());
            }
            for (&tok, &child) in &n.children {
                let mut p = path.clone();
                p.push(interner.resolve(tok).to_string());
                stack.push((child, p));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_case_insensitive() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        assert!(t.insert(&mut it, &["Andy", "Beshear"]));
        assert!(t.contains(&it, &["andy", "beshear"]));
        assert!(t.contains(&it, &["ANDY", "BESHEAR"]));
        assert!(!t.contains(&it, &["andy"]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_insert_returns_false() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        assert!(t.insert(&mut it, &["covid"]));
        assert!(!t.insert(&mut it, &["COVID"]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prefix_is_not_candidate_unless_inserted() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["world", "health", "organization"]);
        assert!(!t.contains(&it, &["world"]));
        assert!(!t.contains(&it, &["world", "health"]));
        t.insert(&mut it, &["world", "health"]);
        assert!(t.contains(&it, &["world", "health"]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["andy", "beshear"]);
        t.insert(&mut it, &["andy", "murray"]);
        // root + andy + beshear + murray = 4 nodes
        assert_eq!(t.n_nodes(), 4);
    }

    #[test]
    fn traversal_api() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["new", "york", "city"]);
        let n1 = t.child(&it, CTrie::ROOT, "New").unwrap();
        assert!(!t.is_terminal(n1));
        let n2 = t.child(&it, n1, "YORK").unwrap();
        let n3 = t.child(&it, n2, "city").unwrap();
        assert!(t.is_terminal(n3));
        assert!(t.child(&it, n1, "jersey").is_none());
        // Symbol-level traversal agrees with the string-level one.
        let york = it.lookup_folded("york").unwrap();
        assert_eq!(t.child_sym(n1, york), Some(n2));
    }

    #[test]
    fn child_fast_path_matches_slow_path() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["straße", "café"]);
        t.insert(&mut it, &["covid"]);
        // Lowercase ASCII (fast path), mixed-case ASCII and non-ASCII
        // (slow path) must agree on every edge.
        assert!(t.child(&it, CTrie::ROOT, "covid").is_some());
        assert!(t.child(&it, CTrie::ROOT, "COVID").is_some());
        assert!(t.child(&it, CTrie::ROOT, "CoViD").is_some());
        let n = t.child(&it, CTrie::ROOT, "STRASSE");
        // "STRASSE".to_lowercase() is "strasse", a different key than
        // "straße" — both paths must agree that it misses.
        assert!(n.is_none());
        let n = t.child(&it, CTrie::ROOT, "straße").unwrap();
        assert!(t.child(&it, n, "CAFÉ").is_some());
        assert!(t.child(&it, n, "café").is_some());
        assert!(t.child(&it, CTrie::ROOT, "missing").is_none());
    }

    #[test]
    fn empty_insert_rejected() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        assert!(!t.insert::<&str>(&mut it, &[]));
        assert!(!t.insert_syms(&[]));
        assert!(t.is_empty());
    }

    #[test]
    fn remove_prunes_exclusive_path() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["world", "health", "organization"]);
        assert_eq!(t.n_nodes(), 4);
        assert!(t.remove(&it, &["World", "Health", "Organization"]));
        assert!(!t.contains(&it, &["world", "health", "organization"]));
        assert_eq!(t.len(), 0);
        assert_eq!(t.n_nodes(), 1, "exclusive path fully pruned");
        // Removing again is a no-op, as is removing unknown vocabulary.
        assert!(!t.remove(&it, &["world", "health", "organization"]));
        assert!(!t.remove(&it, &["never", "interned"]));
    }

    #[test]
    fn remove_keeps_shared_prefixes_and_extensions() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["andy", "beshear"]);
        t.insert(&mut it, &["andy", "murray"]);
        t.insert(&mut it, &["andy"]);
        assert!(t.remove(&it, &["andy", "beshear"]));
        assert!(t.contains(&it, &["andy", "murray"]));
        assert!(t.contains(&it, &["andy"]));
        assert_eq!(t.len(), 2);
        // Removing a terminal that still has children keeps the node.
        assert!(t.remove(&it, &["andy"]));
        assert!(t.contains(&it, &["andy", "murray"]));
        assert!(!t.contains(&it, &["andy"]));
        // A prefix that was never inserted cannot be removed.
        assert!(!t.remove(&it, &["andy"]));
    }

    #[test]
    fn freed_nodes_are_reused_by_insert() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["alpha", "beta"]);
        let peak = t.n_nodes();
        t.remove(&it, &["alpha", "beta"]);
        assert_eq!(t.n_nodes(), 1);
        t.insert(&mut it, &["gamma", "delta"]);
        assert_eq!(
            t.n_nodes(),
            peak,
            "arena reuses freed slots instead of growing"
        );
        assert!(t.contains(&it, &["gamma", "delta"]));
    }

    #[test]
    fn sym_level_insert_matches_string_level() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        let syms = vec![it.intern_folded("New"), it.intern_folded("York")];
        assert!(t.insert_syms(&syms));
        assert!(t.contains(&it, &["new", "york"]));
        assert!(!t.insert(&mut it, &["NEW", "YORK"]), "same candidate");
        assert!(t.remove_syms(&syms));
        assert!(t.is_empty());
    }

    #[test]
    fn enumerate_candidates() {
        let mut it = Interner::new();
        let mut t = CTrie::new();
        t.insert(&mut it, &["Italy"]);
        t.insert(&mut it, &["Andy", "Beshear"]);
        let mut cands = t.candidates(&it);
        cands.sort();
        assert_eq!(
            cands,
            vec![
                vec!["andy".to_string(), "beshear".to_string()],
                vec!["italy".to_string()]
            ]
        );
    }
}
