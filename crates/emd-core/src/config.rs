//! Framework configuration.

use serde::{Deserialize, Serialize};

/// Which portion of the pipeline to run — the ablation modes of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ablation {
    /// Local EMD only (bottom curve).
    LocalOnly,
    /// Local EMD + candidate mention extraction, no classifier (middle
    /// curve): all mentions of all seed candidates are emitted.
    MentionExtraction,
    /// The full framework (top curve).
    Full,
}

/// How per-mention local embeddings pool into the global candidate
/// embedding. The paper uses the mean ("average pooling"); max pooling is
/// provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Arithmetic mean over mentions (the paper's choice).
    Mean,
    /// Coordinate-wise maximum over mentions.
    Max,
}

/// Bounded-memory streaming policy: a sliding window over the sentence
/// store plus frequency-decay pruning of the candidate pool. Disabled by
/// default (`max_sentences: 0`), preserving the unbounded semantics every
/// offline experiment uses; 24/7 deployments set a window so resident
/// state tracks the live window instead of the whole stream (the paper's
/// Figure 7 shows old low-frequency candidates stop contributing to
/// global-embedding quality — the license to forget them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Maximum live sentences retained; the oldest records beyond this are
    /// evicted (record, posting-list entries, and token embeddings) after
    /// every batch. `0` disables windowing entirely.
    pub max_sentences: usize,
    /// Frequency-decay candidate pruning: a candidate is dropped — with
    /// its CTrie path — once *all* of its mentions have been evicted, it
    /// holds no Entity verdict, and its mention frequency is at most this
    /// value. `0` disables pruning. Ignored unless `max_sentences > 0`.
    pub prune_max_frequency: usize,
    /// Dirty-eviction settling: when true (default), a record still in the
    /// dirty set is rescanned one last time before eviction so mentions of
    /// candidates registered after the record's batch still reach the
    /// pool. Turning this off trades a little recall on evicted sentences
    /// for less finalize-style work per batch.
    pub settle_before_evict: bool,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            max_sentences: 0,
            prune_max_frequency: 2,
            settle_before_evict: true,
        }
    }
}

impl WindowConfig {
    /// A sliding window of `max_sentences` with the default pruning knobs.
    pub fn sliding(max_sentences: usize) -> WindowConfig {
        WindowConfig {
            max_sentences,
            ..Default::default()
        }
    }

    /// Is windowed eviction enabled?
    pub fn enabled(&self) -> bool {
        self.max_sentences > 0
    }
}

/// Globalizer hyperparameters (§V-C values as defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalizerConfig {
    /// α: candidates scoring `≥ alpha` are confidently entities.
    pub alpha: f32,
    /// β: candidates scoring `≤ beta` are confidently non-entities.
    pub beta: f32,
    /// End-of-stream resolution threshold for candidates still in the
    /// ambiguous γ band (see DESIGN.md).
    pub final_threshold: f32,
    /// Maximum candidate length in tokens (the `k` of §V-A).
    pub max_candidate_len: usize,
    /// Pipeline ablation mode.
    pub ablation: Ablation,
    /// Global-embedding pooling strategy.
    pub pooling: Pooling,
    /// End-of-stream γ resolution: when true (default), a still-ambiguous
    /// candidate falls back to the local system's judgment (accepted iff
    /// the local system detected at least half of its mentions); when
    /// false, the bare `final_threshold` decides.
    pub trust_local_fallback: bool,
    /// Adjacent-candidate promotion support at stream close: when two
    /// candidates are extracted adjacent to each other at least this many
    /// times — and in at least half the occurrences of the rarer of the
    /// two — the concatenation is promoted to a candidate of its own and
    /// the affected sentences are rescanned. Recovers multi-token entities
    /// the local system only ever detects in fragments. `0` disables.
    pub promotion_support: usize,
    /// Poison-message retry budget: how many times a panicking per-item
    /// unit of work (one sentence's local inference or ingest, one
    /// record's rescan, one candidate's classification) is retried before
    /// the item is quarantined (sentences) or marked degraded
    /// (candidates). Total attempts per item = `poison_retries + 1`.
    pub poison_retries: usize,
    /// Bounded-memory streaming policy (sliding window + candidate
    /// pruning). Default: unbounded.
    pub window: WindowConfig,
}

impl Default for GlobalizerConfig {
    fn default() -> Self {
        GlobalizerConfig {
            alpha: 0.55,
            beta: 0.40,
            final_threshold: 0.5,
            max_candidate_len: 6,
            ablation: Ablation::Full,
            pooling: Pooling::Mean,
            trust_local_fallback: true,
            promotion_support: 3,
            poison_retries: 1,
            window: WindowConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GlobalizerConfig::default();
        assert_eq!(c.alpha, 0.55);
        assert_eq!(c.beta, 0.40);
        assert_eq!(c.ablation, Ablation::Full);
        assert_eq!(c.pooling, Pooling::Mean);
        assert!(c.trust_local_fallback);
        assert!(c.beta < c.final_threshold && c.final_threshold < c.alpha);
        assert!(!c.window.enabled(), "default is the unbounded regime");
    }

    #[test]
    fn window_config_knobs() {
        let w = WindowConfig::sliding(1000);
        assert!(w.enabled());
        assert_eq!(w.max_sentences, 1000);
        assert_eq!(w.prune_max_frequency, 2);
        assert!(w.settle_before_evict);
        assert!(!WindowConfig::default().enabled());
    }
}
