//! Framework configuration.

use serde::{Deserialize, Serialize};

/// Which portion of the pipeline to run — the ablation modes of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ablation {
    /// Local EMD only (bottom curve).
    LocalOnly,
    /// Local EMD + candidate mention extraction, no classifier (middle
    /// curve): all mentions of all seed candidates are emitted.
    MentionExtraction,
    /// The full framework (top curve).
    Full,
}

/// How per-mention local embeddings pool into the global candidate
/// embedding. The paper uses the mean ("average pooling"); max pooling is
/// provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Arithmetic mean over mentions (the paper's choice).
    Mean,
    /// Coordinate-wise maximum over mentions.
    Max,
}

/// Globalizer hyperparameters (§V-C values as defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalizerConfig {
    /// α: candidates scoring `≥ alpha` are confidently entities.
    pub alpha: f32,
    /// β: candidates scoring `≤ beta` are confidently non-entities.
    pub beta: f32,
    /// End-of-stream resolution threshold for candidates still in the
    /// ambiguous γ band (see DESIGN.md).
    pub final_threshold: f32,
    /// Maximum candidate length in tokens (the `k` of §V-A).
    pub max_candidate_len: usize,
    /// Pipeline ablation mode.
    pub ablation: Ablation,
    /// Global-embedding pooling strategy.
    pub pooling: Pooling,
    /// End-of-stream γ resolution: when true (default), a still-ambiguous
    /// candidate falls back to the local system's judgment (accepted iff
    /// the local system detected at least half of its mentions); when
    /// false, the bare `final_threshold` decides.
    pub trust_local_fallback: bool,
    /// Adjacent-candidate promotion support at stream close: when two
    /// candidates are extracted adjacent to each other at least this many
    /// times — and in at least half the occurrences of the rarer of the
    /// two — the concatenation is promoted to a candidate of its own and
    /// the affected sentences are rescanned. Recovers multi-token entities
    /// the local system only ever detects in fragments. `0` disables.
    pub promotion_support: usize,
    /// Poison-message retry budget: how many times a panicking per-item
    /// unit of work (one sentence's local inference or ingest, one
    /// record's rescan, one candidate's classification) is retried before
    /// the item is quarantined (sentences) or marked degraded
    /// (candidates). Total attempts per item = `poison_retries + 1`.
    pub poison_retries: usize,
}

impl Default for GlobalizerConfig {
    fn default() -> Self {
        GlobalizerConfig {
            alpha: 0.55,
            beta: 0.40,
            final_threshold: 0.5,
            max_candidate_len: 6,
            ablation: Ablation::Full,
            pooling: Pooling::Mean,
            trust_local_fallback: true,
            promotion_support: 3,
            poison_retries: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GlobalizerConfig::default();
        assert_eq!(c.alpha, 0.55);
        assert_eq!(c.beta, 0.40);
        assert_eq!(c.ablation, Ablation::Full);
        assert_eq!(c.pooling, Pooling::Mean);
        assert!(c.trust_local_fallback);
        assert!(c.beta < c.final_threshold && c.final_threshold < c.alpha);
    }
}
