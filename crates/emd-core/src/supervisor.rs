//! StreamSupervisor: a crash-recoverable, overload-aware batch driver
//! for unattended streaming runs.
//!
//! The supervisor wraps [`Globalizer`] batch processing with four
//! guarantees:
//!
//! 1. **Transactional batches** — each batch runs against a clone of the
//!    pipeline state inside a panic-isolation boundary; a batch-level
//!    fault (beyond what the per-item isolation inside the pipeline
//!    already absorbs) discards the partial clone and retries from the
//!    pre-batch state. Retries back off exponentially with deterministic
//!    seeded jitter ([`BackoffPolicy`]), and every delay is *charged*
//!    against the optional per-batch deadline budget whether or not the
//!    process actually sleeps — an exhausted budget stops retrying even
//!    when attempts remain. A batch that exhausts either budget is
//!    diverted whole into the dead-letter buffer (and, when
//!    checkpointing, appended to the `.deadletter.jsonl` sibling for
//!    operator replay) instead of killing the stream.
//! 2. **Admission control** ([`StreamSupervisor::run_queued`]) — arriving
//!    batches pass a bounded [`AdmissionQueue`] with an overload policy
//!    (reject-new, drop-oldest, shed-to-local-only) before any pipeline
//!    work is spent on them. Shed batches are fully accounted: quarantine
//!    entries, `BatchShed` trace events, dead-letter records, and — for
//!    `ShedToLocalOnly` — the cheap local-only answer on
//!    [`RunReport::local_only_output`].
//! 3. **Checkpointing** — every `checkpoint_every` serviced batches (and
//!    after the final one) the full [`GlobalizerState`] is snapshotted to
//!    a versioned, checksummed file ([`emd_resilience::checkpoint`]) with
//!    an atomic rename. With `checkpoint_generations > 1` the previous
//!    snapshots rotate into a retained ladder (`<path>.1`, `<path>.2`,
//!    ...), so *several* independent torn writes must land before the
//!    stream loses its recovery point.
//! 4. **Recovery** — on startup the restore walks the generation ladder
//!    newest-first ([`checkpoint::load_chain`]): corrupt generations are
//!    discarded *with their reasons kept* and the newest intact one
//!    restores (a `CheckpointFallback` trace event records the fall).
//!    Only the stream suffix after the restored sequence number replays.
//!    Because batch processing is deterministic, a recovered run's final
//!    output is bit-identical to an uninterrupted one.

use crate::globalizer::{Globalizer, GlobalizerOutput, GlobalizerState};
use emd_guard::{
    AdmissionConfig, AdmissionQueue, BackoffPolicy, BreakerTransition, OverloadPolicy,
};
use emd_obs::Timer;
use emd_resilience::checkpoint::{self, CheckpointError};
use emd_resilience::deadletter::{self, DeadLetterRecord};
use emd_resilience::quarantine::{PipelinePhase, QuarantineEntry};
use emd_resilience::{failpoint, isolate};
use emd_text::token::{Sentence, SentenceId, Span};
use emd_trace::{TraceEvent, TraceEventKind, TracePhase, TraceSink};
use std::path::PathBuf;

/// Hard ceiling on `batch_retries`: a budget past this is a typo, not a
/// policy (2^64 backoff delays overflow any deadline long before).
pub const MAX_BATCH_RETRIES: usize = 64;

/// Supervisor policy knobs. Validate with
/// [`SupervisorConfig::validate`]; [`StreamSupervisor::try_new`] rejects
/// invalid configs with a typed [`SupervisorConfigError`] instead of
/// silently clamping at run time.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Where to persist checkpoints. `None` disables checkpointing (the
    /// supervisor still gives transactional batches and retry).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many serviced batches (the final
    /// batch always checkpoints). Must be ≥ 1.
    pub checkpoint_every: usize,
    /// Checkpoint generations retained on disk (≥ 1). `1` keeps only the
    /// live file (the pre-ladder behaviour); `k > 1` rotates previous
    /// snapshots to `<path>.1` … `<path>.k-1`, and restore falls back
    /// down the ladder past corrupt generations.
    pub checkpoint_generations: usize,
    /// Sentences per batch. Must be ≥ 1.
    pub batch_size: usize,
    /// How many times a batch whose processing panicked at the batch
    /// level is retried before the whole batch is dead-lettered. At most
    /// [`MAX_BATCH_RETRIES`].
    pub batch_retries: usize,
    /// Backoff schedule between batch retry attempts. Delays are always
    /// charged against `batch_deadline_ns`; they are slept only when
    /// `sleep_backoff` is set. [`BackoffPolicy::none`] restores immediate
    /// retry.
    pub backoff: BackoffPolicy,
    /// Optional per-batch retry deadline: once the charged backoff
    /// delays exceed this budget, the batch is dead-lettered with a
    /// "deadline exceeded" reason even if attempts remain. Must be
    /// nonzero when set.
    pub batch_deadline_ns: Option<u64>,
    /// Actually sleep the backoff delays (live deployments). Off by
    /// default so tests and replays stay fast and deterministic — the
    /// *accounting* is identical either way.
    pub sleep_backoff: bool,
    /// Admission-gate configuration for [`StreamSupervisor::run_queued`].
    /// Ignored by [`StreamSupervisor::run`].
    pub admission: AdmissionConfig,
    /// Persist dead-lettered and shed batches as JSONL next to the
    /// checkpoint (`<path>.deadletter.jsonl`) for operator replay.
    /// No-op when `checkpoint_path` is `None`.
    pub dead_letter_file: bool,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            checkpoint_path: None,
            checkpoint_every: 4,
            checkpoint_generations: 1,
            batch_size: 512,
            batch_retries: 1,
            backoff: BackoffPolicy::default(),
            batch_deadline_ns: None,
            sleep_backoff: false,
            admission: AdmissionConfig::default(),
            dead_letter_file: true,
        }
    }
}

/// Why a [`SupervisorConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorConfigError {
    /// `checkpoint_every` was 0 (a cadence of "never" is spelled
    /// `checkpoint_path: None`, not 0).
    ZeroCheckpointEvery,
    /// `checkpoint_generations` was 0 (the live file is generation 0 and
    /// always exists; "no ladder" is 1).
    ZeroCheckpointGenerations,
    /// `batch_size` was 0.
    ZeroBatchSize,
    /// `batch_retries` exceeded [`MAX_BATCH_RETRIES`].
    ExcessiveBatchRetries(usize),
    /// `batch_deadline_ns` was `Some(0)` — a zero budget dead-letters
    /// every retried batch; spell "no retries" as `batch_retries: 0`.
    ZeroBatchDeadline,
    /// The backoff policy failed its own validation.
    Backoff(String),
    /// The admission config failed its own validation.
    Admission(String),
}

impl std::fmt::Display for SupervisorConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorConfigError::ZeroCheckpointEvery => {
                write!(
                    f,
                    "checkpoint_every must be >= 1 (disable with checkpoint_path: None)"
                )
            }
            SupervisorConfigError::ZeroCheckpointGenerations => {
                write!(f, "checkpoint_generations must be >= 1")
            }
            SupervisorConfigError::ZeroBatchSize => write!(f, "batch_size must be >= 1"),
            SupervisorConfigError::ExcessiveBatchRetries(n) => {
                write!(
                    f,
                    "batch_retries {n} exceeds the {MAX_BATCH_RETRIES} ceiling"
                )
            }
            SupervisorConfigError::ZeroBatchDeadline => {
                write!(f, "batch_deadline_ns must be nonzero when set")
            }
            SupervisorConfigError::Backoff(e) => write!(f, "invalid backoff policy: {e}"),
            SupervisorConfigError::Admission(e) => write!(f, "invalid admission config: {e}"),
        }
    }
}

impl std::error::Error for SupervisorConfigError {}

impl SupervisorConfig {
    /// Reject nonsensical parameter combinations with a typed error —
    /// construction-time validation replaces the old silent `.max(1)`
    /// clamping inside `run`.
    pub fn validate(&self) -> Result<(), SupervisorConfigError> {
        if self.checkpoint_every == 0 {
            return Err(SupervisorConfigError::ZeroCheckpointEvery);
        }
        if self.checkpoint_generations == 0 {
            return Err(SupervisorConfigError::ZeroCheckpointGenerations);
        }
        if self.batch_size == 0 {
            return Err(SupervisorConfigError::ZeroBatchSize);
        }
        if self.batch_retries > MAX_BATCH_RETRIES {
            return Err(SupervisorConfigError::ExcessiveBatchRetries(
                self.batch_retries,
            ));
        }
        if self.batch_deadline_ns == Some(0) {
            return Err(SupervisorConfigError::ZeroBatchDeadline);
        }
        self.backoff
            .validate()
            .map_err(SupervisorConfigError::Backoff)?;
        self.admission
            .validate()
            .map_err(SupervisorConfigError::Admission)?;
        Ok(())
    }
}

/// What a supervised run did, alongside the pipeline output.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The final pipeline output (bit-identical to an unsupervised,
    /// uninterrupted run over the same stream, modulo dead-lettered and
    /// shed batches).
    pub output: GlobalizerOutput,
    /// Total batches in the stream.
    pub batches_total: usize,
    /// Batches processed in this run (the replayed suffix).
    pub batches_processed: usize,
    /// Batches skipped because a checkpoint already covered them.
    pub batches_skipped: usize,
    /// Batch-level retry attempts performed.
    pub batches_retried: usize,
    /// Batches that exhausted the retry budget and were dead-lettered.
    pub batches_dead_lettered: usize,
    /// Batches dead-lettered because their charged backoff delays
    /// exceeded `batch_deadline_ns` (a subset of
    /// `batches_dead_lettered`).
    pub batches_deadline_exceeded: usize,
    /// Batches shed by the admission gate ([`StreamSupervisor::run_queued`]
    /// only; always 0 under [`StreamSupervisor::run`]).
    pub batches_shed: usize,
    /// Records appended to the dead-letter JSONL file this run.
    pub dead_letter_records: usize,
    /// Checkpoints successfully written.
    pub checkpoints_written: usize,
    /// Checkpoint writes that failed (the run continues; the previous
    /// checkpoint stays valid thanks to the atomic rename).
    pub checkpoint_write_failures: usize,
    /// True when the run resumed from a valid checkpoint (any
    /// generation).
    pub resumed_from_checkpoint: bool,
    /// Generation the run restored from: 0 = the live file, `k` = the
    /// k-th fallback down the retained ladder. 0 when not resumed.
    pub checkpoint_generation: usize,
    /// Corrupt checkpoint generations discarded during restore.
    pub checkpoint_fallbacks: usize,
    /// True when at least one checkpoint generation was corrupt (bad
    /// magic, bad version, checksum mismatch, undecodable payload) and
    /// was discarded during restore.
    pub discarded_corrupt_checkpoint: bool,
    /// Why the newest discarded generation was discarded, when any was —
    /// the restore path must never silently swallow the error an
    /// operator needs to distinguish "disk corruption" from
    /// "incompatible build".
    pub checkpoint_discard_reason: Option<String>,
    /// The degraded local-only answers produced for batches shed under
    /// [`OverloadPolicy::ShedToLocalOnly`], in shed order.
    pub local_only_output: Vec<(SentenceId, Vec<Span>)>,
    /// Every circuit-breaker transition the globalizer's attached guard
    /// took during the run, in order (empty when unguarded). Mirrors
    /// `emd_trace::audit::replay_guard` over the trace.
    pub breaker_transitions: Vec<(TracePhase, BreakerTransition)>,
    /// Trace events flushed from the globalizer's sink, in sequence
    /// order, when `emd_trace::enabled()` during the run (empty
    /// otherwise). The sink is drained at every batch boundary —
    /// committed batches only: a retried attempt's partial events are
    /// discarded and their sequence numbers re-issued to the retry, and a
    /// run restored from a checkpoint continues the interrupted run's
    /// numbering (`GlobalizerState` carries the committed high-water
    /// mark). Point the globalizer at a private sink
    /// ([`Globalizer::set_trace`]) to keep unrelated events out.
    pub trace_events: Vec<TraceEvent>,
    /// End-of-run health summary from the globalizer's attached quality
    /// sentinel ([`Globalizer::set_sentinel`]); `None` when the run was
    /// unmonitored. Transitions here are reproducible from the trace log
    /// alone via `emd_trace::audit::replay_health`.
    pub health: Option<emd_sentinel::HealthReport>,
}

/// Mutable bookkeeping threaded through one run's service loop.
#[derive(Default)]
struct ServiceCtx {
    batches_retried: usize,
    batches_dead_lettered: usize,
    batches_deadline_exceeded: usize,
    batches_shed: usize,
    dead_letter_records: usize,
    checkpoints_written: usize,
    checkpoint_write_failures: usize,
    local_only_output: Vec<(SentenceId, Vec<Span>)>,
    trace_events: Vec<TraceEvent>,
}

/// Crash-recoverable batch driver over a [`Globalizer`].
pub struct StreamSupervisor<'g, 'a> {
    globalizer: &'g Globalizer<'a>,
    /// Supervisor policy.
    pub config: SupervisorConfig,
}

impl<'g, 'a> StreamSupervisor<'g, 'a> {
    /// Wrap a globalizer with supervision policy. Panics on an invalid
    /// config; use [`StreamSupervisor::try_new`] for the fallible form.
    pub fn new(
        globalizer: &'g Globalizer<'a>,
        config: SupervisorConfig,
    ) -> StreamSupervisor<'g, 'a> {
        match Self::try_new(globalizer, config) {
            Ok(s) => s,
            Err(e) => panic!("invalid supervisor config: {e}"),
        }
    }

    /// Fallible constructor: rejects an invalid config with the typed
    /// reason instead of clamping it.
    pub fn try_new(
        globalizer: &'g Globalizer<'a>,
        config: SupervisorConfig,
    ) -> Result<StreamSupervisor<'g, 'a>, SupervisorConfigError> {
        config.validate()?;
        Ok(StreamSupervisor { globalizer, config })
    }

    /// Restore state from the configured checkpoint ladder, or start
    /// fresh. Returns `(state, batches_already_completed, resumed,
    /// generation restored from, discards)` — corrupt generations are
    /// walked past with their reasons kept, and a fully corrupt ladder
    /// falls back to a fresh start rather than trusting damaged state.
    fn restore_or_fresh(
        &self,
    ) -> (
        GlobalizerState,
        usize,
        bool,
        usize,
        Vec<checkpoint::GenerationDiscard>,
    ) {
        let Some(path) = &self.config.checkpoint_path else {
            return (self.globalizer.new_state(), 0, false, 0, Vec::new());
        };
        let m = self.globalizer.metrics();
        let keep = self.config.checkpoint_generations;
        let (restored, discards) = {
            let _t = Timer::start(&m.checkpoint_restore_ns);
            if keep > 1 {
                checkpoint::load_chain::<GlobalizerState>(path, keep)
            } else {
                match checkpoint::load::<GlobalizerState>(path) {
                    Ok((seq, state)) => (Some((seq, state, 0)), Vec::new()),
                    Err(CheckpointError::NotFound) => (None, Vec::new()),
                    Err(e) => (
                        None,
                        vec![checkpoint::GenerationDiscard {
                            generation: 0,
                            path: path.clone(),
                            reason: e.to_string(),
                        }],
                    ),
                }
            }
        };
        m.checkpoint_fallbacks_total.add(discards.len() as u64);
        match restored {
            Some((seq, state, generation)) => (state, seq as usize, true, generation, discards),
            None => (self.globalizer.new_state(), 0, false, 0, discards),
        }
    }

    /// Push one supervisor-level trace event, keeping the meta-counters
    /// in step with [`Globalizer`]'s own emission.
    fn temit(&self, ev: TraceEvent) -> Option<u64> {
        let m = self.globalizer.metrics();
        match self.globalizer.trace().push(ev) {
            Some(seq) => {
                m.trace_events_total.inc();
                Some(seq)
            }
            None => {
                m.trace_dropped_events_total.inc();
                None
            }
        }
    }

    /// Append one record to the dead-letter JSONL sibling of the
    /// checkpoint, when configured. Best-effort: an append failure is
    /// not a reason to kill a stream that just survived a fault.
    fn dead_letter_persist(
        &self,
        ctx: &mut ServiceCtx,
        batch_seq: u64,
        reason: &str,
        sentences: &[Sentence],
    ) {
        if !self.config.dead_letter_file {
            return;
        }
        let Some(ckpt) = &self.config.checkpoint_path else {
            return;
        };
        let rec = DeadLetterRecord {
            batch_seq,
            reason: reason.to_string(),
            sentences: sentences.to_vec(),
        };
        if deadletter::append(&deadletter::deadletter_path(ckpt), &rec).is_ok() {
            ctx.dead_letter_records += 1;
            self.globalizer.metrics().deadletter_records_total.inc();
        }
    }

    /// Divert every sentence of a failed or shed batch into the
    /// quarantine buffer (and the trace).
    fn quarantine_batch(
        &self,
        state: &mut GlobalizerState,
        batch: &[Sentence],
        phase: PipelinePhase,
        reason: &str,
        tracing: bool,
    ) {
        let m = self.globalizer.metrics();
        for s in batch.iter() {
            m.quarantined_total.inc();
            let trace_event = if tracing {
                self.temit(TraceEvent {
                    sid: Some((s.id.tweet_id, s.id.sent_id)),
                    phase: Some(TracePhase::Supervisor),
                    reason: Some(reason.to_string()),
                    ..TraceEvent::of(TraceEventKind::SentenceQuarantined)
                })
            } else {
                None
            };
            state.quarantined.push(QuarantineEntry {
                sid: s.id,
                phase,
                reason: reason.to_string(),
                trace_event,
            });
        }
    }

    /// Service one batch transactionally: clone-isolated attempts with
    /// backoff between them, deadline-budgeted, dead-lettering the whole
    /// batch when either budget runs dry. `batch_index` salts the
    /// backoff jitter so concurrent streams don't retry in lockstep.
    fn service_batch(
        &self,
        state: &mut GlobalizerState,
        batch: &[Sentence],
        batch_index: usize,
        sink: &TraceSink,
        tracing: bool,
        ctx: &mut ServiceCtx,
    ) {
        let m = self.globalizer.metrics();
        // Everything the sink accumulates during an attempt belongs to
        // that attempt; a failed attempt's events are discarded and their
        // sequence numbers re-issued, so the committed trace is identical
        // whether or not retries happened.
        let seq0 = sink.next_seq();
        let mut spent_ns: u64 = 0;
        let mut deadline_hit = false;
        let mut granted = 0usize;
        let r = isolate::retry_catch_with(
            self.config.batch_retries + 1,
            || {
                // Each attempt starts from a clean trace frame (no-op on
                // the first — nothing is buffered past seq0 yet) and a
                // clone of the pre-batch state, so a batch-level panic
                // discards the partial work entirely.
                if tracing {
                    let _ = sink.drain();
                    sink.set_next_seq(seq0);
                }
                failpoint::fire("supervisor_batch");
                let mut trial = state.clone();
                self.globalizer.process_batch(&mut trial, batch);
                trial
            },
            |failed| {
                let delay = self
                    .config
                    .backoff
                    .delay_ns(failed as u32, batch_index as u64);
                let within = match self.config.batch_deadline_ns {
                    Some(budget) => spent_ns.saturating_add(delay) <= budget,
                    None => true,
                };
                if !within {
                    deadline_hit = true;
                    m.guard_deadline_exceeded_total.inc();
                    return false;
                }
                spent_ns += delay;
                granted += 1;
                m.guard_backoff_retries_total.inc();
                if self.config.sleep_backoff && delay > 0 {
                    std::thread::sleep(std::time::Duration::from_nanos(delay));
                }
                true
            },
        );
        ctx.batches_retried += granted;
        match r.result {
            Ok(next) => {
                *state = next;
                if tracing {
                    ctx.trace_events.extend(sink.drain());
                    state.trace_seq = sink.next_seq();
                }
            }
            Err(last_err) => {
                if tracing {
                    let _ = sink.drain();
                    sink.set_next_seq(seq0);
                }
                // Budget exhausted: divert the whole batch to the
                // dead-letter buffer and move on. The pre-batch state is
                // untouched, so the stream survives.
                ctx.batches_dead_lettered += 1;
                let reason = if deadline_hit {
                    ctx.batches_deadline_exceeded += 1;
                    format!(
                        "deadline exceeded after {} attempts: {last_err}",
                        granted + 1
                    )
                } else {
                    last_err
                };
                self.quarantine_batch(state, batch, PipelinePhase::Supervisor, &reason, tracing);
                self.dead_letter_persist(ctx, batch_index as u64, &reason, batch);
                if tracing {
                    ctx.trace_events.extend(sink.drain());
                    state.trace_seq = sink.next_seq();
                }
            }
        }
    }

    /// Write a checkpoint when the cadence (or the end of the stream)
    /// says so. `serviced` is the 1-based count of serviced batches.
    fn maybe_checkpoint(
        &self,
        state: &mut GlobalizerState,
        serviced: usize,
        is_last: bool,
        sink: &TraceSink,
        tracing: bool,
        ctx: &mut ServiceCtx,
    ) {
        let Some(path) = &self.config.checkpoint_path else {
            return;
        };
        if !serviced.is_multiple_of(self.config.checkpoint_every) && !is_last {
            return;
        }
        let m = self.globalizer.metrics();
        // Checkpoint compaction: squeeze evicted (tombstone) slots out of
        // the state first, so checkpoint size — and restart cost — stays
        // O(window) instead of O(stream history). A no-op for unbounded
        // runs.
        let dropped = state.compact();
        if dropped > 0 {
            m.compactions_total.inc();
            if tracing {
                self.temit(TraceEvent {
                    count: Some(dropped as u64),
                    phase: Some(TracePhase::Supervisor),
                    ..TraceEvent::of(TraceEventKind::StateCompacted)
                });
            }
        }
        let keep = self.config.checkpoint_generations;
        let saved = {
            let _t = Timer::start(&m.checkpoint_write_ns);
            if keep > 1 {
                checkpoint::save_generations(path, serviced as u64, state, keep)
            } else {
                checkpoint::save(path, serviced as u64, state)
            }
        };
        match saved {
            Ok(()) => {
                ctx.checkpoints_written += 1;
                if tracing {
                    self.temit(TraceEvent {
                        batch: Some(state.batch_seq),
                        count: Some(serviced as u64),
                        phase: Some(TracePhase::Supervisor),
                        ..TraceEvent::of(TraceEventKind::CheckpointSaved)
                    });
                    ctx.trace_events.extend(sink.drain());
                }
            }
            Err(_) => ctx.checkpoint_write_failures += 1,
        }
    }

    /// Shared prologue of [`run`](StreamSupervisor::run) and
    /// [`run_queued`](StreamSupervisor::run_queued): restore, resume the
    /// trace numbering, emit restore/fallback events.
    #[allow(clippy::type_complexity)]
    fn begin(
        &self,
        ctx: &mut ServiceCtx,
        sink: &TraceSink,
        tracing: bool,
    ) -> (GlobalizerState, usize, bool, usize, usize, Option<String>) {
        let (mut state, completed, resumed, generation, discards) = self.restore_or_fresh();
        let discard_reason = discards.first().map(|d| d.reason.clone());
        if tracing && resumed {
            // Continue the interrupted run's numbering: the checkpoint
            // carries the sequence high-water mark of its last committed
            // batch, so replayed-suffix events slot in right after the
            // events the interrupted run had already flushed.
            sink.set_next_seq(state.trace_seq);
            self.temit(TraceEvent {
                count: Some(completed as u64),
                phase: Some(TracePhase::Supervisor),
                ..TraceEvent::of(TraceEventKind::CheckpointRestored)
            });
            if generation > 0 {
                self.temit(TraceEvent {
                    count: Some(generation as u64),
                    reason: discard_reason.clone(),
                    phase: Some(TracePhase::Supervisor),
                    ..TraceEvent::of(TraceEventKind::CheckpointFallback)
                });
            }
            ctx.trace_events.extend(sink.drain());
            state.trace_seq = sink.next_seq();
        }
        (
            state,
            completed,
            resumed,
            generation,
            discards.len(),
            discard_reason,
        )
    }

    /// Assemble the report from the finished state and bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        output: GlobalizerOutput,
        batches_total: usize,
        start: usize,
        resumed: bool,
        generation: usize,
        fallbacks: usize,
        discard_reason: Option<String>,
        ctx: ServiceCtx,
    ) -> RunReport {
        RunReport {
            output,
            batches_total,
            batches_processed: batches_total - start,
            batches_skipped: start,
            batches_retried: ctx.batches_retried,
            batches_dead_lettered: ctx.batches_dead_lettered,
            batches_deadline_exceeded: ctx.batches_deadline_exceeded,
            batches_shed: ctx.batches_shed,
            dead_letter_records: ctx.dead_letter_records,
            checkpoints_written: ctx.checkpoints_written,
            checkpoint_write_failures: ctx.checkpoint_write_failures,
            resumed_from_checkpoint: resumed,
            checkpoint_generation: generation,
            checkpoint_fallbacks: fallbacks,
            discarded_corrupt_checkpoint: discard_reason.is_some(),
            checkpoint_discard_reason: discard_reason,
            local_only_output: ctx.local_only_output,
            breaker_transitions: self.globalizer.guard_transitions(),
            trace_events: ctx.trace_events,
            health: self.globalizer.sentinel_report(),
        }
    }

    /// Drive the whole stream: restore (or start fresh), replay the
    /// remaining batches with transactional backoff-and-deadline retry
    /// and periodic checkpoints, finalize, and report.
    pub fn run(&self, stream: &[Sentence]) -> RunReport {
        let tracing = emd_trace::enabled();
        let sink = self.globalizer.trace().clone();
        let mut ctx = ServiceCtx::default();
        let (mut state, completed, resumed, generation, fallbacks, discard_reason) =
            self.begin(&mut ctx, &sink, tracing);
        let batches: Vec<&[Sentence]> = stream.chunks(self.config.batch_size).collect();
        let start = completed.min(batches.len());
        for (i, batch) in batches.iter().enumerate().skip(start) {
            self.service_batch(&mut state, batch, i, &sink, tracing, &mut ctx);
            self.maybe_checkpoint(
                &mut state,
                i + 1,
                i + 1 == batches.len(),
                &sink,
                tracing,
                &mut ctx,
            );
        }
        let output = self.globalizer.finalize(&mut state);
        if tracing {
            ctx.trace_events.extend(sink.drain());
        }
        self.report(
            output,
            batches.len(),
            start,
            resumed,
            generation,
            fallbacks,
            discard_reason,
            ctx,
        )
    }

    /// Record one shed batch: accounting, quarantine, trace, sentinel
    /// feed, dead-letter record, and — for `ShedToLocalOnly` — the cheap
    /// local-only answer.
    #[allow(clippy::too_many_arguments)]
    fn record_shed(
        &self,
        state: &mut GlobalizerState,
        batch_index: usize,
        batch: &[Sentence],
        policy: OverloadPolicy,
        serviced: usize,
        tracing: bool,
        ctx: &mut ServiceCtx,
    ) {
        let m = self.globalizer.metrics();
        ctx.batches_shed += 1;
        m.guard_shed_total.inc();
        self.globalizer.note_shed(batch.len() as u64);
        let reason = policy.name();
        if tracing {
            self.temit(TraceEvent {
                batch: Some(serviced as u64),
                count: Some(batch.len() as u64),
                reason: Some(reason.to_string()),
                phase: Some(TracePhase::Supervisor),
                ..TraceEvent::of(TraceEventKind::BatchShed)
            });
        }
        self.quarantine_batch(state, batch, PipelinePhase::Admission, reason, tracing);
        self.dead_letter_persist(ctx, batch_index as u64, reason, batch);
        if policy == OverloadPolicy::ShedToLocalOnly {
            ctx.local_only_output
                .extend(self.globalizer.local_only_spans(batch));
        }
        // Flush the shed events now: the next serviced batch resets the
        // sink to its own frame start, which would discard them.
        if tracing {
            ctx.trace_events.extend(self.globalizer.trace().drain());
        }
    }

    /// Drive the stream through the admission gate: `arrivals_per_tick`
    /// batches are *offered* to the bounded queue per tick and one queued
    /// batch is *serviced* per tick, so offering faster than one batch
    /// per tick builds queue pressure and eventually sheds under the
    /// configured [`OverloadPolicy`]. After the last arrival the queue
    /// drains (one batch per tick, no new pressure). With
    /// `arrivals_per_tick <= 1` no queue ever builds and the run is
    /// equivalent to [`StreamSupervisor::run`].
    ///
    /// Shedding is deterministic (it depends only on the stream shape and
    /// the config), so a restart re-simulates the same admission
    /// decisions and suppresses re-recording for the already-checkpointed
    /// prefix — a recovered queued run is bit-identical to an
    /// uninterrupted one.
    pub fn run_queued(&self, stream: &[Sentence], arrivals_per_tick: usize) -> RunReport {
        let tracing = emd_trace::enabled();
        let sink = self.globalizer.trace().clone();
        let m = self.globalizer.metrics();
        let mut ctx = ServiceCtx::default();
        let (mut state, completed, resumed, generation, fallbacks, discard_reason) =
            self.begin(&mut ctx, &sink, tracing);
        let batches: Vec<&[Sentence]> = stream.chunks(self.config.batch_size).collect();
        let start = completed.min(batches.len());
        let arrivals = arrivals_per_tick.max(1);
        let mut queue: AdmissionQueue<usize> = AdmissionQueue::new(self.config.admission.clone());
        let mut next_arrival = 0usize;
        let mut serviced = 0usize;
        // `serviced` counts every serviced batch including the replayed
        // prefix; recording (sheds, quarantines, dead letters) is
        // suppressed until the prefix is consumed — those effects are
        // already inside the restored state.
        while next_arrival < batches.len() || !queue.is_empty() {
            for _ in 0..arrivals {
                if next_arrival >= batches.len() {
                    break;
                }
                let idx = next_arrival;
                next_arrival += 1;
                let sheds = queue.offer(idx, batches[idx].len() as u64);
                for shed in sheds {
                    if serviced >= start {
                        self.record_shed(
                            &mut state,
                            shed.item,
                            batches[shed.item],
                            shed.policy,
                            serviced,
                            tracing,
                            &mut ctx,
                        );
                    }
                }
            }
            m.guard_queue_depth.set(queue.len() as f64);
            m.guard_backpressure
                .set(if queue.backpressure() { 1.0 } else { 0.0 });
            let Some((idx, _cost)) = queue.pop() else {
                continue;
            };
            serviced += 1;
            if serviced <= start {
                continue; // the restored checkpoint already covers it
            }
            m.guard_admitted_total.inc();
            self.service_batch(&mut state, batches[idx], idx, &sink, tracing, &mut ctx);
            let is_last = next_arrival >= batches.len() && queue.is_empty();
            self.maybe_checkpoint(&mut state, serviced, is_last, &sink, tracing, &mut ctx);
        }
        m.guard_queue_depth.set(0.0);
        let output = self.globalizer.finalize(&mut state);
        if tracing {
            ctx.trace_events.extend(sink.drain());
        }
        self.report(
            output,
            batches.len(),
            start.min(serviced),
            resumed,
            generation,
            fallbacks,
            discard_reason,
            ctx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::EntityClassifier;
    use crate::config::GlobalizerConfig;
    use crate::local::LexiconEmd;
    use emd_text::token::SentenceId;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn accept_all(dim: usize) -> EntityClassifier {
        let mut c = EntityClassifier::new(dim, 0);
        use emd_nn::param::Net;
        let params = c.params_mut();
        let last = params.into_iter().last().unwrap();
        last.value.data[0] = 100.0;
        c
    }

    fn stream(n: u64) -> Vec<Sentence> {
        (0..n)
            .map(|i| {
                let words: &[&str] = if i % 3 == 0 {
                    &["Italy", "reports", "cases"]
                } else if i % 3 == 1 {
                    &["covid", "in", "italy"]
                } else {
                    &["nothing", "here"]
                };
                Sentence::from_tokens(SentenceId::new(i, 0), words.iter().copied())
            })
            .collect()
    }

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "emd_supervisor_test_{}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
            tag
        ))
    }

    #[test]
    fn supervised_run_matches_unsupervised() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(20);
        let (plain, _) = g.run(&s, 4);
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: None,
                batch_size: 4,
                ..Default::default()
            },
        );
        let report = sup.run(&s);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        assert_eq!(report.batches_total, 5);
        assert_eq!(report.batches_processed, 5);
        assert!(!report.resumed_from_checkpoint);
        assert_eq!(report.checkpoints_written, 0, "checkpointing disabled");
        assert_eq!(report.batches_shed, 0);
        assert_eq!(report.batches_deadline_exceeded, 0);
    }

    #[test]
    fn restart_resumes_from_checkpoint_and_replays_suffix() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(20);
        let path = temp("resume");
        let cfg = SupervisorConfig {
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 2,
            batch_size: 4,
            ..Default::default()
        };
        // "Crash" after a prefix: run only the first 12 sentences (3
        // batches; checkpoint lands at batch 2).
        let sup = StreamSupervisor::new(&g, cfg.clone());
        let _ = sup.run(&s[..12]);
        // Restart over the full stream: the checkpoint covers a prefix,
        // only the suffix is replayed, and the output is bit-identical to
        // an uninterrupted run.
        let report = sup.run(&s);
        assert!(report.resumed_from_checkpoint);
        assert_eq!(report.batches_total, 5);
        assert_eq!(report.batches_skipped, 3, "prefix came from the checkpoint");
        assert_eq!(report.batches_processed, 2);
        let (plain, _) = g.run(&s, 4);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        assert_eq!(report.output.n_candidates, plain.n_candidates);
        assert_eq!(report.output.n_entities, plain.n_entities);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_discarded_fresh_start() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let path = temp("corrupt");
        std::fs::write(&path, "EMDCKPT v1 seq=2 crc=0000000000000000\n{garbage\n").unwrap();
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                batch_size: 2,
                ..Default::default()
            },
        );
        let s = stream(4);
        let report = sup.run(&s);
        assert!(report.discarded_corrupt_checkpoint);
        assert!(
            report.checkpoint_discard_reason.is_some(),
            "the discard reason is surfaced, not swallowed"
        );
        assert!(!report.resumed_from_checkpoint);
        assert_eq!(
            report.batches_processed, 2,
            "fresh start replays everything"
        );
        let (plain, _) = g.run(&s, 2);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_restart_is_bit_identical_and_checkpoints_compact() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(
            &local,
            None,
            &clf,
            GlobalizerConfig {
                window: crate::config::WindowConfig::sliding(6),
                ..Default::default()
            },
        );
        let s = stream(40);
        let path = temp("windowed");
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                checkpoint_every: 2,
                batch_size: 4,
                ..Default::default()
            },
        );
        // Interrupted run over a prefix long enough to evict plenty.
        let _ = sup.run(&s[..24]);
        let (_seq, ckpt): (u64, GlobalizerState) = checkpoint::load(&path).unwrap();
        assert!(ckpt.n_evicted() > 0, "the window evicted before the crash");
        assert_eq!(
            ckpt.tweetbase.n_slots(),
            ckpt.tweetbase.len(),
            "checkpoints are compacted: no tombstone slots persisted"
        );
        // Restart over the full stream: bit-identical to uninterrupted.
        let report = sup.run(&s);
        assert!(report.resumed_from_checkpoint);
        let (plain, _) = g.run(&s, 4);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        assert_eq!(report.output.n_candidates, plain.n_candidates);
        assert_eq!(report.output.n_entities, plain.n_entities);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_written_every_n_and_at_end() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let path = temp("cadence");
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                checkpoint_every: 2,
                batch_size: 2,
                ..Default::default()
            },
        );
        // 5 batches → checkpoints after batches 2, 4, and 5 (final).
        let report = sup.run(&stream(10));
        assert_eq!(report.checkpoints_written, 3);
        let (seq, _state): (u64, GlobalizerState) = checkpoint::load(&path).unwrap();
        assert_eq!(seq, 5, "final checkpoint covers the whole stream");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_configs_rejected_with_typed_errors() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let cases: Vec<(SupervisorConfig, SupervisorConfigError)> = vec![
            (
                SupervisorConfig {
                    checkpoint_every: 0,
                    ..Default::default()
                },
                SupervisorConfigError::ZeroCheckpointEvery,
            ),
            (
                SupervisorConfig {
                    checkpoint_generations: 0,
                    ..Default::default()
                },
                SupervisorConfigError::ZeroCheckpointGenerations,
            ),
            (
                SupervisorConfig {
                    batch_size: 0,
                    ..Default::default()
                },
                SupervisorConfigError::ZeroBatchSize,
            ),
            (
                SupervisorConfig {
                    batch_retries: MAX_BATCH_RETRIES + 1,
                    ..Default::default()
                },
                SupervisorConfigError::ExcessiveBatchRetries(MAX_BATCH_RETRIES + 1),
            ),
            (
                SupervisorConfig {
                    batch_deadline_ns: Some(0),
                    ..Default::default()
                },
                SupervisorConfigError::ZeroBatchDeadline,
            ),
        ];
        for (cfg, want) in cases {
            match StreamSupervisor::try_new(&g, cfg) {
                Err(e) => assert_eq!(e, want),
                Ok(_) => panic!("expected {want:?}"),
            }
        }
        assert!(StreamSupervisor::try_new(&g, SupervisorConfig::default()).is_ok());
    }

    #[test]
    fn new_panics_on_invalid_config() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            StreamSupervisor::new(
                &g,
                SupervisorConfig {
                    batch_size: 0,
                    ..Default::default()
                },
            )
        }));
        assert!(r.is_err(), "new must reject what try_new rejects");
    }

    #[test]
    fn invalid_backoff_and_admission_are_rejected() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let bad_backoff = SupervisorConfig {
            backoff: BackoffPolicy {
                factor: 0.5,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(matches!(
            StreamSupervisor::try_new(&g, bad_backoff),
            Err(SupervisorConfigError::Backoff(_))
        ));
        let bad_admission = SupervisorConfig {
            admission: AdmissionConfig {
                capacity: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(matches!(
            StreamSupervisor::try_new(&g, bad_admission),
            Err(SupervisorConfigError::Admission(_))
        ));
    }

    #[test]
    fn run_queued_without_pressure_matches_run() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(20);
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                batch_size: 4,
                ..Default::default()
            },
        );
        let plain = sup.run(&s);
        let queued = sup.run_queued(&s, 1);
        assert_eq!(queued.output.per_sentence, plain.output.per_sentence);
        assert_eq!(queued.batches_shed, 0, "one arrival per tick never sheds");
        assert!(queued.local_only_output.is_empty());
    }

    #[test]
    fn run_queued_sheds_under_pressure_and_accounts_for_it() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(60); // 15 batches of 4
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                batch_size: 4,
                admission: AdmissionConfig {
                    capacity: 8, // two queued batches
                    policy: OverloadPolicy::RejectNew,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Offer 4 batches per tick, service 1: pressure guaranteed.
        let report = sup.run_queued(&s, 4);
        assert!(report.batches_shed > 0, "overload must shed");
        let shed_sentences: usize = report
            .output
            .quarantined
            .iter()
            .filter(|q| q.phase == PipelinePhase::Admission)
            .count();
        assert_eq!(
            shed_sentences,
            report.batches_shed * 4,
            "every shed sentence is quarantined under the admission phase"
        );
        // Serviced + shed covers the whole stream.
        assert_eq!(
            report.batches_shed + report.output.per_sentence.len().div_ceil(4),
            15,
            "admitted + shed = total batches"
        );
    }

    #[test]
    fn shed_to_local_only_produces_degraded_answers() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(60);
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                batch_size: 4,
                admission: AdmissionConfig {
                    capacity: 8,
                    policy: OverloadPolicy::ShedToLocalOnly,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let report = sup.run_queued(&s, 4);
        assert!(report.batches_shed > 0);
        assert_eq!(
            report.local_only_output.len(),
            report.batches_shed * 4,
            "every shed sentence gets a local-only answer"
        );
        // Local answers carry the lexicon hits where present.
        assert!(report
            .local_only_output
            .iter()
            .any(|(_, spans)| !spans.is_empty()));
    }

    #[test]
    fn generation_ladder_rotates_during_run() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let path = temp("ladder");
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                checkpoint_every: 1,
                checkpoint_generations: 3,
                batch_size: 2,
                ..Default::default()
            },
        );
        let report = sup.run(&stream(10));
        assert_eq!(report.checkpoints_written, 5);
        // Live file covers batch 5; .1 covers 4; .2 covers 3.
        let (seq0, _): (u64, GlobalizerState) = checkpoint::load(&path).unwrap();
        let (seq1, _): (u64, GlobalizerState) =
            checkpoint::load(&checkpoint::generation_path(&path, 1)).unwrap();
        let (seq2, _): (u64, GlobalizerState) =
            checkpoint::load(&checkpoint::generation_path(&path, 2)).unwrap();
        assert_eq!((seq0, seq1, seq2), (5, 4, 3));
        for k in 0..3 {
            let _ = std::fs::remove_file(checkpoint::generation_path(&path, k));
        }
    }

    #[test]
    fn restore_falls_back_past_corrupt_generations() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(20);
        let path = temp("fallback");
        let cfg = SupervisorConfig {
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 1,
            checkpoint_generations: 3,
            batch_size: 4,
            ..Default::default()
        };
        let sup = StreamSupervisor::new(&g, cfg);
        let _ = sup.run(&s[..16]); // 4 batches; ladder = seq 4, 3, 2
                                   // Corrupt the newest generation (torn-write aftermath).
        std::fs::write(&path, "EMDCKPT v3 seq=4 crc=0000000000000000\n{}\n").unwrap();
        let report = sup.run(&s);
        assert!(report.resumed_from_checkpoint, "generation 1 restores");
        assert_eq!(report.checkpoint_generation, 1);
        assert_eq!(report.checkpoint_fallbacks, 1);
        assert!(report.discarded_corrupt_checkpoint);
        assert!(report
            .checkpoint_discard_reason
            .as_deref()
            .unwrap()
            .contains("checksum"));
        assert_eq!(report.batches_skipped, 3, "resumed from seq 3");
        let (plain, _) = g.run(&s, 4);
        assert_eq!(
            report.output.per_sentence, plain.per_sentence,
            "fallback restart stays bit-identical"
        );
        for k in 0..3 {
            let _ = std::fs::remove_file(checkpoint::generation_path(&path, k));
        }
        let _ = std::fs::remove_file(deadletter::deadletter_path(&path));
    }
}
