//! StreamSupervisor: a crash-recoverable batch driver for unattended
//! streaming runs.
//!
//! The supervisor wraps [`Globalizer`] batch processing with three
//! guarantees:
//!
//! 1. **Transactional batches** — each batch runs against a clone of the
//!    pipeline state inside a panic-isolation boundary; a batch-level
//!    fault (beyond what the per-item isolation inside the pipeline
//!    already absorbs) discards the partial clone and retries from the
//!    pre-batch state. A batch that exhausts its retry budget is diverted
//!    whole into the dead-letter buffer instead of killing the stream.
//! 2. **Checkpointing** — every `checkpoint_every` completed batches (and
//!    after the final one) the full [`GlobalizerState`] is snapshotted to
//!    a versioned, checksummed file
//!    ([`emd_resilience::checkpoint`]) with an atomic rename, so a crash
//!    mid-write can never corrupt the previous checkpoint.
//! 3. **Recovery** — on startup, a valid checkpoint restores the state
//!    and the run replays only the *suffix* of the stream (batches after
//!    the checkpoint's sequence number). A missing checkpoint is a fresh
//!    start; a corrupt one is discarded (reported in the
//!    [`RunReport`]) and the run starts fresh rather than trusting
//!    damaged state. Because batch processing is deterministic, a
//!    recovered run's final output is bit-identical to an uninterrupted
//!    one.

use crate::globalizer::{Globalizer, GlobalizerOutput, GlobalizerState};
use emd_obs::Timer;
use emd_resilience::checkpoint::{self, CheckpointError};
use emd_resilience::quarantine::{PipelinePhase, QuarantineEntry};
use emd_resilience::{failpoint, isolate};
use emd_text::token::Sentence;
use emd_trace::{TraceEvent, TraceEventKind, TracePhase};
use std::path::PathBuf;

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Where to persist checkpoints. `None` disables checkpointing (the
    /// supervisor still gives transactional batches and retry).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many completed batches (the final
    /// batch always checkpoints). Values below 1 behave as 1.
    pub checkpoint_every: usize,
    /// Sentences per batch.
    pub batch_size: usize,
    /// How many times a batch whose processing panicked at the batch
    /// level is retried before the whole batch is dead-lettered.
    pub batch_retries: usize,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            checkpoint_path: None,
            checkpoint_every: 4,
            batch_size: 512,
            batch_retries: 1,
        }
    }
}

/// What a supervised run did, alongside the pipeline output.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The final pipeline output (bit-identical to an unsupervised,
    /// uninterrupted run over the same stream, modulo dead-lettered
    /// batches).
    pub output: GlobalizerOutput,
    /// Total batches in the stream.
    pub batches_total: usize,
    /// Batches processed in this run (the replayed suffix).
    pub batches_processed: usize,
    /// Batches skipped because a checkpoint already covered them.
    pub batches_skipped: usize,
    /// Batch-level retry attempts performed.
    pub batches_retried: usize,
    /// Batches that exhausted the retry budget and were dead-lettered.
    pub batches_dead_lettered: usize,
    /// Checkpoints successfully written.
    pub checkpoints_written: usize,
    /// Checkpoint writes that failed (the run continues; the previous
    /// checkpoint stays valid thanks to the atomic rename).
    pub checkpoint_write_failures: usize,
    /// True when the run resumed from a valid checkpoint.
    pub resumed_from_checkpoint: bool,
    /// True when a checkpoint existed but was corrupt (bad magic, bad
    /// version, checksum mismatch, undecodable payload) and was discarded
    /// in favour of a fresh start.
    pub discarded_corrupt_checkpoint: bool,
    /// Why the checkpoint was discarded, when it was — the restore path
    /// must never silently swallow the error an operator needs to
    /// distinguish "disk corruption" from "incompatible build".
    pub checkpoint_discard_reason: Option<String>,
    /// Trace events flushed from the globalizer's sink, in sequence
    /// order, when `emd_trace::enabled()` during the run (empty
    /// otherwise). The sink is drained at every batch boundary —
    /// committed batches only: a retried attempt's partial events are
    /// discarded and their sequence numbers re-issued to the retry, and a
    /// run restored from a checkpoint continues the interrupted run's
    /// numbering (`GlobalizerState` carries the committed high-water
    /// mark). Point the globalizer at a private sink
    /// ([`Globalizer::set_trace`]) to keep unrelated events out.
    pub trace_events: Vec<TraceEvent>,
    /// End-of-run health summary from the globalizer's attached quality
    /// sentinel ([`Globalizer::set_sentinel`]); `None` when the run was
    /// unmonitored. Transitions here are reproducible from the trace log
    /// alone via `emd_trace::audit::replay_health`.
    pub health: Option<emd_sentinel::HealthReport>,
}

/// Crash-recoverable batch driver over a [`Globalizer`].
pub struct StreamSupervisor<'g, 'a> {
    globalizer: &'g Globalizer<'a>,
    /// Supervisor policy.
    pub config: SupervisorConfig,
}

impl<'g, 'a> StreamSupervisor<'g, 'a> {
    /// Wrap a globalizer with supervision policy.
    pub fn new(
        globalizer: &'g Globalizer<'a>,
        config: SupervisorConfig,
    ) -> StreamSupervisor<'g, 'a> {
        StreamSupervisor { globalizer, config }
    }

    /// Restore state from the configured checkpoint, or start fresh.
    /// Returns `(state, batches_already_completed, resumed, discard
    /// reason)` — a corrupt checkpoint is discarded in favour of a fresh
    /// start, but the reason is carried into the [`RunReport`] rather
    /// than dropped on the floor.
    fn restore_or_fresh(&self) -> (GlobalizerState, usize, bool, Option<String>) {
        let Some(path) = &self.config.checkpoint_path else {
            return (self.globalizer.new_state(), 0, false, None);
        };
        let m = self.globalizer.metrics();
        let restored = {
            let _t = Timer::start(&m.checkpoint_restore_ns);
            checkpoint::load::<GlobalizerState>(path)
        };
        match restored {
            Ok((seq, state)) => (state, seq as usize, true, None),
            Err(CheckpointError::NotFound) => (self.globalizer.new_state(), 0, false, None),
            Err(e) => (self.globalizer.new_state(), 0, false, Some(e.to_string())),
        }
    }

    /// Drive the whole stream: restore (or start fresh), replay the
    /// remaining batches with transactional retry and periodic
    /// checkpoints, finalize, and report.
    /// Push one supervisor-level trace event, keeping the meta-counters
    /// in step with [`Globalizer`]'s own emission.
    fn temit(&self, ev: TraceEvent) -> Option<u64> {
        let m = self.globalizer.metrics();
        match self.globalizer.trace().push(ev) {
            Some(seq) => {
                m.trace_events_total.inc();
                Some(seq)
            }
            None => {
                m.trace_dropped_events_total.inc();
                None
            }
        }
    }

    pub fn run(&self, stream: &[Sentence]) -> RunReport {
        let (mut state, completed, resumed, discard_reason) = self.restore_or_fresh();
        let every = self.config.checkpoint_every.max(1);
        let batches: Vec<&[Sentence]> = stream.chunks(self.config.batch_size.max(1)).collect();
        let start = completed.min(batches.len());
        let m = self.globalizer.metrics();
        let tracing = emd_trace::enabled();
        let sink = self.globalizer.trace().clone();
        let mut trace_events: Vec<TraceEvent> = Vec::new();
        if tracing && resumed {
            // Continue the interrupted run's numbering: the checkpoint
            // carries the sequence high-water mark of its last committed
            // batch, so replayed-suffix events slot in right after the
            // events the interrupted run had already flushed.
            sink.set_next_seq(state.trace_seq);
            self.temit(TraceEvent {
                count: Some(completed as u64),
                phase: Some(TracePhase::Supervisor),
                ..TraceEvent::of(TraceEventKind::CheckpointRestored)
            });
            trace_events.extend(sink.drain());
            state.trace_seq = sink.next_seq();
        }
        let mut batches_retried = 0;
        let mut batches_dead_lettered = 0;
        let mut checkpoints_written = 0;
        let mut checkpoint_write_failures = 0;
        for (i, batch) in batches.iter().enumerate().skip(start) {
            // Everything the sink accumulates during an attempt belongs
            // to that attempt; a failed attempt's events are discarded
            // and their sequence numbers re-issued, so the committed
            // trace is identical whether or not retries happened.
            let seq0 = sink.next_seq();
            let mut failed_attempts = 0;
            loop {
                // Work on a clone so a batch-level panic discards the
                // partial state and the retry starts from a clean slate.
                let mut trial = state.clone();
                let outcome = isolate::catch(|| {
                    failpoint::fire("supervisor_batch");
                    self.globalizer.process_batch(&mut trial, batch);
                    trial
                });
                match outcome {
                    Ok(next) => {
                        state = next;
                        if tracing {
                            trace_events.extend(sink.drain());
                            state.trace_seq = sink.next_seq();
                        }
                        break;
                    }
                    Err(reason) => {
                        if tracing {
                            let _ = sink.drain();
                            sink.set_next_seq(seq0);
                        }
                        if failed_attempts < self.config.batch_retries {
                            failed_attempts += 1;
                            batches_retried += 1;
                            continue;
                        }
                        // Budget exhausted: divert the whole batch to the
                        // dead-letter buffer and move on. The pre-batch
                        // state is untouched, so the stream survives.
                        batches_dead_lettered += 1;
                        for s in batch.iter() {
                            m.quarantined_total.inc();
                            let trace_event = if tracing {
                                self.temit(TraceEvent {
                                    sid: Some((s.id.tweet_id, s.id.sent_id)),
                                    phase: Some(TracePhase::Supervisor),
                                    reason: Some(reason.clone()),
                                    ..TraceEvent::of(TraceEventKind::SentenceQuarantined)
                                })
                            } else {
                                None
                            };
                            state.quarantined.push(QuarantineEntry {
                                sid: s.id,
                                phase: PipelinePhase::Supervisor,
                                reason: reason.clone(),
                                trace_event,
                            });
                        }
                        if tracing {
                            trace_events.extend(sink.drain());
                            state.trace_seq = sink.next_seq();
                        }
                        break;
                    }
                }
            }
            let is_last = i + 1 == batches.len();
            if let Some(path) = &self.config.checkpoint_path {
                if (i + 1) % every == 0 || is_last {
                    // Checkpoint compaction: squeeze evicted (tombstone)
                    // slots out of the state first, so checkpoint size —
                    // and restart cost — stays O(window) instead of
                    // O(stream history). A no-op for unbounded runs.
                    let dropped = state.compact();
                    if dropped > 0 {
                        m.compactions_total.inc();
                        if tracing {
                            self.temit(TraceEvent {
                                count: Some(dropped as u64),
                                phase: Some(TracePhase::Supervisor),
                                ..TraceEvent::of(TraceEventKind::StateCompacted)
                            });
                        }
                    }
                    let saved = {
                        let _t = Timer::start(&m.checkpoint_write_ns);
                        checkpoint::save(path, (i + 1) as u64, &state)
                    };
                    match saved {
                        Ok(()) => {
                            checkpoints_written += 1;
                            if tracing {
                                self.temit(TraceEvent {
                                    batch: Some(state.batch_seq),
                                    count: Some((i + 1) as u64),
                                    phase: Some(TracePhase::Supervisor),
                                    ..TraceEvent::of(TraceEventKind::CheckpointSaved)
                                });
                                trace_events.extend(sink.drain());
                            }
                        }
                        Err(_) => checkpoint_write_failures += 1,
                    }
                }
            }
        }
        let output = self.globalizer.finalize(&mut state);
        if tracing {
            trace_events.extend(sink.drain());
        }
        RunReport {
            output,
            batches_total: batches.len(),
            batches_processed: batches.len() - start,
            batches_skipped: start,
            batches_retried,
            batches_dead_lettered,
            checkpoints_written,
            checkpoint_write_failures,
            resumed_from_checkpoint: resumed,
            discarded_corrupt_checkpoint: discard_reason.is_some(),
            checkpoint_discard_reason: discard_reason,
            trace_events,
            health: self.globalizer.sentinel_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::EntityClassifier;
    use crate::config::GlobalizerConfig;
    use crate::local::LexiconEmd;
    use emd_text::token::SentenceId;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn accept_all(dim: usize) -> EntityClassifier {
        let mut c = EntityClassifier::new(dim, 0);
        use emd_nn::param::Net;
        let params = c.params_mut();
        let last = params.into_iter().last().unwrap();
        last.value.data[0] = 100.0;
        c
    }

    fn stream(n: u64) -> Vec<Sentence> {
        (0..n)
            .map(|i| {
                let words: &[&str] = if i % 3 == 0 {
                    &["Italy", "reports", "cases"]
                } else if i % 3 == 1 {
                    &["covid", "in", "italy"]
                } else {
                    &["nothing", "here"]
                };
                Sentence::from_tokens(SentenceId::new(i, 0), words.iter().copied())
            })
            .collect()
    }

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "emd_supervisor_test_{}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
            tag
        ))
    }

    #[test]
    fn supervised_run_matches_unsupervised() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(20);
        let (plain, _) = g.run(&s, 4);
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: None,
                batch_size: 4,
                ..Default::default()
            },
        );
        let report = sup.run(&s);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        assert_eq!(report.batches_total, 5);
        assert_eq!(report.batches_processed, 5);
        assert!(!report.resumed_from_checkpoint);
        assert_eq!(report.checkpoints_written, 0, "checkpointing disabled");
    }

    #[test]
    fn restart_resumes_from_checkpoint_and_replays_suffix() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let s = stream(20);
        let path = temp("resume");
        let cfg = SupervisorConfig {
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 2,
            batch_size: 4,
            ..Default::default()
        };
        // "Crash" after a prefix: run only the first 12 sentences (3
        // batches; checkpoint lands at batch 2).
        let sup = StreamSupervisor::new(&g, cfg.clone());
        let _ = sup.run(&s[..12]);
        // Restart over the full stream: the checkpoint covers a prefix,
        // only the suffix is replayed, and the output is bit-identical to
        // an uninterrupted run.
        let report = sup.run(&s);
        assert!(report.resumed_from_checkpoint);
        assert_eq!(report.batches_total, 5);
        assert_eq!(report.batches_skipped, 3, "prefix came from the checkpoint");
        assert_eq!(report.batches_processed, 2);
        let (plain, _) = g.run(&s, 4);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        assert_eq!(report.output.n_candidates, plain.n_candidates);
        assert_eq!(report.output.n_entities, plain.n_entities);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_discarded_fresh_start() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let path = temp("corrupt");
        std::fs::write(&path, "EMDCKPT v1 seq=2 crc=0000000000000000\n{garbage\n").unwrap();
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                batch_size: 2,
                ..Default::default()
            },
        );
        let s = stream(4);
        let report = sup.run(&s);
        assert!(report.discarded_corrupt_checkpoint);
        assert!(
            report.checkpoint_discard_reason.is_some(),
            "the discard reason is surfaced, not swallowed"
        );
        assert!(!report.resumed_from_checkpoint);
        assert_eq!(
            report.batches_processed, 2,
            "fresh start replays everything"
        );
        let (plain, _) = g.run(&s, 2);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_restart_is_bit_identical_and_checkpoints_compact() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(
            &local,
            None,
            &clf,
            GlobalizerConfig {
                window: crate::config::WindowConfig::sliding(6),
                ..Default::default()
            },
        );
        let s = stream(40);
        let path = temp("windowed");
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                checkpoint_every: 2,
                batch_size: 4,
                ..Default::default()
            },
        );
        // Interrupted run over a prefix long enough to evict plenty.
        let _ = sup.run(&s[..24]);
        let (_seq, ckpt): (u64, GlobalizerState) = checkpoint::load(&path).unwrap();
        assert!(ckpt.n_evicted() > 0, "the window evicted before the crash");
        assert_eq!(
            ckpt.tweetbase.n_slots(),
            ckpt.tweetbase.len(),
            "checkpoints are compacted: no tombstone slots persisted"
        );
        // Restart over the full stream: bit-identical to uninterrupted.
        let report = sup.run(&s);
        assert!(report.resumed_from_checkpoint);
        let (plain, _) = g.run(&s, 4);
        assert_eq!(report.output.per_sentence, plain.per_sentence);
        assert_eq!(report.output.n_candidates, plain.n_candidates);
        assert_eq!(report.output.n_entities, plain.n_entities);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_written_every_n_and_at_end() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let path = temp("cadence");
        let sup = StreamSupervisor::new(
            &g,
            SupervisorConfig {
                checkpoint_path: Some(path.clone()),
                checkpoint_every: 2,
                batch_size: 2,
                ..Default::default()
            },
        );
        // 5 batches → checkpoints after batches 2, 4, and 5 (final).
        let report = sup.run(&stream(10));
        assert_eq!(report.checkpoints_written, 3);
        let (seq, _state): (u64, GlobalizerState) = checkpoint::load(&path).unwrap();
        assert_eq!(seq, 5, "final checkpoint covers the whole stream");
        std::fs::remove_file(&path).unwrap();
    }
}
