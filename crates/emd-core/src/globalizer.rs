//! The EMD Globalizer pipeline: Local EMD → Global EMD orchestration.
//!
//! Execution follows Figure 2/3 of the paper. The pipeline is incremental:
//! a stream is consumed in batches via [`Globalizer::process_batch`]; seed
//! candidates accumulate in the CTrie, candidate pools grow as mentions
//! arrive, and [`Globalizer::finalize`] performs the closing rescan (old
//! sentences may contain mentions of candidates discovered later), resolves
//! the ambiguous γ band, and emits the final mention outputs.

use crate::candidatebase::{CandidateBase, MentionRef};
use crate::classifier::{CandidateLabel, EntityClassifier};
use crate::config::{Ablation, GlobalizerConfig};
use crate::ctrie::CTrie;
use crate::local::LocalEmd;
use crate::mention::extract_mentions;
use crate::phrase_embedder::PhraseEmbedder;
use crate::tweetbase::{TweetBase, TweetRecord};
use emd_text::casing::{syntactic_class, SyntacticClass};
use emd_text::token::{Sentence, SentenceId, Span};

/// Accumulated pipeline state across batches.
#[derive(Debug, Clone)]
pub struct GlobalizerState {
    /// Per-sentence records.
    pub tweetbase: TweetBase,
    /// Seed candidate index.
    pub ctrie: CTrie,
    /// Per-candidate records with pooled global embeddings.
    pub candidates: CandidateBase,
}

/// Final (or interim) outputs of the framework.
#[derive(Debug, Clone)]
pub struct GlobalizerOutput {
    /// Predicted mentions per sentence, in stream order.
    pub per_sentence: Vec<(SentenceId, Vec<Span>)>,
    /// Number of seed candidates discovered.
    pub n_candidates: usize,
    /// Number of candidates accepted as entities.
    pub n_entities: usize,
}

impl GlobalizerOutput {
    /// Flatten to a map for evaluation.
    pub fn as_map(&self) -> std::collections::HashMap<SentenceId, Vec<Span>> {
        self.per_sentence.iter().cloned().collect()
    }
}

/// The framework: a Local EMD plug-in, the Global EMD components, and the
/// configuration.
pub struct Globalizer<'a> {
    local: &'a dyn LocalEmd,
    /// Required iff the local system is deep.
    phrase: Option<&'a PhraseEmbedder>,
    classifier: &'a EntityClassifier,
    /// Pipeline configuration.
    pub config: GlobalizerConfig,
}

impl<'a> Globalizer<'a> {
    /// Assemble a framework instance. Panics if a deep local system is given
    /// without a phrase embedder, or a non-deep one with an embedder of the
    /// wrong input dimension.
    pub fn new(
        local: &'a dyn LocalEmd,
        phrase: Option<&'a PhraseEmbedder>,
        classifier: &'a EntityClassifier,
        config: GlobalizerConfig,
    ) -> Globalizer<'a> {
        if let Some(d) = local.embedding_dim() {
            let pe = phrase.expect("deep Local EMD requires a PhraseEmbedder");
            assert_eq!(pe.in_dim(), d, "PhraseEmbedder input dim must match the local system");
        }
        Globalizer { local, phrase, classifier, config }
    }

    /// Dimensionality of candidate embeddings: the phrase-embedder output
    /// for deep systems, the 6-dim syntactic space otherwise.
    pub fn candidate_dim(&self) -> usize {
        match self.phrase {
            Some(pe) if self.local.is_deep() => pe.out_dim(),
            _ => SyntacticClass::COUNT,
        }
    }

    /// Fresh pipeline state.
    pub fn new_state(&self) -> GlobalizerState {
        GlobalizerState {
            tweetbase: TweetBase::new(),
            ctrie: CTrie::new(),
            candidates: CandidateBase::new(self.candidate_dim()),
        }
    }

    /// Compute the local candidate embedding for a mention.
    fn local_embedding(&self, record: &TweetRecord, span: &Span) -> Vec<f32> {
        match (&record.token_embeddings, self.phrase) {
            (Some(te), Some(pe)) => pe.embed_span(te, span),
            _ => syntactic_class(&record.sentence, span).one_hot().to_vec(),
        }
    }

    /// **Local EMD phase** for one batch: run the plug-in per sentence,
    /// register seed candidates in the CTrie, store TweetBase records.
    fn local_phase(&self, state: &mut GlobalizerState, batch: &[Sentence]) {
        let outputs: Vec<crate::local::LocalEmdOutput> =
            batch.iter().map(|s| self.local.process(s)).collect();
        self.ingest_local_outputs(state, batch, outputs);
    }

    /// Local EMD phase with sentence-level parallelism: the batch is split
    /// across `n_threads` scoped threads (inference is `&self`), then the
    /// outputs are ingested sequentially in stream order, so results are
    /// bit-identical to the sequential path.
    fn local_phase_parallel(&self, state: &mut GlobalizerState, batch: &[Sentence], n_threads: usize) {
        let n_threads = n_threads.max(1).min(batch.len().max(1));
        let chunk = batch.len().div_ceil(n_threads);
        let mut outputs: Vec<crate::local::LocalEmdOutput> = Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks(chunk.max(1))
                .map(|part| {
                    scope.spawn(move || {
                        part.iter().map(|s| self.local.process(s)).collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                outputs.extend(h.join().expect("local EMD worker panicked"));
            }
        });
        self.ingest_local_outputs(state, batch, outputs);
    }

    /// Register local outputs: seed the CTrie, store TweetBase records.
    fn ingest_local_outputs(
        &self,
        state: &mut GlobalizerState,
        batch: &[Sentence],
        outputs: Vec<crate::local::LocalEmdOutput>,
    ) {
        for (sentence, out) in batch.iter().zip(outputs) {
            for sp in &out.spans {
                if sp.len() <= self.config.max_candidate_len && sp.end <= sentence.len() {
                    let toks: Vec<&str> = (sp.start..sp.end)
                        .map(|i| sentence.tokens[i].text.as_str())
                        .collect();
                    state.ctrie.insert(&toks);
                }
            }
            state.tweetbase.insert(TweetRecord {
                sentence: sentence.clone(),
                token_embeddings: out.token_embeddings,
                local_spans: out.spans,
                global_mentions: Vec::new(),
            });
        }
    }

    /// **Mention extraction + embedding pooling** over the given sentence
    /// ids. New mentions (not yet in the CandidateBase) contribute their
    /// local embeddings to the candidate pool.
    fn scan_and_pool(&self, state: &mut GlobalizerState, ids: &[SentenceId]) {
        for &sid in ids {
            let Some(record) = state.tweetbase.get(sid) else { continue };
            let mentions =
                extract_mentions(&state.ctrie, &record.sentence, self.config.max_candidate_len);
            let locally: Vec<Span> = record.local_spans.clone();
            // Compute embeddings before touching candidate records (borrow
            // discipline: record is borrowed from tweetbase).
            let mut staged: Vec<(String, MentionRef, Vec<f32>)> = Vec::with_capacity(mentions.len());
            for sp in &mentions {
                let key = sp.surface_lower(&record.sentence);
                let emb = self.local_embedding(record, sp);
                let locally_detected = locally.iter().any(|l| l == sp);
                staged.push((key, MentionRef { sid, span: *sp, locally_detected }, emb));
            }
            if let Some(rec) = state.tweetbase.get_mut(sid) {
                rec.global_mentions = mentions;
            }
            for (key, mref, emb) in staged {
                let rec = state.candidates.entry(&key);
                if rec.mentions.iter().any(|m| m.sid == mref.sid && m.span == mref.span) {
                    continue; // already pooled in an earlier pass
                }
                rec.mentions.push(mref);
                rec.add_embedding(&emb);
            }
        }
    }

    /// Score candidates. Confident verdicts (α/β) freeze; ambiguous ones
    /// are re-scored on later calls with their (sharper) updated pools.
    ///
    /// At end of stream (`resolve_ambiguous`), candidates still in the γ
    /// band get their final verdict: accept when the score clears
    /// `final_threshold`, otherwise fall back to the Local EMD system's own
    /// judgment — if the local system itself detected at least half of the
    /// candidate's mentions, the global evidence is too weak to overrule it
    /// (the paper: "it is rare that an entity found by Local EMD is missed
    /// at the global step").
    fn classify_candidates(&self, state: &mut GlobalizerState, resolve_ambiguous: bool) {
        for rec in state.candidates.iter_mut() {
            if matches!(rec.label, CandidateLabel::Entity | CandidateLabel::NonEntity) {
                continue;
            }
            let feats = EntityClassifier::features(
                &rec.pooled_embedding(self.config.pooling),
                rec.token_len(),
            );
            let p = self.classifier.predict(&feats);
            rec.score = Some(p);
            rec.label = EntityClassifier::classify(p, &self.config);
            if resolve_ambiguous && rec.label == CandidateLabel::Ambiguous {
                let locally = rec.mentions.iter().filter(|m| m.locally_detected).count();
                let trust_local = self.config.trust_local_fallback
                    && 2 * locally >= rec.mentions.len().max(1);
                rec.label = if p >= self.config.final_threshold || trust_local {
                    CandidateLabel::Entity
                } else {
                    CandidateLabel::NonEntity
                };
            }
        }
    }

    /// Consume one batch of the stream: Local EMD, candidate registration,
    /// mention extraction over the batch, pooling, and an interim
    /// classification pass (γ candidates stay pending).
    pub fn process_batch(&self, state: &mut GlobalizerState, batch: &[Sentence]) {
        self.local_phase(state, batch);
        self.global_stage(state, batch);
    }

    /// Like [`Globalizer::process_batch`] but runs Local EMD inference on
    /// `n_threads` scoped threads. Outputs are identical to the sequential
    /// path (ingestion stays in stream order).
    pub fn process_batch_parallel(
        &self,
        state: &mut GlobalizerState,
        batch: &[Sentence],
        n_threads: usize,
    ) {
        self.local_phase_parallel(state, batch, n_threads);
        self.global_stage(state, batch);
    }

    fn global_stage(&self, state: &mut GlobalizerState, batch: &[Sentence]) {
        if self.config.ablation == Ablation::LocalOnly {
            return;
        }
        let ids: Vec<SentenceId> = batch.iter().map(|s| s.id).collect();
        self.scan_and_pool(state, &ids);
        if self.config.ablation == Ablation::Full {
            self.classify_candidates(state, false);
        }
    }

    /// Close the stream: rescan *every* stored sentence against the final
    /// CTrie (recovering mentions of late-discovered candidates in early
    /// sentences), resolve the γ band, and emit final outputs.
    pub fn finalize(&self, state: &mut GlobalizerState) -> GlobalizerOutput {
        if self.config.ablation != Ablation::LocalOnly {
            let ids: Vec<SentenceId> = state.tweetbase.iter().map(|r| r.sentence.id).collect();
            self.scan_and_pool(state, &ids);
            if self.config.ablation == Ablation::Full {
                self.classify_candidates(state, true);
            }
        }
        let mut per_sentence = Vec::with_capacity(state.tweetbase.len());
        for rec in state.tweetbase.iter() {
            let spans = match self.config.ablation {
                Ablation::LocalOnly => rec.local_spans.clone(),
                Ablation::MentionExtraction => rec.global_mentions.clone(),
                Ablation::Full => rec
                    .global_mentions
                    .iter()
                    .filter(|sp| {
                        let key = sp.surface_lower(&rec.sentence);
                        state
                            .candidates
                            .get(&key)
                            .map(|c| c.label == CandidateLabel::Entity)
                            .unwrap_or(false)
                    })
                    .copied()
                    .collect(),
            };
            per_sentence.push((rec.sentence.id, spans));
        }
        let n_entities = state
            .candidates
            .iter()
            .filter(|c| c.label == CandidateLabel::Entity)
            .count();
        GlobalizerOutput { per_sentence, n_candidates: state.candidates.len(), n_entities }
    }

    /// Convenience: run the whole pipeline over a fixed set of sentences in
    /// `batch_size`-message batches and return the final outputs along with
    /// the closing state (for error analysis).
    pub fn run(
        &self,
        sentences: &[Sentence],
        batch_size: usize,
    ) -> (GlobalizerOutput, GlobalizerState) {
        let mut state = self.new_state();
        for chunk in sentences.chunks(batch_size.max(1)) {
            self.process_batch(&mut state, chunk);
        }
        let out = self.finalize(&mut state);
        (out, state)
    }
}

/// Build pipeline state *without* classification — used to harvest
/// classifier training data (the classifier does not exist yet at that
/// point). Runs the local phase and the global rescan/pooling only.
pub fn index_stream(
    local: &dyn LocalEmd,
    phrase: Option<&PhraseEmbedder>,
    config: &GlobalizerConfig,
    sentences: &[Sentence],
) -> GlobalizerState {
    // A throwaway classifier satisfies the constructor; it is never called
    // because we stop before the classification stage.
    let dim = match phrase {
        Some(pe) if local.is_deep() => pe.out_dim(),
        _ => SyntacticClass::COUNT,
    };
    let dummy = EntityClassifier::new(dim + 1, 0);
    let g = Globalizer::new(local, phrase, &dummy, GlobalizerConfig {
        ablation: Ablation::MentionExtraction,
        ..config.clone()
    });
    let mut state = g.new_state();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    g.process_batch_parallel(&mut state, sentences, threads);
    // Closing rescan: candidates discovered late may have mentions in
    // earlier sentences (dedup in the pool makes this idempotent).
    let ids: Vec<SentenceId> = state.tweetbase.iter().map(|r| r.sentence.id).collect();
    g.scan_and_pool(&mut state, &ids);
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LexiconEmd;
    use emd_text::token::SentenceId;

    fn sents(msgs: &[&[&str]]) -> Vec<Sentence> {
        msgs.iter()
            .enumerate()
            .map(|(i, words)| {
                Sentence::from_tokens(SentenceId::new(i as u64, 0), words.iter().copied())
            })
            .collect()
    }

    /// A classifier trained to accept everything (bias trick), so tests can
    /// isolate the mention-extraction behaviour.
    fn accept_all(dim: usize) -> EntityClassifier {
        let mut c = EntityClassifier::new(dim, 0);
        use emd_nn::param::Net;
        let params = c.params_mut();
        let last = params.into_iter().last().unwrap();
        last.value.data[0] = 100.0;
        c
    }

    fn reject_all(dim: usize) -> EntityClassifier {
        let mut c = EntityClassifier::new(dim, 0);
        use emd_nn::param::Net;
        let params = c.params_mut();
        let last = params.into_iter().last().unwrap();
        last.value.data[0] = -100.0;
        c
    }

    #[test]
    fn recovers_missed_case_variants() {
        // Local EMD knows "Coronavirus" only in proper case... simulate by a
        // lexicon that misses nothing, but the point is the rescan: use a
        // lexicon EMD that only fires on exact "Coronavirus" casing.
        #[derive(Debug)]
        struct CaseSensitiveEmd;
        impl LocalEmd for CaseSensitiveEmd {
            fn name(&self) -> &str {
                "case-sensitive"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = s
                    .texts()
                    .enumerate()
                    .filter(|(_, t)| *t == "Coronavirus")
                    .map(|(i, _)| Span::new(i, i + 1))
                    .collect();
                crate::local::LocalEmdOutput { spans, token_embeddings: None }
            }
        }
        let local = CaseSensitiveEmd;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["Coronavirus", "spreads", "fast"],
            &["CORONAVIRUS", "cases", "rise"],
            &["the", "coronavirus", "is", "here"],
        ]);
        let (out, _) = g.run(&stream, 10);
        // Local found only tweet 0's mention; global recovers all three.
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(out.n_candidates, 1);
        assert_eq!(out.n_entities, 1);
    }

    #[test]
    fn classifier_filters_false_positives() {
        let local = LexiconEmd::new(["italy", "the"]); // "the" = false positive
        let clf = reject_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[&["the", "Italy", "report"]]);
        let (out, state) = g.run(&stream, 10);
        assert_eq!(out.n_candidates, 2);
        assert_eq!(out.n_entities, 0, "reject-all classifier must drop every candidate");
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 0);
        // Candidates carry scores after finalize.
        for c in state.candidates.iter() {
            assert!(c.score.is_some());
            assert_eq!(c.label, CandidateLabel::NonEntity);
        }
    }

    #[test]
    fn ablation_local_only_passes_through() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let cfg = GlobalizerConfig { ablation: Ablation::LocalOnly, ..Default::default() };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let stream = sents(&[&["Italy", "and", "ITALY"], &["nothing", "here"]]);
        let (out, _) = g.run(&stream, 10);
        // Lexicon matches case-insensitively, so 2 mentions from sentence 0.
        assert_eq!(out.per_sentence[0].1.len(), 2);
        assert_eq!(out.n_candidates, 0, "no global structures in LocalOnly mode");
    }

    #[test]
    fn ablation_mention_extraction_skips_classifier() {
        #[derive(Debug)]
        struct FirstOnlyEmd;
        impl LocalEmd for FirstOnlyEmd {
            fn name(&self) -> &str {
                "first-only"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                // Detects "Italy" only in the first sentence it appears in
                // proper case.
                let spans = s
                    .texts()
                    .enumerate()
                    .filter(|(_, t)| *t == "Italy")
                    .map(|(i, _)| Span::new(i, i + 1))
                    .collect();
                crate::local::LocalEmdOutput { spans, token_embeddings: None }
            }
        }
        let local = FirstOnlyEmd;
        let clf = reject_all(7); // would reject if consulted
        let cfg = GlobalizerConfig { ablation: Ablation::MentionExtraction, ..Default::default() };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let stream = sents(&[&["Italy", "rises"], &["italy", "again"]]);
        let (out, _) = g.run(&stream, 10);
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 2, "mention extraction emits all candidate mentions unfiltered");
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream: Vec<Sentence> = (0..40)
            .map(|i| {
                Sentence::from_tokens(
                    SentenceId::new(i, 0),
                    ["Italy", "fights", "covid", "again"],
                )
            })
            .collect();
        let mut s1 = g.new_state();
        g.process_batch(&mut s1, &stream);
        let out1 = g.finalize(&mut s1);
        let mut s2 = g.new_state();
        g.process_batch_parallel(&mut s2, &stream, 4);
        let out2 = g.finalize(&mut s2);
        assert_eq!(out1.per_sentence, out2.per_sentence);
    }

    #[test]
    fn incremental_batches_match_single_batch() {
        let local = LexiconEmd::new(["italy", "beshear", "covid"]);
        let clf = accept_all(7);
        let stream = sents(&[
            &["Italy", "reports", "cases"],
            &["covid", "in", "italy"],
            &["Beshear", "on", "Covid"],
            &["beshear", "speaks"],
        ]);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let (out_single, _) = g.run(&stream, 100);
        let (out_batched, _) = g.run(&stream, 1);
        let a: Vec<_> = out_single.per_sentence.iter().map(|(_, v)| v.clone()).collect();
        let b: Vec<_> = out_batched.per_sentence.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(a, b, "batching must not change final outputs");
    }

    #[test]
    fn late_candidate_found_in_early_sentence() {
        // "Beshear" is only detected locally in the LAST sentence; the
        // finalize rescan must recover its mention in the first sentence.
        #[derive(Debug)]
        struct LastOnly;
        impl LocalEmd for LastOnly {
            fn name(&self) -> &str {
                "last-only"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = if s.id.tweet_id == 2 {
                    s.texts()
                        .enumerate()
                        .filter(|(_, t)| t.eq_ignore_ascii_case("beshear"))
                        .map(|(i, _)| Span::new(i, i + 1))
                        .collect()
                } else {
                    vec![]
                };
                crate::local::LocalEmdOutput { spans, token_embeddings: None }
            }
        }
        let local = LastOnly;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["beshear", "speaks", "today"],
            &["no", "entities", "here"],
            &["Beshear", "again"],
        ]);
        let mut state = g.new_state();
        // One batch per sentence: candidate appears only at batch 3.
        for s in &stream {
            g.process_batch(&mut state, std::slice::from_ref(s));
        }
        let out = g.finalize(&mut state);
        assert_eq!(out.per_sentence[0].1.len(), 1, "early mention recovered at finalize");
        assert_eq!(out.per_sentence[2].1.len(), 1);
    }

    #[test]
    fn index_stream_builds_candidates_without_classification() {
        let local = LexiconEmd::new(["italy"]);
        let stream = sents(&[&["Italy", "x"], &["italy", "y"]]);
        let state = index_stream(&local, None, &GlobalizerConfig::default(), &stream);
        assert_eq!(state.candidates.len(), 1);
        let rec = state.candidates.get("italy").unwrap();
        assert_eq!(rec.frequency(), 2);
        assert_eq!(rec.label, CandidateLabel::Pending);
        assert_eq!(rec.n_pooled(), 2);
    }

    #[test]
    fn partial_extraction_corrected_end_to_end() {
        // Local EMD finds the full "Andy Beshear" in tweet 0 but only
        // "Andy" in tweet 1; global output must have the full span in both.
        #[derive(Debug)]
        struct PartialEmd;
        impl LocalEmd for PartialEmd {
            fn name(&self) -> &str {
                "partial"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = if s.id.tweet_id == 0 {
                    vec![Span::new(0, 2)]
                } else {
                    vec![Span::new(1, 2)] // just "Andy"
                };
                crate::local::LocalEmdOutput { spans, token_embeddings: None }
            }
        }
        let local = PartialEmd;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[&["Andy", "Beshear", "talks"], &["gov", "Andy", "Beshear", "walks"]]);
        let (out, _) = g.run(&stream, 10);
        assert!(out.per_sentence[1].1.contains(&Span::new(1, 3)), "full mention recovered");
    }
}
