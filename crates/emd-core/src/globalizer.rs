//! The EMD Globalizer pipeline: Local EMD → Global EMD orchestration.
//!
//! Execution follows Figure 2/3 of the paper. The pipeline is incremental:
//! a stream is consumed in batches via [`Globalizer::process_batch`]; seed
//! candidates accumulate in the CTrie, candidate pools grow as mentions
//! arrive, and [`Globalizer::finalize`] performs the closing rescan (old
//! sentences may contain mentions of candidates discovered later), resolves
//! the ambiguous γ band, and emits the final mention outputs.
//!
//! The closing rescan is *incremental*: the state tracks which stored
//! sentences could possibly be affected by candidates registered after
//! their last scan (via the [`TweetBase`] token inverted index — a new
//! candidate can only change sentences containing its first token), and
//! [`Globalizer::finalize`] rescans only those. The brute-force
//! [`Globalizer::finalize_full_rescan`] rescans everything and exists as
//! the reference the incremental path is tested bit-identical against.
//!
//! ## Failure model
//!
//! Every per-item unit of work (one sentence's local inference or ingest
//! staging, one record's rescan, one candidate's classification) is pure
//! with respect to pipeline state and runs inside a panic-isolation
//! boundary with a bounded retry budget
//! ([`GlobalizerConfig::poison_retries`]). State mutation happens only in
//! the sequential *apply* steps, which are infallible, so a caught panic
//! never leaves partial state behind. Items that exhaust their budget are
//! **quarantined** (sentences — diverted to the dead-letter buffer on
//! [`GlobalizerOutput::quarantined`]) or marked **degraded** (candidates —
//! emission falls back to the local system's own detections). Worker
//! shards are joined *unconditionally*; a panicked shard's work is re-run
//! on the caller thread, so one poisoned shard never aborts the batch or
//! leaks live threads. Fail points ([`emd_resilience::failpoint`]) at each
//! phase boundary drive the chaos test suite; they compile to nothing
//! without the `failpoints` feature.

use crate::candidatebase::{CandidateBase, CandidateRecord, MentionRef};
use crate::classifier::{CandidateLabel, EntityClassifier};
use crate::config::{Ablation, GlobalizerConfig};
use crate::ctrie::CTrie;
use crate::dirtyset::DirtySet;
use crate::local::LocalEmd;
use crate::mention::extract_mentions_into;
use crate::obs::{PhaseTimings, PipelineMetrics};
use crate::phrase_embedder::PhraseEmbedder;
use crate::tweetbase::{TweetBase, TweetRecord};
use emd_guard::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
use emd_obs::Timer;
use emd_resilience::quarantine::{PipelinePhase, QuarantineEntry};
use emd_resilience::{failpoint, isolate, validate};
use emd_sentinel::{AlertKind, BatchObservation, HealthReport, HealthState, Sentinel};
use emd_text::casing::{syntactic_class, SyntacticClass};
use emd_text::token::{Sentence, SentenceId, Span};
use emd_trace::{
    TraceAblation, TraceBreaker, TraceEvent, TraceEventKind, TraceHealth, TraceLabel, TracePhase,
    TraceSink,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

/// Elapsed nanoseconds since `t0`, saturating into a `u64`.
#[inline]
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Map a resilience phase onto the trace vocabulary (the trace crate is
/// dependency-free, so it cannot name `PipelinePhase` itself).
fn trace_phase(phase: PipelinePhase) -> TracePhase {
    match phase {
        PipelinePhase::LocalInference => TracePhase::LocalInfer,
        PipelinePhase::Ingest => TracePhase::Ingest,
        PipelinePhase::Scan => TracePhase::Scan,
        PipelinePhase::Classify => TracePhase::Classify,
        PipelinePhase::FinalizeRescan => TracePhase::FinalizeRescan,
        PipelinePhase::Supervisor => TracePhase::Supervisor,
        // Admission sheds happen before any pipeline phase runs; they are
        // attributed to the supervisor frame in the trace.
        PipelinePhase::Admission => TracePhase::Supervisor,
    }
}

/// Map a breaker state onto the trace vocabulary (the trace crate is
/// dependency-free, so it cannot name `BreakerState` itself).
fn trace_breaker(b: BreakerState) -> TraceBreaker {
    match b {
        BreakerState::Closed => TraceBreaker::Closed,
        BreakerState::Open => TraceBreaker::Open,
        BreakerState::HalfOpen => TraceBreaker::HalfOpen,
    }
}

fn trace_label(label: CandidateLabel) -> TraceLabel {
    match label {
        CandidateLabel::Pending => TraceLabel::Pending,
        CandidateLabel::Entity => TraceLabel::Entity,
        CandidateLabel::NonEntity => TraceLabel::NonEntity,
        CandidateLabel::Ambiguous => TraceLabel::Ambiguous,
    }
}

/// Map a sentinel health state onto the trace vocabulary (the trace
/// crate is dependency-free, so it cannot name `HealthState` itself).
fn trace_health(h: HealthState) -> TraceHealth {
    match h {
        HealthState::Healthy => TraceHealth::Healthy,
        HealthState::Degraded => TraceHealth::Degraded,
        HealthState::Critical => TraceHealth::Critical,
    }
}

fn trace_ablation(a: Ablation) -> TraceAblation {
    match a {
        Ablation::LocalOnly => TraceAblation::LocalOnly,
        Ablation::MentionExtraction => TraceAblation::MentionExtraction,
        Ablation::Full => TraceAblation::Full,
    }
}

/// `(tweet id, sentence index)` causal ID of a sentence.
fn tsid(sid: SentenceId) -> (u64, u32) {
    (sid.tweet_id, sid.sent_id)
}

/// `[start, end)` causal ID of a span.
fn tspan(sp: &Span) -> (u32, u32) {
    (sp.start as u32, sp.end as u32)
}

/// Adjacent-pair promotion evidence preserved from an evicted record: the
/// two candidate surfaces (lower-cased) and how many times they occurred
/// adjacent in sentences that have since been evicted. Folded into
/// [`Globalizer::finalize`]'s promotion search so bounding memory does not
/// silently erase multi-token-entity evidence. Kept as a vector (first
/// frozen first — evictions run oldest-first, so this is stream order of
/// first adjacency among evicted records) rather than a map, both for
/// deterministic iteration and because the checkpoint format is JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrozenAdjacency {
    /// Left candidate key (lower-cased, space-joined).
    pub first: String,
    /// Right candidate key.
    pub second: String,
    /// Adjacency occurrences in evicted sentences.
    pub count: u64,
}

/// Accumulated pipeline state across batches. Serializable: the
/// `StreamSupervisor` checkpoints it between batches so an interrupted
/// run can resume from the last completed batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalizerState {
    /// Per-sentence records.
    pub tweetbase: TweetBase,
    /// Seed candidate index.
    pub ctrie: CTrie,
    /// Per-candidate records with pooled global embeddings.
    pub candidates: CandidateBase,
    /// Stream-order indices of records whose stored `global_mentions` may
    /// be stale: never scanned yet, or a candidate whose first token they
    /// contain was registered after their last scan. Iterated in
    /// ascending (stream) order so rescans replay in stream order,
    /// keeping outputs bit-identical to a full sequential rescan. A
    /// bitset rather than an ordered tree: the mark-dirty fanout inserts
    /// millions of indices per million sentences, and the bitset insert
    /// is ~30x cheaper while checkpointing to the same sorted list.
    dirty: DirtySet,
    /// Cumulative per-phase wall-clock spent on this state, accumulated
    /// unconditionally (one clock read per phase call) and surfaced via
    /// [`GlobalizerOutput::phase_timings`].
    timings: PhaseTimings,
    /// Dead-letter log: sentences the pipeline gave up on, in
    /// deterministic stream/discovery order.
    pub quarantined: Vec<QuarantineEntry>,
    /// Stream-order indices of records quarantined *after* ingestion (a
    /// persistently failing rescan). They stay in the TweetBase so indices
    /// remain stable, but are excluded from dirtying, scans, promotion
    /// evidence, and emission.
    quarantined_idx: BTreeSet<usize>,
    /// Every sentence ID ever quarantined. Eviction frees a quarantined
    /// record's slot, but its ID stays here so a replayed copy of the
    /// sentence is never silently re-admitted — quarantine decisions are
    /// permanent for the lifetime of the state.
    quarantined_ids: HashSet<SentenceId>,
    /// Promotion evidence frozen out of evicted records (empty while
    /// windowing is disabled).
    frozen_adjacency: Vec<FrozenAdjacency>,
    /// Transient pair → ledger-position index over `frozen_adjacency`, so
    /// folding an evicted record is a hash probe instead of a linear scan
    /// of the whole ledger. Excluded from checkpoints (it is derivable)
    /// and lazily rebuilt whenever it is out of sync with the ledger,
    /// e.g. right after a checkpoint restore.
    #[serde(skip)]
    frozen_index: HashMap<(String, String), usize>,
    /// Slot index the next eviction sweep starts from. Evictions walk the
    /// slot vector oldest-first and never revisit freed slots, so this
    /// cursor makes each sweep O(batch), not O(history). Rebased by
    /// [`GlobalizerState::compact`].
    evict_cursor: usize,
    /// 1-based batch counter, advanced on every `process_batch` call
    /// (unconditionally, so traced and untraced runs stay aligned) and
    /// stamped into `BatchStart` trace events.
    pub(crate) batch_seq: u64,
    /// Trace sequence number at the last committed batch boundary. The
    /// supervisor checkpoints it so a restored run continues the
    /// interrupted run's event numbering instead of reusing it.
    pub(crate) trace_seq: u64,
}

impl GlobalizerState {
    /// Number of records currently awaiting a rescan (the dirty-set
    /// depth). Observable live, e.g. between batches.
    pub fn n_dirty(&self) -> usize {
        self.dirty.len()
    }

    /// Number of sentences quarantined so far.
    pub fn n_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// Cumulative per-phase wall-clock timings accumulated on this state
    /// so far.
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// Records evicted from the sentence store so far (0 unless windowing
    /// is enabled).
    pub fn n_evicted(&self) -> u64 {
        self.tweetbase.evicted_total()
    }

    /// Estimated resident bytes of the two big stores (sentence records +
    /// candidate pools). The quantity the `emd_window_resident_bytes`
    /// gauge reports.
    pub fn resident_bytes(&self) -> usize {
        self.tweetbase.resident_bytes() + self.candidates.resident_bytes()
    }

    /// Squeeze tombstone slots out of the sentence store, rebasing every
    /// index-keyed side structure (dirty set, post-ingest quarantine set,
    /// eviction cursor) onto the new dense indexing. Evicted slots in the
    /// quarantine set are dropped (their IDs remain in the permanent
    /// ID-level set). Returns the number of slots reclaimed.
    ///
    /// Called automatically by window enforcement once tombstones outnumber
    /// live records, and by the `StreamSupervisor` before checkpoint writes
    /// so checkpoint size — and restart cost — stays O(window).
    pub fn compact(&mut self) -> usize {
        let Some(remap) = self.tweetbase.compact() else {
            return 0;
        };
        let dropped = remap.iter().filter(|m| m.is_none()).count();
        self.dirty = self
            .dirty
            .iter()
            .filter_map(|i| remap.get(i).copied().flatten())
            .collect();
        self.quarantined_idx = self
            .quarantined_idx
            .iter()
            .filter_map(|&i| remap.get(i).copied().flatten())
            .collect();
        // The cursor moves to "number of live slots before the old cursor":
        // everything before it was either retained (now at a smaller index)
        // or reclaimed.
        self.evict_cursor = remap
            .iter()
            .take(self.evict_cursor.min(remap.len()))
            .filter(|m| m.is_some())
            .count();
        // Candidate-side sweep: mention refs pointing at sentences no
        // longer in the window are released (counts folded into the
        // cumulative frequencies). Piggybacking on compaction keeps the
        // stray-ref population O(window) at O(1) amortised cost.
        let live: HashSet<SentenceId> = self
            .tweetbase
            .iter_indexed()
            .map(|(_, rec)| rec.sentence.id)
            .collect();
        self.candidates.release_dead(|sid| live.contains(&sid));
        dropped
    }
}

/// Final (or interim) outputs of the framework. Serializable (the
/// experiment binaries persist it, timings included, to `results/` JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalizerOutput {
    /// Predicted mentions per sentence, in stream order.
    pub per_sentence: Vec<(SentenceId, Vec<Span>)>,
    /// Number of seed candidates discovered.
    pub n_candidates: usize,
    /// Number of candidates accepted as entities.
    pub n_entities: usize,
    /// Candidates created by adjacent-pair promotion at stream close.
    pub n_promoted: usize,
    /// Sentence scans performed by the closing rescan (for the incremental
    /// path this is usually far below the stream length).
    pub n_rescanned: usize,
    /// Cumulative per-phase wall-clock breakdown for the run that produced
    /// this output. Wall-clock only — never part of output equality
    /// comparisons (instrumented and uninstrumented runs are bit-identical
    /// in every other field).
    pub phase_timings: PhaseTimings,
    /// Dead-letter buffer: sentences the pipeline gave up on (poison
    /// input or persistent per-item faults). These sentences do not
    /// appear in `per_sentence`; operators drain this buffer for
    /// inspection or replay.
    pub quarantined: Vec<QuarantineEntry>,
    /// Candidates whose phrase embedding or classification failed
    /// persistently; their emission fell back to the local system's own
    /// detections (degraded LocalOnly behaviour).
    pub n_degraded: usize,
}

impl GlobalizerOutput {
    /// Flatten to a map for evaluation.
    pub fn as_map(&self) -> std::collections::HashMap<SentenceId, Vec<Span>> {
        self.per_sentence.iter().cloned().collect()
    }

    /// Provenance for one candidate key (lower-cased, space-joined): the
    /// full decision chain assembled from `events` — detection, pooling,
    /// verdicts, degradation, promotion — with the `emitted` flag taken
    /// from this output's ground truth (a traced mention of the candidate
    /// appears among the final spans) rather than inferred from the trace.
    /// The chain is empty when the candidate never appears in the trace
    /// (unknown key, or tracing was disabled during the run).
    pub fn explain(&self, candidate: &str, events: &[TraceEvent]) -> emd_trace::Explanation {
        let mut ex = emd_trace::explain::explain_from_trace(events, candidate);
        let map = self.as_map();
        ex.emitted = ex.chain.iter().any(|e| {
            e.kind == TraceEventKind::ScanMention
                && match (e.sid, e.span) {
                    (Some((tweet_id, sent_id)), Some(span)) => map
                        .get(&SentenceId::new(tweet_id, sent_id))
                        .is_some_and(|spans| spans.iter().any(|sp| tspan(sp) == span)),
                    _ => false,
                }
        });
        ex
    }
}

/// One staged rescan result, computed read-only (a rescan worker runs the
/// staging off-thread; the sequential apply step replays it).
struct StagedScan {
    /// Re-extracted mentions for the record.
    mentions: Vec<Span>,
    /// `(candidate key, mention, local embedding)` triples to pool.
    staged: Vec<(String, MentionRef, Vec<f32>)>,
    /// Candidate keys whose embedding computation panicked or produced
    /// non-finite values; a zero vector was pooled in its place and the
    /// apply step marks the candidate degraded.
    degraded_keys: Vec<String>,
}

/// Live monitoring attachment: the quality sentinel plus the raw counts
/// the current batch has accumulated so far. Behind a `Mutex` because
/// the count hooks fire from `&self` phase methods; every hook runs in a
/// sequential apply section, so the lock is uncontended in practice. A
/// lock poisoned by a panicked batch attempt is recovered (the counts
/// are reset at the next `start_batch` anyway, so a supervisor retry
/// discards the failed attempt's partial counts).
struct MonitorCell {
    sentinel: Sentinel,
    counts: BatchObservation,
    /// Sentences shed by the admission gate since the last batch started;
    /// folded into the next batch's observation (shed batches never run
    /// `start_batch` themselves).
    pending_shed: u64,
}

/// Overload-guard attachment: one circuit breaker per guarded phase, on
/// the batch-tick clock. Behind a `Mutex` for the same reason as
/// [`MonitorCell`] — breaker reads/records fire from `&self` phase
/// methods, each in a sequential section, so the lock is uncontended.
/// A breaker that is **Open** makes its phase take the degraded path
/// immediately: exactly the end state a persistent failure would have
/// produced, with zero retry burn (see DESIGN.md § "Degradation ladder").
struct GuardCell {
    /// Guards candidate classification; Open degrades unfrozen candidates
    /// to the LocalOnly emission fallback.
    classify: CircuitBreaker,
    /// Guards phrase embedding inside the scan; Open pools zero vectors
    /// and marks candidates degraded.
    pool: CircuitBreaker,
    /// Guards the closing rescan; Open quarantines the records instead of
    /// rescanning them.
    rescan: CircuitBreaker,
    /// Every transition taken, in order, for `RunReport` surfacing.
    transitions: Vec<(TracePhase, BreakerTransition)>,
}

impl GuardCell {
    fn breaker_mut(&mut self, phase: TracePhase) -> &mut CircuitBreaker {
        match phase {
            TracePhase::Classify => &mut self.classify,
            TracePhase::Pool => &mut self.pool,
            TracePhase::FinalizeRescan => &mut self.rescan,
            _ => unreachable!("no breaker guards {}", phase.name()),
        }
    }

    fn open_count(&self) -> u64 {
        [&self.classify, &self.pool, &self.rescan]
            .iter()
            .filter(|b| b.state() == BreakerState::Open)
            .count() as u64
    }
}

/// The three guarded phases, in reporting order.
const GUARDED_PHASES: [TracePhase; 3] = [
    TracePhase::Classify,
    TracePhase::Pool,
    TracePhase::FinalizeRescan,
];

/// The framework: a Local EMD plug-in, the Global EMD components, and the
/// configuration.
pub struct Globalizer<'a> {
    local: &'a dyn LocalEmd,
    /// Required iff the local system is deep.
    phrase: Option<&'a PhraseEmbedder>,
    classifier: &'a EntityClassifier,
    /// Pipeline configuration.
    pub config: GlobalizerConfig,
    /// Metric handles every phase records into. Defaults to the
    /// process-wide registry; see [`Globalizer::set_metrics`].
    metrics: PipelineMetrics,
    /// Trace sink decision events are pushed into when
    /// `emd_trace::enabled()`. Defaults to the process-wide ring; see
    /// [`Globalizer::set_trace`].
    trace: TraceSink,
    /// Attached quality sentinel, if any ([`Globalizer::set_sentinel`]).
    /// `None` (the default) means no per-batch counting and no clock
    /// reads on the sentinel's behalf.
    monitor: Option<Mutex<MonitorCell>>,
    /// Attached overload guard, if any ([`Globalizer::set_guard`]).
    /// `None` (the default) means every phase always runs — unguarded
    /// and guarded no-fault runs are bit-identical.
    guard: Option<Mutex<GuardCell>>,
}

impl<'a> Globalizer<'a> {
    /// Assemble a framework instance. Panics if a deep local system is given
    /// without a phrase embedder, or a non-deep one with an embedder of the
    /// wrong input dimension.
    pub fn new(
        local: &'a dyn LocalEmd,
        phrase: Option<&'a PhraseEmbedder>,
        classifier: &'a EntityClassifier,
        config: GlobalizerConfig,
    ) -> Globalizer<'a> {
        if let Some(d) = local.embedding_dim() {
            let pe = phrase.expect("deep Local EMD requires a PhraseEmbedder");
            assert_eq!(
                pe.in_dim(),
                d,
                "PhraseEmbedder input dim must match the local system"
            );
        }
        Globalizer {
            local,
            phrase,
            classifier,
            config,
            metrics: PipelineMetrics::global(),
            trace: emd_trace::global().clone(),
            monitor: None,
            guard: None,
        }
    }

    /// The metric handles this instance records into.
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Point the instrumentation at a private registry's handles instead
    /// of the process-wide default (isolated tests, side-by-side runs).
    pub fn set_metrics(&mut self, metrics: PipelineMetrics) {
        self.metrics = metrics;
    }

    /// Point the instrumentation at a per-stream [`emd_obs::Scope`]: every
    /// pipeline, guard, and sentinel metric this instance records lands in
    /// the scope's registry, so an [`emd_obs::ScopeSet`] roll-up renders
    /// this stream as its own labeled series next to the process
    /// aggregate. Purely an observability rebinding — pipeline behavior
    /// and outputs are unchanged.
    pub fn set_scope(&mut self, scope: &emd_obs::Scope) {
        self.metrics = PipelineMetrics::from_scope(scope);
    }

    /// The trace sink this instance pushes decision events into.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Point trace emission at a private sink instead of the process-wide
    /// ring (isolated tests, per-run trace capture).
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Attach a quality sentinel: every processed batch (and the closing
    /// finalize pass) folds one [`BatchObservation`] into it, drift
    /// detections become `DriftDetected` trace events, health changes
    /// become `HealthTransition` events, and the `emd_sentinel_*`
    /// metrics mirror the verdict. Monitoring is strictly passive — the
    /// sentinel never touches pipeline state, so monitored and
    /// unmonitored runs produce bit-identical outputs (proptest-enforced
    /// in `tests/sentinel_monitoring.rs`).
    pub fn set_sentinel(&mut self, sentinel: Sentinel) {
        self.monitor = Some(Mutex::new(MonitorCell {
            sentinel,
            counts: BatchObservation::default(),
            pending_shed: 0,
        }));
    }

    /// Attach the overload guard: one circuit breaker per guarded phase
    /// (classification, embedding pooling, finalize rescan), all under
    /// the same config, ticking on the batch clock. An Open breaker makes
    /// its phase take the degraded path immediately — the end state a
    /// persistent failure would have produced, without burning retry
    /// budgets — and an attached sentinel going Critical force-opens all
    /// three. In a fault-free run no breaker ever trips, so guarded and
    /// unguarded outputs are bit-identical (proptest-enforced in
    /// `tests/guard_runtime.rs`). Panics on an invalid config; use
    /// [`BreakerConfig::validate`] to pre-check.
    pub fn set_guard(&mut self, cfg: BreakerConfig) {
        if let Err(e) = cfg.validate() {
            panic!("invalid breaker config: {e}");
        }
        self.guard = Some(Mutex::new(GuardCell {
            classify: CircuitBreaker::new(cfg.clone()),
            pool: CircuitBreaker::new(cfg.clone()),
            rescan: CircuitBreaker::new(cfg),
            transitions: Vec::new(),
        }));
    }

    /// Whether an overload guard is attached.
    pub fn guarded(&self) -> bool {
        self.guard.is_some()
    }

    /// Lock the guard cell, recovering from poisoning (breaker state is
    /// always internally consistent — transitions are atomic under the
    /// lock).
    fn guard_lock(g: &Mutex<GuardCell>) -> std::sync::MutexGuard<'_, GuardCell> {
        g.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// True when the given guarded phase should run its real work; false
    /// (breaker Open) routes it down the degraded path. Unguarded
    /// instances always run everything.
    fn guard_allows(&self, phase: TracePhase) -> bool {
        match &self.guard {
            Some(g) => Self::guard_lock(g).breaker_mut(phase).allows(),
            None => true,
        }
    }

    /// Record one guarded pass's outcome against its breaker. `ok` is
    /// false when the pass saw at least one persistent failure. Emits any
    /// resulting transition.
    fn guard_record(&self, phase: TracePhase, ok: bool, reason: &str) {
        let Some(g) = &self.guard else { return };
        let t = {
            let mut cell = Self::guard_lock(g);
            let t = if ok {
                cell.breaker_mut(phase).record_success()
            } else {
                cell.breaker_mut(phase).record_failure(reason)
            };
            if let Some(t) = &t {
                cell.transitions.push((phase, t.clone()));
                self.metrics
                    .guard_breaker_open
                    .set(cell.open_count() as f64);
            }
            t
        };
        if let Some(t) = t {
            self.note_breaker_transition(phase, &t);
        }
    }

    /// Advance every breaker's batch clock by one tick, emitting
    /// Open → HalfOpen transitions whose cooldowns are served.
    fn guard_tick(&self) {
        let Some(g) = &self.guard else { return };
        let fired: Vec<(TracePhase, BreakerTransition)> = {
            let mut cell = Self::guard_lock(g);
            let fired: Vec<_> = GUARDED_PHASES
                .iter()
                .filter_map(|&p| cell.breaker_mut(p).tick().map(|t| (p, t)))
                .collect();
            if !fired.is_empty() {
                cell.transitions.extend(fired.iter().cloned());
                self.metrics
                    .guard_breaker_open
                    .set(cell.open_count() as f64);
            }
            fired
        };
        for (p, t) in &fired {
            self.note_breaker_transition(*p, t);
        }
    }

    /// Trip every breaker Open regardless of failure counts — the
    /// sentinel-Critical escalation hook.
    fn guard_force_open_all(&self, reason: &str) {
        let Some(g) = &self.guard else { return };
        let fired: Vec<(TracePhase, BreakerTransition)> = {
            let mut cell = Self::guard_lock(g);
            let fired: Vec<_> = GUARDED_PHASES
                .iter()
                .filter_map(|&p| cell.breaker_mut(p).force_open(reason).map(|t| (p, t)))
                .collect();
            cell.transitions.extend(fired.iter().cloned());
            self.metrics
                .guard_breaker_open
                .set(cell.open_count() as f64);
            fired
        };
        for (p, t) in &fired {
            self.note_breaker_transition(*p, t);
        }
    }

    /// Count (and trace) one breaker state change.
    fn note_breaker_transition(&self, phase: TracePhase, t: &BreakerTransition) {
        self.metrics.guard_breaker_transitions_total.inc();
        if emd_trace::enabled() {
            self.temit(TraceEvent {
                batch: Some(t.tick),
                phase: Some(phase),
                breaker: Some(trace_breaker(t.to)),
                reason: Some(t.reason.clone()),
                ..TraceEvent::of(TraceEventKind::BreakerTransition)
            });
        }
    }

    /// Every breaker transition taken so far, in order, as
    /// `(guarded phase, transition)` pairs. Empty when unguarded.
    pub fn guard_transitions(&self) -> Vec<(TracePhase, BreakerTransition)> {
        self.guard
            .as_ref()
            .map(|g| Self::guard_lock(g).transitions.clone())
            .unwrap_or_default()
    }

    /// Current breaker state per guarded phase, or `None` when unguarded.
    pub fn breaker_states(&self) -> Option<Vec<(TracePhase, BreakerState)>> {
        self.guard.as_ref().map(|g| {
            let mut cell = Self::guard_lock(g);
            GUARDED_PHASES
                .iter()
                .map(|&p| (p, cell.breaker_mut(p).state()))
                .collect()
        })
    }

    /// Record `sentences` shed by the admission gate; folded into the
    /// next batch's sentinel observation (the ShedRate series). No-op
    /// without a sentinel.
    pub fn note_shed(&self, sentences: u64) {
        if let Some(m) = &self.monitor {
            Self::mon_lock(m).pending_shed += sentences;
        }
    }

    /// The degraded LocalOnly answer for a batch that will never enter
    /// the pipeline (the `ShedToLocalOnly` admission policy): per-sentence
    /// local spans, panic-isolated exactly like the real local phase, with
    /// persistent failures yielding empty span lists. Touches no pipeline
    /// state.
    pub fn local_only_spans(&self, sentences: &[Sentence]) -> Vec<(SentenceId, Vec<Span>)> {
        sentences
            .iter()
            .map(|s| {
                let spans = match self.local_attempt(s) {
                    Ok(out) => out.spans,
                    Err(_) => Vec::new(),
                };
                (s.id, spans)
            })
            .collect()
    }

    /// Whether a sentinel is attached.
    pub fn monitored(&self) -> bool {
        self.monitor.is_some()
    }

    /// Current health state from the attached sentinel, if any.
    pub fn sentinel_health(&self) -> Option<HealthState> {
        self.monitor
            .as_ref()
            .map(|m| Self::mon_lock(m).sentinel.health())
    }

    /// End-of-run health summary from the attached sentinel, if any.
    pub fn sentinel_report(&self) -> Option<HealthReport> {
        self.monitor
            .as_ref()
            .map(|m| Self::mon_lock(m).sentinel.report())
    }

    /// Windowed-series export from the attached sentinel, if any, as an
    /// `emd-obs` snapshot riding the existing Prometheus/JSON exporters.
    pub fn sentinel_snapshot(&self) -> Option<emd_obs::Snapshot> {
        self.monitor
            .as_ref()
            .map(|m| Self::mon_lock(m).sentinel.snapshot())
    }

    /// Lock the monitor cell, recovering from poisoning (a panicked
    /// batch attempt leaves partial counts; `start_batch` resets them).
    fn mon_lock(m: &Mutex<MonitorCell>) -> std::sync::MutexGuard<'_, MonitorCell> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Run `f` over the current batch's raw counts iff a sentinel is
    /// attached. Count hooks live only in sequential apply sections.
    fn mon_count(&self, f: impl FnOnce(&mut BatchObservation)) {
        if let Some(m) = &self.monitor {
            f(&mut Self::mon_lock(m).counts);
        }
    }

    /// Fold the batch's accumulated counts into the sentinel, mirror the
    /// verdict into the `emd_sentinel_*` metrics, and emit
    /// `DriftDetected` / `HealthTransition` trace events. `closing`
    /// marks the finalize-time observation, which is normalized by the
    /// resident window size rather than a batch size. Reads pipeline
    /// state but never writes it — monitoring stays passive.
    fn observe_batch(&self, state: &GlobalizerState, t0: Option<Instant>, closing: bool) {
        let Some(m) = &self.monitor else { return };
        let observed = {
            let mut cell = Self::mon_lock(m);
            let mut counts = std::mem::take(&mut cell.counts);
            counts.batch = state.batch_seq;
            if closing {
                counts.sentences = state.tweetbase.len().max(1) as u64;
            }
            if let Some(t0) = t0 {
                counts.latency_ns = elapsed_ns(t0);
            }
            let observed = cell.sentinel.observe(&counts);
            self.metrics
                .sentinel_health
                .set(cell.sentinel.health().level() as f64);
            observed
        };
        self.metrics
            .sentinel_alerts_total
            .add(observed.alerts.len() as u64);
        let tracing = emd_trace::enabled();
        for a in &observed.alerts {
            if a.kind != AlertKind::Drift {
                continue;
            }
            self.metrics.sentinel_drift_total.inc();
            if tracing {
                self.temit(TraceEvent {
                    batch: Some(a.batch),
                    series: Some(a.series.name().to_string()),
                    score: Some(a.value as f32),
                    reason: Some(a.detail.clone()),
                    ..TraceEvent::of(TraceEventKind::DriftDetected)
                });
            }
        }
        // One SloBurn event per firing (slo, batch) pair — the trace
        // carries the whole burn interval, so `replay_slo` reconstructs
        // exactly when each objective was on fire and how hard.
        self.metrics
            .sentinel_slo_burn_total
            .add(observed.slo_burns.len() as u64);
        if tracing {
            for b in &observed.slo_burns {
                self.temit(TraceEvent {
                    batch: Some(b.batch),
                    series: Some(b.name.clone()),
                    score: Some(b.burn_fast as f32),
                    reason: Some(format!(
                        "burn_slow={:.2} threshold={}",
                        b.burn_slow, b.threshold
                    )),
                    ..TraceEvent::of(TraceEventKind::SloBurn)
                });
            }
        }
        if let Some(t) = &observed.transition {
            self.metrics.sentinel_transitions_total.inc();
            if tracing {
                self.temit(TraceEvent {
                    batch: Some(t.batch),
                    health: Some(trace_health(t.to)),
                    reason: Some(t.reason.clone()),
                    ..TraceEvent::of(TraceEventKind::HealthTransition)
                });
            }
            // Sense → act: a Critical stream force-opens every breaker,
            // so the next batches take the cheap degraded paths while the
            // storm passes (cooldown + probes decide when to re-engage).
            if t.to == HealthState::Critical {
                self.guard_force_open_all(&format!("sentinel critical: {}", t.reason));
            }
        }
    }

    /// Push one trace event, keeping the `emd_trace_*` meta-counters in
    /// step. Callers gate on `emd_trace::enabled()` *before* constructing
    /// the event, so the disabled path allocates nothing.
    fn temit(&self, ev: TraceEvent) -> Option<u64> {
        match self.trace.push(ev) {
            Some(seq) => {
                self.metrics.trace_events_total.inc();
                Some(seq)
            }
            None => {
                self.metrics.trace_dropped_events_total.inc();
                None
            }
        }
    }

    /// An RAII span over a phase histogram, tagged — when tracing is on —
    /// with the ring's next sequence number as the bucket's exemplar. The
    /// first event the phase emits gets that seq, so a latency bucket in
    /// the Prometheus export links straight to the trace events of a run
    /// that landed in it. Costs one relaxed load when tracing is off and
    /// nothing at all in noop metrics mode.
    fn phase_timer(&self, hist: &emd_obs::Histogram) -> Timer {
        Timer::start_tagged(hist, || emd_trace::enabled().then(|| self.trace.next_seq()))
    }

    /// Record a completed phase in the trace, reusing the wall-clock delta
    /// the timings bookkeeping already measured — tracing adds no clock
    /// read of its own, and none at all while disabled.
    fn trace_phase_span(&self, phase: TracePhase, parent: Option<TracePhase>, dur_ns: u64) {
        if emd_trace::enabled() {
            self.temit(TraceEvent {
                phase: Some(phase),
                parent,
                dur_ns: Some(dur_ns),
                system: (phase == TracePhase::LocalInfer).then(|| self.local.name().to_string()),
                ..TraceEvent::of(TraceEventKind::PhaseSpan)
            });
        }
    }

    /// Count (and trace) one panicked worker shard whose work was re-run
    /// on the caller thread.
    fn note_shard_retry(&self, phase: TracePhase) {
        self.metrics.shard_retries_total.inc();
        if emd_trace::enabled() {
            self.temit(TraceEvent {
                phase: Some(phase),
                ..TraceEvent::of(TraceEventKind::ShardRetry)
            });
        }
    }

    /// Dimensionality of candidate embeddings: the phrase-embedder output
    /// for deep systems, the 6-dim syntactic space otherwise.
    pub fn candidate_dim(&self) -> usize {
        match self.phrase {
            Some(pe) if self.local.is_deep() => pe.out_dim(),
            _ => SyntacticClass::COUNT,
        }
    }

    /// Fresh pipeline state.
    pub fn new_state(&self) -> GlobalizerState {
        let mut candidates = CandidateBase::new(self.candidate_dim());
        // Windowed mean pooling never reads the per-mention embedding
        // list (only the running sum), so skip storing it — it is the one
        // candidate-side structure that grows with stream length instead
        // of window size. Max pooling still needs the list and therefore
        // stays unbounded (documented in DESIGN.md).
        if self.config.window.enabled() && self.config.pooling == crate::config::Pooling::Mean {
            candidates.set_store_local(false);
        }
        GlobalizerState {
            tweetbase: TweetBase::new(),
            ctrie: CTrie::new(),
            candidates,
            dirty: DirtySet::new(),
            timings: PhaseTimings::default(),
            quarantined: Vec::new(),
            quarantined_idx: BTreeSet::new(),
            quarantined_ids: HashSet::new(),
            frozen_adjacency: Vec::new(),
            frozen_index: HashMap::new(),
            evict_cursor: 0,
            batch_seq: 0,
            trace_seq: 0,
        }
    }

    /// Total attempts per isolated unit of work.
    fn attempts(&self) -> usize {
        self.config.poison_retries + 1
    }

    /// Record `failed` panicking attempts against the retry counter.
    fn note_retries(&self, failed: usize) {
        if failed > 0 {
            self.metrics.item_retries_total.add(failed as u64);
            if emd_trace::enabled() {
                self.temit(TraceEvent {
                    count: Some(failed as u64),
                    ..TraceEvent::of(TraceEventKind::ItemRetry)
                });
            }
        }
    }

    /// Divert a sentence to the dead-letter log. When tracing is on, the
    /// `SentenceQuarantined` event's sequence number is linked back into
    /// the dead-letter entry, so an operator holding the entry can pull
    /// the sentence's full event history out of the trace.
    fn quarantine_sentence(
        &self,
        state: &mut GlobalizerState,
        sid: SentenceId,
        phase: PipelinePhase,
        reason: String,
    ) {
        self.metrics.quarantined_total.inc();
        self.mon_count(|c| c.quarantined += 1);
        let trace_event = if emd_trace::enabled() {
            self.temit(TraceEvent {
                sid: Some(tsid(sid)),
                phase: Some(trace_phase(phase)),
                reason: Some(reason.clone()),
                ..TraceEvent::of(TraceEventKind::SentenceQuarantined)
            })
        } else {
            None
        };
        state.quarantined_ids.insert(sid);
        state.quarantined.push(QuarantineEntry {
            sid,
            phase,
            reason,
            trace_event,
        });
    }

    /// Compute the local candidate embedding for the mention at `span` of
    /// the record in slot `idx` — phrase-embedding the token rows straight
    /// out of the store's flat arena for deep systems, the 6-dim syntactic
    /// one-hot otherwise.
    fn local_embedding(&self, tweetbase: &TweetBase, idx: usize, span: &Span) -> Vec<f32> {
        match (tweetbase.embedding_view(idx), self.phrase) {
            (Some(te), Some(pe)) => pe.embed_span_view(te, span),
            _ => {
                let record = tweetbase.get_by_index(idx);
                syntactic_class(&record.sentence, span).one_hot().to_vec()
            }
        }
    }

    /// One sentence's local inference, panic-isolated with the retry
    /// budget. Pure (no pipeline state touched), so a caught panic leaves
    /// nothing behind; used identically by the sequential and parallel
    /// local phases, keeping their failure behaviour bit-identical.
    fn local_attempt(&self, sentence: &Sentence) -> Result<crate::local::LocalEmdOutput, String> {
        let r = isolate::retry_catch(self.attempts(), || {
            failpoint::fire("local_inference");
            self.local.process(sentence)
        });
        self.note_retries(r.failed_attempts);
        r.result
    }

    /// **Local EMD phase** for one batch: run the plug-in per sentence,
    /// register seed candidates in the CTrie, store TweetBase records.
    fn local_phase(&self, state: &mut GlobalizerState, batch: &[Sentence]) {
        let t0 = Instant::now();
        let outputs: Vec<Result<crate::local::LocalEmdOutput, String>> = {
            let _span = self.phase_timer(&self.metrics.local_infer_ns);
            batch.iter().map(|s| self.local_attempt(s)).collect()
        };
        let dt = elapsed_ns(t0);
        state.timings.local_infer_ns += dt;
        self.trace_phase_span(TracePhase::LocalInfer, None, dt);
        self.metrics.sentences_total.add(batch.len() as u64);
        self.ingest_local_outputs(state, batch, outputs);
    }

    /// Local EMD phase with sentence-level parallelism: the batch is split
    /// across `n_threads` scoped threads (inference is `&self`), then the
    /// outputs are ingested sequentially in stream order, so results are
    /// bit-identical to the sequential path.
    ///
    /// Shards are joined unconditionally before any failure is acted on —
    /// a panicked shard must not leak the surviving worker threads — and a
    /// failed shard's sentences are re-run on the caller thread (the
    /// surviving "pool"), so one poisoned shard degrades to sequential
    /// work instead of aborting the batch.
    fn local_phase_parallel(
        &self,
        state: &mut GlobalizerState,
        batch: &[Sentence],
        n_threads: usize,
    ) {
        let n_threads = n_threads.max(1).min(batch.len().max(1));
        let chunk = batch.len().div_ceil(n_threads).max(1);
        let t0 = Instant::now();
        let mut outputs: Vec<Result<crate::local::LocalEmdOutput, String>> =
            Vec::with_capacity(batch.len());
        {
            let _span = self.phase_timer(&self.metrics.local_infer_ns);
            let chunks: Vec<&[Sentence]> = batch.chunks(chunk).collect();
            let shard_results: Vec<Option<Vec<_>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|part| {
                        scope.spawn(move || {
                            failpoint::fire("local_shard");
                            part.iter()
                                .map(|s| self.local_attempt(s))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().ok()).collect()
            });
            for (part, slot) in chunks.iter().zip(shard_results) {
                match slot {
                    Some(v) => outputs.extend(v),
                    None => {
                        self.note_shard_retry(TracePhase::LocalInfer);
                        outputs.extend(part.iter().map(|s| self.local_attempt(s)));
                    }
                }
            }
        }
        let dt = elapsed_ns(t0);
        state.timings.local_infer_ns += dt;
        self.trace_phase_span(TracePhase::LocalInfer, None, dt);
        self.metrics.sentences_total.add(batch.len() as u64);
        self.ingest_local_outputs(state, batch, outputs);
    }

    /// Validation + span sanitation for one sentence's local output,
    /// panic-isolated with the retry budget. Pure: the TweetBase / CTrie
    /// are untouched, so failures here quarantine cleanly.
    fn stage_ingest(
        &self,
        sentence: &Sentence,
        out: crate::local::LocalEmdOutput,
    ) -> Result<crate::local::LocalEmdOutput, String> {
        // The fallible, retried closure only *borrows* the output; the
        // output itself is moved exactly once, after validation succeeds.
        // (The previous shape parked it in an `Option` the closure took
        // out of, with `expect`s guarding the impossible half-consumed
        // states — a panic there would have defeated the isolation
        // machinery this path exists to provide.)
        let r = isolate::retry_catch(self.attempts(), || {
            failpoint::fire("ingest");
            validate::validate_sentence(sentence)?;
            if let Some(te) = &out.token_embeddings {
                if te.rows != sentence.len() {
                    return Err(format!(
                        "token embeddings have {} rows for {} tokens",
                        te.rows,
                        sentence.len()
                    ));
                }
                if !validate::all_finite(&te.data) {
                    return Err("non-finite token embedding values".to_string());
                }
            }
            Ok(validate::sanitize_spans(out.spans.clone(), sentence.len()))
        });
        self.note_retries(r.failed_attempts);
        let spans = r.result.and_then(|inner| inner)?;
        let mut out = out;
        out.spans = spans;
        Ok(out)
    }

    /// Register local outputs: store TweetBase records, seed the CTrie,
    /// mark possibly-affected sentences dirty.
    ///
    /// Local outputs are validated once here — a misbehaving local system
    /// can emit empty, overlapping, or out-of-bounds spans, oversized
    /// tokens, or non-finite embeddings, and letting them in would leak
    /// into `LocalOnly` outputs, inflate `locally_detected` counts, or
    /// poison candidate pools. Sentences whose local inference failed (or
    /// whose output fails validation) are quarantined and never enter the
    /// TweetBase. Records are stored for the *whole batch* before any
    /// candidate registration, so a candidate discovered at sentence `i`
    /// correctly dirties a later sentence of the same batch.
    fn ingest_local_outputs(
        &self,
        state: &mut GlobalizerState,
        batch: &[Sentence],
        outputs: Vec<Result<crate::local::LocalEmdOutput, String>>,
    ) {
        let t0 = Instant::now();
        let _span = self.phase_timer(&self.metrics.ingest_ns);
        // Stage (fallible, isolated, read-only) per sentence.
        let staged: Vec<Result<crate::local::LocalEmdOutput, (PipelinePhase, String)>> = batch
            .iter()
            .zip(outputs)
            .map(|(sentence, out)| match out {
                Err(reason) => Err((PipelinePhase::LocalInference, reason)),
                Ok(out) => self
                    .stage_ingest(sentence, out)
                    .map_err(|reason| (PipelinePhase::Ingest, reason)),
            })
            .collect();
        // Apply (infallible): store records, register candidates, dirty.
        let tracing = emd_trace::enabled();
        let mut n_local_spans = 0u64;
        let mut kept: Vec<Option<Vec<Span>>> = Vec::with_capacity(batch.len());
        for (sentence, st) in batch.iter().zip(staged) {
            match st {
                Err((phase, reason)) => {
                    self.quarantine_sentence(state, sentence.id, phase, reason);
                    kept.push(None);
                }
                Ok(out) => {
                    // Quarantine is permanent at the ID level: a replayed
                    // copy of a quarantined sentence must not re-enter the
                    // pipeline — not even after eviction freed the
                    // original record's slot.
                    if state.quarantined_ids.contains(&sentence.id) {
                        self.quarantine_sentence(
                            state,
                            sentence.id,
                            PipelinePhase::Ingest,
                            "sentence id was previously quarantined".to_string(),
                        );
                        kept.push(None);
                        continue;
                    }
                    n_local_spans += out.spans.len() as u64;
                    let idx = state.tweetbase.insert(TweetRecord::new(
                        sentence.clone(),
                        out.token_embeddings,
                        out.spans.clone(),
                    ));
                    state.dirty.insert(idx);
                    if tracing {
                        self.temit(TraceEvent {
                            sid: Some(tsid(sentence.id)),
                            count: Some(out.spans.len() as u64),
                            ..TraceEvent::of(TraceEventKind::SentenceAdmitted)
                        });
                        for sp in &out.spans {
                            self.temit(TraceEvent {
                                sid: Some(tsid(sentence.id)),
                                span: Some(tspan(sp)),
                                system: Some(self.local.name().to_string()),
                                ..TraceEvent::of(TraceEventKind::LocalDetect)
                            });
                        }
                    }
                    kept.push(Some(out.spans));
                }
            }
        }
        let trie_span = self.phase_timer(&self.metrics.trie_register_ns);
        let mut n_inserted = 0u64;
        for (sentence, spans) in batch.iter().zip(&kept) {
            let Some(spans) = spans else { continue };
            for sp in spans {
                if sp.len() <= self.config.max_candidate_len {
                    let toks: Vec<&str> = (sp.start..sp.end)
                        .map(|i| sentence.tokens[i].text.as_str())
                        .collect();
                    if state.ctrie.insert(state.tweetbase.interner_mut(), &toks) {
                        n_inserted += 1;
                        if tracing {
                            self.temit(TraceEvent {
                                sid: Some(tsid(sentence.id)),
                                span: Some(tspan(sp)),
                                candidate: Some(toks.join(" ").to_lowercase()),
                                phase: Some(TracePhase::TrieRegister),
                                ..TraceEvent::of(TraceEventKind::TrieInsert)
                            });
                        }
                        Self::mark_dirty(state, toks[0]);
                    }
                }
            }
        }
        drop(trie_span);
        self.metrics.local_spans_total.add(n_local_spans);
        self.metrics.trie_inserts_total.add(n_inserted);
        self.mon_count(|c| {
            c.local_spans += n_local_spans;
            c.trie_inserts += n_inserted;
        });
        let dt = elapsed_ns(t0);
        state.timings.ingest_ns += dt;
        self.trace_phase_span(TracePhase::Ingest, None, dt);
    }

    /// Mark every stored sentence containing the candidate's first token
    /// as needing a rescan: a candidate insertion can only change a
    /// sentence's extraction if the sentence contains that token.
    /// Quarantined records are permanently excluded. Resolves the token
    /// through the interner (any casing); an unknown token occurs in no
    /// stored sentence, so there is nothing to dirty.
    fn mark_dirty(state: &mut GlobalizerState, first_token: &str) {
        let Some(sym) = state.tweetbase.interner().lookup_folded(first_token) else {
            return;
        };
        for &i in state.tweetbase.indices_with_sym(sym) {
            if !state.quarantined_idx.contains(&i) {
                state.dirty.insert(i);
            }
        }
    }

    /// Mention extraction + embedding staging for one record (read-only; a
    /// rescan worker runs this off-thread). `phase_fp` is the fail-point
    /// name for the calling phase (batch scan vs finalize rescan).
    ///
    /// The phrase-embedder call is individually isolated: if it panics or
    /// produces non-finite values for a mention, a zero vector is pooled
    /// in its place and the candidate is flagged degraded instead of the
    /// whole record being quarantined.
    fn stage_scan(
        &self,
        tweetbase: &TweetBase,
        ctrie: &CTrie,
        idx: usize,
        phase_fp: &str,
        embed_allowed: bool,
    ) -> StagedScan {
        failpoint::fire(phase_fp);
        let record = tweetbase.get_by_index(idx);
        // Symbol-level trie walk over the record's pre-interned folded
        // tokens: no case folding, no string hashing, no per-token
        // allocation — the vector below becomes the record's stored
        // mention list.
        let mut mentions = Vec::new();
        extract_mentions_into(
            ctrie,
            &record.tok_syms,
            self.config.max_candidate_len,
            &mut mentions,
        );
        let mut degraded_keys = Vec::new();
        let staged = mentions
            .iter()
            .map(|sp| {
                let key = sp.surface_lower(&record.sentence);
                // Pool breaker Open: skip the embedder outright; zero
                // vector + degraded is exactly the persistent-failure end
                // state, minus the retry burn.
                let emb = if !embed_allowed {
                    degraded_keys.push(key.clone());
                    vec![0.0; self.candidate_dim()]
                } else {
                    match isolate::catch(|| {
                        failpoint::fire("phrase_embed");
                        self.local_embedding(tweetbase, idx, sp)
                    }) {
                        Ok(emb) if validate::all_finite(&emb) => emb,
                        _ => {
                            degraded_keys.push(key.clone());
                            vec![0.0; self.candidate_dim()]
                        }
                    }
                };
                let locally_detected = record.local_spans.iter().any(|l| l == sp);
                (
                    key,
                    MentionRef {
                        sid: record.sentence.id,
                        span: *sp,
                        locally_detected,
                    },
                    emb,
                )
            })
            .collect();
        StagedScan {
            mentions,
            staged,
            degraded_keys,
        }
    }

    /// One record's staging, panic-isolated with the retry budget.
    fn scan_attempt(
        &self,
        tweetbase: &TweetBase,
        ctrie: &CTrie,
        idx: usize,
        phase_fp: &str,
        embed_allowed: bool,
    ) -> Result<StagedScan, String> {
        let r = isolate::retry_catch(self.attempts(), || {
            self.stage_scan(tweetbase, ctrie, idx, phase_fp, embed_allowed)
        });
        self.note_retries(r.failed_attempts);
        r.result
    }

    /// **Mention extraction + embedding pooling** over the given record
    /// indices. New mentions (not yet in the CandidateBase) contribute
    /// their local embeddings to the candidate pool; scanned records are
    /// cleared from the dirty set.
    ///
    /// Extraction and embedding are read-only, so with `n_threads > 1` the
    /// indices are sharded across scoped threads; the *apply* step replays
    /// the staged results sequentially in the order given (callers pass
    /// ascending stream order), which keeps pool-append order — and with it
    /// every f32 sum and the candidate discovery order — bit-identical to
    /// the sequential path.
    ///
    /// Failure handling: shards are joined unconditionally (no leaked
    /// threads); a panicked shard's records are re-staged on the caller
    /// thread; a record whose staging exhausts the retry budget is
    /// quarantined — its stale `global_mentions` are dropped so it can no
    /// longer feed promotions or emission.
    fn scan_records(
        &self,
        state: &mut GlobalizerState,
        indices: &[usize],
        n_threads: usize,
        phase: PipelinePhase,
    ) {
        if indices.is_empty() {
            return;
        }
        // Rescan breaker Open: the records take the persistent-failure
        // path — quarantined with their stale mentions dropped — without
        // staging anything.
        if phase == PipelinePhase::FinalizeRescan && !self.guard_allows(TracePhase::FinalizeRescan)
        {
            for &idx in indices {
                let sid = state.tweetbase.get_by_index(idx).sentence.id;
                self.quarantine_sentence(state, sid, phase, "rescan breaker open".to_string());
                state.quarantined_idx.insert(idx);
                state.dirty.remove(idx);
                state.tweetbase.get_mut_by_index(idx).global_mentions = Vec::new();
            }
            return;
        }
        let embed_allowed = self.guard_allows(TracePhase::Pool);
        let phase_fp = match phase {
            PipelinePhase::FinalizeRescan => "finalize_rescan",
            _ => "scan",
        };
        let tphase = trace_phase(phase);
        // Finalize-time scans nest under the finalize frame in the flame
        // view; batch-time scans are top-level.
        let tparent = (phase == PipelinePhase::FinalizeRescan).then_some(TracePhase::Finalize);
        self.metrics.scan_records_total.add(indices.len() as u64);
        let t_scan = Instant::now();
        let results: Vec<(usize, Result<StagedScan, String>)> = {
            let _span = self.phase_timer(&self.metrics.scan_ns);
            let tweetbase = &state.tweetbase;
            let ctrie = &state.ctrie;
            let n_threads = n_threads.max(1).min(indices.len());
            if n_threads == 1 {
                let _shard = Timer::start(&self.metrics.scan_shard_ns);
                indices
                    .iter()
                    .map(|&i| {
                        (
                            i,
                            self.scan_attempt(tweetbase, ctrie, i, phase_fp, embed_allowed),
                        )
                    })
                    .collect()
            } else {
                let chunk = indices.len().div_ceil(n_threads);
                let chunks: Vec<&[usize]> = indices.chunks(chunk).collect();
                let shard_results: Vec<Option<Vec<_>>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .iter()
                        .map(|part| {
                            scope.spawn(move || {
                                let _shard = Timer::start(&self.metrics.scan_shard_ns);
                                failpoint::fire("scan_shard");
                                part.iter()
                                    .map(|&i| {
                                        (
                                            i,
                                            self.scan_attempt(
                                                tweetbase,
                                                ctrie,
                                                i,
                                                phase_fp,
                                                embed_allowed,
                                            ),
                                        )
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().ok()).collect()
                });
                let mut results = Vec::with_capacity(indices.len());
                for (part, slot) in chunks.iter().zip(shard_results) {
                    match slot {
                        Some(v) => results.extend(v),
                        None => {
                            self.note_shard_retry(tphase);
                            results.extend(part.iter().map(|&i| {
                                (
                                    i,
                                    self.scan_attempt(tweetbase, ctrie, i, phase_fp, embed_allowed),
                                )
                            }));
                        }
                    }
                }
                results
            }
        };
        let dt_scan = elapsed_ns(t_scan);
        state.timings.scan_ns += dt_scan;
        self.trace_phase_span(tphase, tparent, dt_scan);
        let tracing = emd_trace::enabled();
        let t_pool = Instant::now();
        let _pool_span = self.phase_timer(&self.metrics.pool_ns);
        let mut n_mentions = 0u64;
        let mut n_pooled = 0u64;
        let mut n_scan_degraded = 0u64;
        let mut n_scan_quarantined = 0u64;
        for (idx, outcome) in results {
            match outcome {
                Ok(st) => {
                    n_mentions += st.mentions.len() as u64;
                    n_scan_degraded += st.degraded_keys.len() as u64;
                    if tracing {
                        self.temit(TraceEvent {
                            sid: Some(tsid(state.tweetbase.get_by_index(idx).sentence.id)),
                            count: Some(st.mentions.len() as u64),
                            phase: Some(tphase),
                            ..TraceEvent::of(TraceEventKind::ScanRecord)
                        });
                    }
                    state.tweetbase.get_mut_by_index(idx).global_mentions = st.mentions;
                    state.dirty.remove(idx);
                    for (key, mref, emb) in st.staged {
                        let rec = state.candidates.entry(&key);
                        let pooled = rec.try_add_mention(mref);
                        if pooled {
                            rec.add_embedding(&emb);
                            n_pooled += 1;
                        }
                        if tracing {
                            self.temit(TraceEvent {
                                sid: Some(tsid(mref.sid)),
                                span: Some(tspan(&mref.span)),
                                candidate: Some(key),
                                pooled: Some(pooled),
                                local_hit: Some(mref.locally_detected),
                                phase: Some(tphase),
                                ..TraceEvent::of(TraceEventKind::ScanMention)
                            });
                        }
                    }
                    for key in st.degraded_keys {
                        state.candidates.entry(&key).degraded = true;
                        if tracing {
                            self.temit(TraceEvent {
                                candidate: Some(key),
                                phase: Some(tphase),
                                reason: Some(
                                    "phrase embedding failed; zero vector pooled".to_string(),
                                ),
                                ..TraceEvent::of(TraceEventKind::CandidateDegraded)
                            });
                        }
                    }
                }
                Err(reason) => {
                    let sid = state.tweetbase.get_by_index(idx).sentence.id;
                    self.quarantine_sentence(state, sid, phase, reason);
                    state.quarantined_idx.insert(idx);
                    state.dirty.remove(idx);
                    n_scan_quarantined += 1;
                    // Drop stale evidence: a quarantined record's old
                    // mentions must not feed promotions or emission.
                    state.tweetbase.get_mut_by_index(idx).global_mentions = Vec::new();
                }
            }
        }
        self.metrics.scan_mentions_total.add(n_mentions);
        self.metrics.pool_embeddings_total.add(n_pooled);
        self.mon_count(|c| {
            c.scan_mentions += n_mentions;
            c.pooled += n_pooled;
            c.degraded += n_scan_degraded;
        });
        self.guard_record(
            TracePhase::Pool,
            n_scan_degraded == 0,
            "phrase embedding failed persistently",
        );
        if phase == PipelinePhase::FinalizeRescan {
            self.guard_record(
                TracePhase::FinalizeRescan,
                n_scan_quarantined == 0,
                "record rescan failed persistently",
            );
        }
        let dt_pool = elapsed_ns(t_pool);
        state.timings.pool_ns += dt_pool;
        self.trace_phase_span(TracePhase::Pool, tparent, dt_pool);
    }

    /// Score candidates. Confident verdicts (α/β) freeze; ambiguous ones
    /// are re-scored on later calls with their (sharper) updated pools.
    ///
    /// At end of stream (`resolve_ambiguous`), candidates still in the γ
    /// band get their final verdict: accept when the score clears
    /// `final_threshold`, otherwise fall back to the Local EMD system's own
    /// judgment — if the local system itself detected at least half of the
    /// candidate's mentions, the global evidence is too weak to overrule it
    /// (the paper: "it is rare that an entity found by Local EMD is missed
    /// at the global step").
    /// Scoring is per-candidate and read-only, so with `n_threads > 1` the
    /// unfrozen candidates are sharded across scoped threads; labels and
    /// scores are then applied sequentially in discovery order (label
    /// decisions never depend on other candidates, but the sequential apply
    /// keeps the state evolution identical to the single-threaded path).
    fn classify_candidates(
        &self,
        state: &mut GlobalizerState,
        resolve_ambiguous: bool,
        n_threads: usize,
    ) {
        let t0 = Instant::now();
        let _span = self.phase_timer(&self.metrics.classify_ns);
        // Breaker Open: skip scoring outright and give every unfrozen
        // candidate the end state a persistent classifier failure would
        // have produced — degraded, emission falling back to the local
        // system's detections — with zero retry burn.
        if !self.guard_allows(TracePhase::Classify) {
            let tracing = emd_trace::enabled();
            let mut n_skipped = 0u64;
            for rec in state.candidates.iter_mut() {
                if matches!(
                    rec.label,
                    CandidateLabel::Entity | CandidateLabel::NonEntity
                ) {
                    continue;
                }
                rec.degraded = true;
                n_skipped += 1;
                if tracing {
                    self.temit(TraceEvent {
                        candidate: Some(rec.key.clone()),
                        phase: Some(TracePhase::Classify),
                        reason: Some("classify breaker open".to_string()),
                        ..TraceEvent::of(TraceEventKind::CandidateDegraded)
                    });
                }
            }
            self.mon_count(|c| c.degraded += n_skipped);
            let dt = elapsed_ns(t0);
            state.timings.classify_ns += dt;
            self.trace_phase_span(
                TracePhase::Classify,
                resolve_ambiguous.then_some(TracePhase::Finalize),
                dt,
            );
            return;
        }
        // Scoring is pure, so it runs panic-isolated with the retry
        // budget; a candidate whose scoring fails persistently keeps its
        // previous label and is marked degraded (emission then falls back
        // to the local system's own detections for it).
        let score_one = |rec: &CandidateRecord| -> Result<f32, String> {
            let r = isolate::retry_catch(self.attempts(), || {
                failpoint::fire("classify");
                let feats = EntityClassifier::features(
                    &rec.pooled_embedding(self.config.pooling),
                    rec.token_len(),
                );
                self.classifier.predict(&feats)
            });
            self.note_retries(r.failed_attempts);
            r.result
        };
        // Phase 1 (parallelizable): score every unfrozen candidate.
        let scores: Vec<Option<Result<f32, String>>> = {
            let pending: Vec<Option<&CandidateRecord>> = state
                .candidates
                .iter()
                .map(|rec| match rec.label {
                    CandidateLabel::Entity | CandidateLabel::NonEntity => None,
                    _ => Some(rec),
                })
                .collect();
            let n_threads = n_threads.max(1).min(pending.len().max(1));
            if n_threads == 1 {
                pending.iter().map(|o| o.map(&score_one)).collect()
            } else {
                let chunk = pending.len().div_ceil(n_threads);
                let chunks: Vec<&[Option<&CandidateRecord>]> = pending.chunks(chunk).collect();
                let score_ref = &score_one;
                let shard_results: Vec<Option<Vec<_>>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .iter()
                        .map(|part| {
                            scope.spawn(move || {
                                failpoint::fire("classify_shard");
                                part.iter().map(|o| o.map(score_ref)).collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().ok()).collect()
                });
                let mut scores = Vec::with_capacity(pending.len());
                for (part, slot) in chunks.iter().zip(shard_results) {
                    match slot {
                        Some(v) => scores.extend(v),
                        None => {
                            self.note_shard_retry(TracePhase::Classify);
                            scores.extend(part.iter().map(|o| o.map(score_ref)));
                        }
                    }
                }
                scores
            }
        };
        // Phase 2 (sequential): apply labels in discovery order.
        let tracing = emd_trace::enabled();
        let mut n_scored = 0u64;
        let mut n_accepted = 0u64;
        let mut n_rejected = 0u64;
        let mut n_ambiguous = 0u64;
        let mut n_cls_degraded = 0u64;
        let mut score_sum = 0.0f64;
        for (rec, p) in state.candidates.iter_mut().zip(scores) {
            let Some(p) = p else { continue };
            let p = match p {
                Ok(p) => p,
                Err(reason) => {
                    rec.degraded = true;
                    n_cls_degraded += 1;
                    if tracing {
                        self.temit(TraceEvent {
                            candidate: Some(rec.key.clone()),
                            phase: Some(TracePhase::Classify),
                            reason: Some(reason),
                            ..TraceEvent::of(TraceEventKind::CandidateDegraded)
                        });
                    }
                    continue;
                }
            };
            n_scored += 1;
            rec.score = Some(p);
            rec.label = EntityClassifier::classify(p, &self.config);
            if resolve_ambiguous && rec.label == CandidateLabel::Ambiguous {
                // Cumulative ratios (evicted mentions included), so the
                // verdict matches the unbounded run's.
                let locally = rec.locally_detected_frequency();
                let trust_local =
                    self.config.trust_local_fallback && 2 * locally >= rec.frequency().max(1);
                rec.label = if p >= self.config.final_threshold || trust_local {
                    CandidateLabel::Entity
                } else {
                    CandidateLabel::NonEntity
                };
            }
            score_sum += p as f64;
            match rec.label {
                CandidateLabel::Entity => n_accepted += 1,
                CandidateLabel::NonEntity => n_rejected += 1,
                _ => n_ambiguous += 1,
            }
            if tracing {
                self.temit(TraceEvent {
                    candidate: Some(rec.key.clone()),
                    score: Some(p),
                    label: Some(trace_label(rec.label)),
                    final_verdict: Some(resolve_ambiguous),
                    phase: Some(TracePhase::Classify),
                    ..TraceEvent::of(TraceEventKind::Verdict)
                });
            }
        }
        self.metrics.classify_candidates_total.add(n_scored);
        self.mon_count(|c| {
            c.scored += n_scored;
            c.accepted += n_accepted;
            c.rejected += n_rejected;
            c.ambiguous += n_ambiguous;
            c.score_sum += score_sum;
            c.degraded += n_cls_degraded;
        });
        self.guard_record(
            TracePhase::Classify,
            n_cls_degraded == 0,
            "candidate scoring failed persistently",
        );
        let dt = elapsed_ns(t0);
        state.timings.classify_ns += dt;
        self.trace_phase_span(
            TracePhase::Classify,
            resolve_ambiguous.then_some(TracePhase::Finalize),
            dt,
        );
    }

    /// Consume one batch of the stream: Local EMD, candidate registration,
    /// mention extraction over the batch, pooling, and an interim
    /// classification pass (γ candidates stay pending).
    pub fn process_batch(&self, state: &mut GlobalizerState, batch: &[Sentence]) {
        // Clock read only on the sentinel's behalf; unmonitored runs pay
        // nothing here.
        let t0 = self.monitor.is_some().then(Instant::now);
        self.start_batch(state, batch);
        self.local_phase(state, batch);
        self.global_stage(state, batch);
        self.enforce_window(state);
        self.observe_batch(state, t0, false);
    }

    /// Advance the batch counter (always — traced and untraced runs must
    /// agree on batch IDs) and delimit the batch in the trace.
    fn start_batch(&self, state: &mut GlobalizerState, batch: &[Sentence]) {
        state.batch_seq += 1;
        // A fresh count frame per batch; this also discards partial
        // counts left behind by a panicked (supervisor-retried) attempt.
        // Sheds recorded since the last batch ride along (shed batches
        // never start a frame of their own).
        if let Some(m) = &self.monitor {
            let mut cell = Self::mon_lock(m);
            let shed = std::mem::take(&mut cell.pending_shed);
            cell.counts = BatchObservation {
                batch: state.batch_seq,
                sentences: batch.len() as u64,
                shed,
                ..BatchObservation::default()
            };
        }
        self.guard_tick();
        if emd_trace::enabled() {
            self.temit(TraceEvent {
                batch: Some(state.batch_seq),
                count: Some(batch.len() as u64),
                ..TraceEvent::of(TraceEventKind::BatchStart)
            });
        }
    }

    /// Like [`Globalizer::process_batch`] but runs Local EMD inference on
    /// `n_threads` scoped threads. Outputs are identical to the sequential
    /// path (ingestion stays in stream order).
    pub fn process_batch_parallel(
        &self,
        state: &mut GlobalizerState,
        batch: &[Sentence],
        n_threads: usize,
    ) {
        let t0 = self.monitor.is_some().then(Instant::now);
        self.start_batch(state, batch);
        self.local_phase_parallel(state, batch, n_threads);
        self.global_stage(state, batch);
        self.enforce_window(state);
        self.observe_batch(state, t0, false);
    }

    fn global_stage(&self, state: &mut GlobalizerState, batch: &[Sentence]) {
        if self.config.ablation == Ablation::LocalOnly {
            return;
        }
        // Sentences quarantined at local/ingest never entered the
        // TweetBase, so `index_of` filters them out here; records
        // quarantined by an earlier scan are excluded explicitly.
        let indices: Vec<usize> = batch
            .iter()
            .filter_map(|s| state.tweetbase.index_of(s.id))
            .filter(|i| !state.quarantined_idx.contains(i))
            .collect();
        self.scan_records(state, &indices, 1, PipelinePhase::Scan);
        if self.config.ablation == Ablation::Full {
            self.classify_candidates(state, false, 1);
        }
    }

    /// **Window enforcement** (end of every batch, no-op unless
    /// [`crate::config::WindowConfig::enabled`]): evict the oldest live
    /// records beyond the window — settling still-dirty ones with one last
    /// rescan first, and freezing their adjacency evidence for the
    /// promotion search — then prune cold candidates whose every mention
    /// has been evicted (removing their CTrie paths), and compact the slot
    /// vector once tombstones outnumber live records. Candidate pools are
    /// never rolled back: an evicted mention's contribution to pooled
    /// global embeddings, frequencies, and frozen verdicts is exactly the
    /// "global context" the paper accumulates — only the *text* is freed.
    fn enforce_window(&self, state: &mut GlobalizerState) {
        let w = self.config.window;
        if !w.enabled() {
            return;
        }
        let t0 = Instant::now();
        let _span = self.phase_timer(&self.metrics.evict_ns);
        if state.tweetbase.len() > w.max_sentences {
            let excess = state.tweetbase.len() - w.max_sentences;
            // Victims: the oldest live slots, ascending (= stream order).
            let mut victims = Vec::with_capacity(excess);
            let mut cursor = state.evict_cursor;
            while victims.len() < excess {
                match state.tweetbase.first_live_from(cursor) {
                    Some(i) => {
                        victims.push(i);
                        cursor = i + 1;
                    }
                    None => break,
                }
            }
            state.evict_cursor = cursor;
            // Settle: a victim still in the dirty set may be missing
            // mentions of candidates registered after its last scan; give
            // it the rescan finalize would have, while its text is still
            // here. (Pointless for LocalOnly — no global structures.)
            if w.settle_before_evict && self.config.ablation != Ablation::LocalOnly {
                let settle: Vec<usize> = victims
                    .iter()
                    .copied()
                    .filter(|i| state.dirty.contains(*i))
                    .collect();
                self.scan_records(state, &settle, 1, PipelinePhase::Scan);
            }
            let tracing = emd_trace::enabled();
            let mut n_evicted = 0u64;
            for &i in &victims {
                state.dirty.remove(i);
                // `quarantined_idx` keeps the index: the slot is never
                // reused for a live record, and compaction drops it.
                if let Some(rec) = state.tweetbase.evict(i) {
                    self.freeze_adjacency(state, &rec);
                    self.metrics.evicted_records_total.inc();
                    n_evicted += 1;
                    if tracing {
                        self.temit(TraceEvent {
                            sid: Some(tsid(rec.sentence.id)),
                            count: Some(rec.global_mentions.len() as u64),
                            phase: Some(TracePhase::Evict),
                            ..TraceEvent::of(TraceEventKind::SentenceEvicted)
                        });
                    }
                }
            }
            self.mon_count(|c| c.evicted += n_evicted);
            self.prune_candidates(state, w.prune_max_frequency);
            // Amortized O(1): compacting costs O(live + tombstones) and
            // only runs once tombstones outnumber live records.
            if state.tweetbase.n_slots() - state.tweetbase.len() > state.tweetbase.len() {
                let dropped = state.compact();
                if dropped > 0 {
                    self.metrics.compactions_total.inc();
                    if tracing {
                        self.temit(TraceEvent {
                            count: Some(dropped as u64),
                            phase: Some(TracePhase::Evict),
                            ..TraceEvent::of(TraceEventKind::StateCompacted)
                        });
                    }
                }
            }
        }
        self.metrics.window_depth.set(state.tweetbase.len() as f64);
        if emd_obs::enabled() {
            // The byte estimate walks both stores; skip it entirely for
            // uninstrumented runs.
            self.metrics
                .resident_bytes
                .set(state.resident_bytes() as f64);
        }
        let dt = elapsed_ns(t0);
        state.timings.evict_ns += dt;
        self.trace_phase_span(TracePhase::Evict, None, dt);
    }

    /// Fold an evicted record's adjacent-pair occurrences into the frozen
    /// ledger (see [`FrozenAdjacency`]). Quarantined records hold no
    /// `global_mentions`, so they contribute nothing.
    fn freeze_adjacency(&self, state: &mut GlobalizerState, rec: &TweetRecord) {
        if self.config.promotion_support == 0 {
            return;
        }
        // The index is transient (checkpoints carry only the ledger):
        // rebuild it whenever it is out of sync, e.g. on the first
        // eviction after a restore.
        if state.frozen_index.len() != state.frozen_adjacency.len() {
            state.frozen_index = state
                .frozen_adjacency
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.first.clone(), e.second.clone()), i))
                .collect();
        }
        for w in rec.global_mentions.windows(2) {
            if w[0].end == w[1].start {
                let key = (
                    w[0].surface_lower(&rec.sentence),
                    w[1].surface_lower(&rec.sentence),
                );
                if let Some(&i) = state.frozen_index.get(&key) {
                    state.frozen_adjacency[i].count += 1;
                } else {
                    state
                        .frozen_index
                        .insert(key.clone(), state.frozen_adjacency.len());
                    state.frozen_adjacency.push(FrozenAdjacency {
                        first: key.0,
                        second: key.1,
                        count: 1,
                    });
                }
            }
        }
    }

    /// Frequency-decay candidate pruning: drop candidates — and their
    /// CTrie paths — that can no longer matter. A candidate is prunable
    /// only when no live record contains its first token (so neither a
    /// pending rescan nor emission can involve it), it holds no Entity
    /// verdict, and its mention frequency is at most `max_freq`. At the
    /// default thresholds (`prune_max_frequency: 2 < promotion_support:
    /// 3`) a fragment with enough adjacency evidence to promote is never
    /// pruned.
    fn prune_candidates(&self, state: &mut GlobalizerState, max_freq: usize) {
        if max_freq == 0 {
            return;
        }
        let tweetbase = &state.tweetbase;
        let pruned = state.candidates.prune_retain(|rec| {
            rec.label == CandidateLabel::Entity
                || rec.frequency() > max_freq
                || rec
                    .tokens
                    .first()
                    .is_some_and(|t| !tweetbase.indices_with_token(t).is_empty())
        });
        if pruned.is_empty() {
            return;
        }
        self.mon_count(|c| c.pruned += pruned.len() as u64);
        let tracing = emd_trace::enabled();
        for rec in &pruned {
            state.ctrie.remove(state.tweetbase.interner(), &rec.tokens);
            self.metrics.pruned_candidates_total.inc();
            if tracing {
                self.temit(TraceEvent {
                    candidate: Some(rec.key.clone()),
                    count: Some(rec.frequency() as u64),
                    phase: Some(TracePhase::Evict),
                    ..TraceEvent::of(TraceEventKind::CandidatePruned)
                });
            }
        }
    }

    /// Adjacent-pair candidate promotion (stream close): two candidates
    /// extracted adjacent to each other often enough are evidence of one
    /// fragmented multi-token entity the local system never detects in
    /// full, so their concatenation becomes a candidate of its own.
    ///
    /// Computed purely from the stored (up-to-date) `global_mentions`, in
    /// stream order, so the promotion set is independent of batch schedule
    /// and rescan strategy. Returns candidate token vectors in
    /// first-adjacency stream order.
    fn find_promotions(&self, state: &GlobalizerState) -> Vec<Vec<String>> {
        let support = self.config.promotion_support;
        if support == 0 {
            return Vec::new();
        }
        let mut order: Vec<(String, String)> = Vec::new();
        let mut adjacency: HashMap<(String, String), usize> = HashMap::new();
        // Evidence frozen from evicted records is counted first: evictions
        // run oldest-first, so the ledger precedes every live record in
        // stream order and first-adjacency ordering is preserved. Empty
        // unless windowing is enabled.
        for e in &state.frozen_adjacency {
            let pair = (e.first.clone(), e.second.clone());
            let n = adjacency.entry(pair.clone()).or_insert(0);
            if *n == 0 {
                order.push(pair);
            }
            *n += e.count as usize;
        }
        for rec in state.tweetbase.iter() {
            // Extraction emits non-overlapping spans in ascending order, so
            // consecutive entries are the only adjacency candidates.
            for w in rec.global_mentions.windows(2) {
                if w[0].end == w[1].start {
                    let pair = (
                        w[0].surface_lower(&rec.sentence),
                        w[1].surface_lower(&rec.sentence),
                    );
                    let n = adjacency.entry(pair.clone()).or_insert(0);
                    if *n == 0 {
                        order.push(pair);
                    }
                    *n += 1;
                }
            }
        }
        let mut promotions = Vec::new();
        for pair in order {
            let adj = adjacency[&pair];
            if adj < support {
                continue;
            }
            let (Some(a), Some(b)) = (state.candidates.get(&pair.0), state.candidates.get(&pair.1))
            else {
                continue;
            };
            // The adjacency must dominate the rarer fragment: incidental
            // co-occurrence of two frequent independent entities stays out.
            if 2 * adj < a.frequency().min(b.frequency()) {
                continue;
            }
            let mut tokens = a.tokens.clone();
            tokens.extend(b.tokens.iter().cloned());
            if tokens.len() > self.config.max_candidate_len
                || state.ctrie.contains(state.tweetbase.interner(), &tokens)
            {
                continue;
            }
            promotions.push(tokens);
        }
        promotions
    }

    /// Closing rescan + promotion fixpoint. Returns `(n_rescanned,
    /// n_promoted)`.
    fn close_stream(&self, state: &mut GlobalizerState, n_threads: usize) -> (usize, usize) {
        if self.config.ablation == Ablation::LocalOnly {
            return (0, 0);
        }
        let mut n_rescanned = 0;
        let mut n_promoted = 0;
        self.metrics.dirty_depth.set(state.dirty.len() as f64);
        loop {
            self.metrics.finalize_promotion_rounds_total.inc();
            let dirty: Vec<usize> = state.dirty.take_sorted();
            n_rescanned += dirty.len();
            self.scan_records(state, &dirty, n_threads, PipelinePhase::FinalizeRescan);
            let t_promo = Instant::now();
            let promotions = self.find_promotions(state);
            let dt_promo = elapsed_ns(t_promo);
            state.timings.promotion_ns += dt_promo;
            self.trace_phase_span(TracePhase::Promotion, Some(TracePhase::Finalize), dt_promo);
            if promotions.is_empty() {
                break;
            }
            for tokens in promotions {
                if state.ctrie.insert(state.tweetbase.interner_mut(), &tokens) {
                    n_promoted += 1;
                    if emd_trace::enabled() {
                        self.temit(TraceEvent {
                            candidate: Some(tokens.join(" ")),
                            phase: Some(TracePhase::Promotion),
                            ..TraceEvent::of(TraceEventKind::Promotion)
                        });
                    }
                    Self::mark_dirty(state, &tokens[0]);
                }
            }
        }
        self.metrics
            .finalize_rescan_sentences_total
            .add(n_rescanned as u64);
        self.metrics
            .finalize_promotions_total
            .add(n_promoted as u64);
        self.metrics
            .rescan_coverage
            .set(n_rescanned as f64 / state.tweetbase.len().max(1) as f64);
        self.mon_count(|c| c.promoted += n_promoted as u64);
        (n_rescanned, n_promoted)
    }

    fn emit(
        &self,
        state: &GlobalizerState,
        n_rescanned: usize,
        n_promoted: usize,
    ) -> GlobalizerOutput {
        if emd_trace::enabled() {
            self.temit(TraceEvent {
                ablation: Some(trace_ablation(self.config.ablation)),
                count: Some(state.tweetbase.len() as u64),
                ..TraceEvent::of(TraceEventKind::EmitStart)
            });
        }
        let mut per_sentence = Vec::with_capacity(state.tweetbase.len());
        for (idx, rec) in state.tweetbase.iter_indexed() {
            if state.quarantined_idx.contains(&idx) {
                continue;
            }
            let spans = match self.config.ablation {
                Ablation::LocalOnly => rec.local_spans.clone(),
                Ablation::MentionExtraction => rec.global_mentions.clone(),
                Ablation::Full => rec
                    .global_mentions
                    .iter()
                    .filter(|sp| {
                        let key = sp.surface_lower(&rec.sentence);
                        state
                            .candidates
                            .get(&key)
                            .map(|c| {
                                if c.degraded {
                                    // Degraded fallback: the classifier
                                    // verdict is unreliable, so only spans
                                    // the local system itself proposed
                                    // survive (LocalOnly behaviour for
                                    // this candidate).
                                    rec.local_spans.contains(*sp)
                                } else {
                                    c.label == CandidateLabel::Entity
                                }
                            })
                            .unwrap_or(false)
                    })
                    .copied()
                    .collect(),
            };
            per_sentence.push((rec.sentence.id, spans));
        }
        let n_entities = state
            .candidates
            .iter()
            .filter(|c| c.label == CandidateLabel::Entity)
            .count();
        let n_degraded = state.candidates.iter().filter(|c| c.degraded).count();
        self.metrics.degraded_candidates.set(n_degraded as f64);
        GlobalizerOutput {
            per_sentence,
            n_candidates: state.candidates.len(),
            n_entities,
            n_promoted,
            n_rescanned,
            phase_timings: state.timings.clone(),
            quarantined: state.quarantined.clone(),
            n_degraded,
        }
    }

    /// Close the stream: rescan the stored sentences whose extraction could
    /// have changed since their last scan (recovering mentions of
    /// late-discovered candidates in early sentences), run adjacent-pair
    /// promotion to a fixpoint, resolve the γ band, and emit final outputs.
    ///
    /// Rescan and classification shard across all available cores; outputs
    /// are bit-identical to [`Globalizer::finalize_full_rescan`] regardless
    /// of thread count or batch schedule.
    pub fn finalize(&self, state: &mut GlobalizerState) -> GlobalizerOutput {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.finalize_with_threads(state, threads)
    }

    /// [`Globalizer::finalize`] with an explicit worker-thread count.
    pub fn finalize_with_threads(
        &self,
        state: &mut GlobalizerState,
        n_threads: usize,
    ) -> GlobalizerOutput {
        let t0m = self.monitor.is_some().then(Instant::now);
        let t0 = Instant::now();
        let _span = self.phase_timer(&self.metrics.finalize_ns);
        // The closing pass counts as one breaker tick: a served cooldown
        // lets finalize probe a phase that was Open at the last batch.
        self.guard_tick();
        let (n_rescanned, n_promoted) = self.close_stream(state, n_threads);
        if self.config.ablation == Ablation::Full {
            self.classify_candidates(state, true, n_threads);
        }
        let t_emit = Instant::now();
        let mut out = self.emit(state, n_rescanned, n_promoted);
        let dt_emit = elapsed_ns(t_emit);
        state.timings.emit_ns += dt_emit;
        self.trace_phase_span(TracePhase::Emit, Some(TracePhase::Finalize), dt_emit);
        let dt_total = elapsed_ns(t0);
        state.timings.finalize_ns += dt_total;
        self.trace_phase_span(TracePhase::Finalize, None, dt_total);
        out.phase_timings = state.timings.clone();
        self.observe_batch(state, t0m, true);
        out
    }

    /// Brute-force reference for [`Globalizer::finalize`]: rescans *every*
    /// stored sentence (once per promotion round) instead of only the
    /// possibly-affected ones. Kept as the oracle the incremental path is
    /// tested bit-identical against, and as the baseline for the `rescan`
    /// benchmark.
    pub fn finalize_full_rescan(&self, state: &mut GlobalizerState) -> GlobalizerOutput {
        if self.config.ablation == Ablation::LocalOnly {
            return self.emit(state, 0, 0);
        }
        let t0m = self.monitor.is_some().then(Instant::now);
        let t0 = Instant::now();
        let _span = self.phase_timer(&self.metrics.finalize_ns);
        self.guard_tick();
        let mut n_rescanned = 0;
        let mut n_promoted = 0;
        loop {
            self.metrics.finalize_promotion_rounds_total.inc();
            state.dirty.clear();
            let all: Vec<usize> = state
                .tweetbase
                .iter_indexed()
                .map(|(i, _)| i)
                .filter(|i| !state.quarantined_idx.contains(i))
                .collect();
            n_rescanned += all.len();
            self.scan_records(state, &all, 1, PipelinePhase::FinalizeRescan);
            let t_promo = Instant::now();
            let promotions = self.find_promotions(state);
            let dt_promo = elapsed_ns(t_promo);
            state.timings.promotion_ns += dt_promo;
            self.trace_phase_span(TracePhase::Promotion, Some(TracePhase::Finalize), dt_promo);
            if promotions.is_empty() {
                break;
            }
            for tokens in promotions {
                if state.ctrie.insert(state.tweetbase.interner_mut(), &tokens) {
                    n_promoted += 1;
                    if emd_trace::enabled() {
                        self.temit(TraceEvent {
                            candidate: Some(tokens.join(" ")),
                            phase: Some(TracePhase::Promotion),
                            ..TraceEvent::of(TraceEventKind::Promotion)
                        });
                    }
                }
            }
        }
        self.metrics
            .finalize_rescan_sentences_total
            .add(n_rescanned as u64);
        self.metrics
            .finalize_promotions_total
            .add(n_promoted as u64);
        self.metrics.rescan_coverage.set(1.0);
        self.mon_count(|c| c.promoted += n_promoted as u64);
        if self.config.ablation == Ablation::Full {
            self.classify_candidates(state, true, 1);
        }
        let t_emit = Instant::now();
        let mut out = self.emit(state, n_rescanned, n_promoted);
        let dt_emit = elapsed_ns(t_emit);
        state.timings.emit_ns += dt_emit;
        self.trace_phase_span(TracePhase::Emit, Some(TracePhase::Finalize), dt_emit);
        let dt_total = elapsed_ns(t0);
        state.timings.finalize_ns += dt_total;
        self.trace_phase_span(TracePhase::Finalize, None, dt_total);
        out.phase_timings = state.timings.clone();
        self.observe_batch(state, t0m, true);
        out
    }

    /// Convenience: run the whole pipeline over a fixed set of sentences in
    /// `batch_size`-message batches and return the final outputs along with
    /// the closing state (for error analysis).
    pub fn run(
        &self,
        sentences: &[Sentence],
        batch_size: usize,
    ) -> (GlobalizerOutput, GlobalizerState) {
        let mut state = self.new_state();
        for chunk in sentences.chunks(batch_size.max(1)) {
            self.process_batch(&mut state, chunk);
        }
        let out = self.finalize(&mut state);
        (out, state)
    }
}

/// Build pipeline state *without* classification — used to harvest
/// classifier training data (the classifier does not exist yet at that
/// point). Runs the local phase and the global rescan/pooling only.
pub fn index_stream(
    local: &dyn LocalEmd,
    phrase: Option<&PhraseEmbedder>,
    config: &GlobalizerConfig,
    sentences: &[Sentence],
) -> GlobalizerState {
    // A throwaway classifier satisfies the constructor; it is never called
    // because we stop before the classification stage.
    let dim = match phrase {
        Some(pe) if local.is_deep() => pe.out_dim(),
        _ => SyntacticClass::COUNT,
    };
    let dummy = EntityClassifier::new(dim + 1, 0);
    let g = Globalizer::new(
        local,
        phrase,
        &dummy,
        GlobalizerConfig {
            ablation: Ablation::MentionExtraction,
            ..config.clone()
        },
    );
    let mut state = g.new_state();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    g.process_batch_parallel(&mut state, sentences, threads);
    // Closing rescan (candidates discovered late may have mentions in
    // earlier sentences) + promotion, shared with `finalize`, minus the
    // classification stage.
    g.close_stream(&mut state, threads);
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LexiconEmd;
    use emd_text::token::SentenceId;

    fn sents(msgs: &[&[&str]]) -> Vec<Sentence> {
        msgs.iter()
            .enumerate()
            .map(|(i, words)| {
                Sentence::from_tokens(SentenceId::new(i as u64, 0), words.iter().copied())
            })
            .collect()
    }

    /// A classifier trained to accept everything (bias trick), so tests can
    /// isolate the mention-extraction behaviour.
    fn accept_all(dim: usize) -> EntityClassifier {
        let mut c = EntityClassifier::new(dim, 0);
        use emd_nn::param::Net;
        let params = c.params_mut();
        let last = params.into_iter().last().unwrap();
        last.value.data[0] = 100.0;
        c
    }

    fn reject_all(dim: usize) -> EntityClassifier {
        let mut c = EntityClassifier::new(dim, 0);
        use emd_nn::param::Net;
        let params = c.params_mut();
        let last = params.into_iter().last().unwrap();
        last.value.data[0] = -100.0;
        c
    }

    #[test]
    fn recovers_missed_case_variants() {
        // Local EMD knows "Coronavirus" only in proper case... simulate by a
        // lexicon that misses nothing, but the point is the rescan: use a
        // lexicon EMD that only fires on exact "Coronavirus" casing.
        #[derive(Debug)]
        struct CaseSensitiveEmd;
        impl LocalEmd for CaseSensitiveEmd {
            fn name(&self) -> &str {
                "case-sensitive"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = s
                    .texts()
                    .enumerate()
                    .filter(|(_, t)| *t == "Coronavirus")
                    .map(|(i, _)| Span::new(i, i + 1))
                    .collect();
                crate::local::LocalEmdOutput {
                    spans,
                    token_embeddings: None,
                }
            }
        }
        let local = CaseSensitiveEmd;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["Coronavirus", "spreads", "fast"],
            &["CORONAVIRUS", "cases", "rise"],
            &["the", "coronavirus", "is", "here"],
        ]);
        let (out, _) = g.run(&stream, 10);
        // Local found only tweet 0's mention; global recovers all three.
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(out.n_candidates, 1);
        assert_eq!(out.n_entities, 1);
    }

    #[test]
    fn classifier_filters_false_positives() {
        let local = LexiconEmd::new(["italy", "the"]); // "the" = false positive
        let clf = reject_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[&["the", "Italy", "report"]]);
        let (out, state) = g.run(&stream, 10);
        assert_eq!(out.n_candidates, 2);
        assert_eq!(
            out.n_entities, 0,
            "reject-all classifier must drop every candidate"
        );
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 0);
        // Candidates carry scores after finalize.
        for c in state.candidates.iter() {
            assert!(c.score.is_some());
            assert_eq!(c.label, CandidateLabel::NonEntity);
        }
    }

    #[test]
    fn ablation_local_only_passes_through() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let cfg = GlobalizerConfig {
            ablation: Ablation::LocalOnly,
            ..Default::default()
        };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let stream = sents(&[&["Italy", "and", "ITALY"], &["nothing", "here"]]);
        let (out, _) = g.run(&stream, 10);
        // Lexicon matches case-insensitively, so 2 mentions from sentence 0.
        assert_eq!(out.per_sentence[0].1.len(), 2);
        assert_eq!(
            out.n_candidates, 0,
            "no global structures in LocalOnly mode"
        );
    }

    #[test]
    fn ablation_mention_extraction_skips_classifier() {
        #[derive(Debug)]
        struct FirstOnlyEmd;
        impl LocalEmd for FirstOnlyEmd {
            fn name(&self) -> &str {
                "first-only"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                // Detects "Italy" only in the first sentence it appears in
                // proper case.
                let spans = s
                    .texts()
                    .enumerate()
                    .filter(|(_, t)| *t == "Italy")
                    .map(|(i, _)| Span::new(i, i + 1))
                    .collect();
                crate::local::LocalEmdOutput {
                    spans,
                    token_embeddings: None,
                }
            }
        }
        let local = FirstOnlyEmd;
        let clf = reject_all(7); // would reject if consulted
        let cfg = GlobalizerConfig {
            ablation: Ablation::MentionExtraction,
            ..Default::default()
        };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let stream = sents(&[&["Italy", "rises"], &["italy", "again"]]);
        let (out, _) = g.run(&stream, 10);
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(
            total, 2,
            "mention extraction emits all candidate mentions unfiltered"
        );
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let local = LexiconEmd::new(["italy", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream: Vec<Sentence> = (0..40)
            .map(|i| {
                Sentence::from_tokens(SentenceId::new(i, 0), ["Italy", "fights", "covid", "again"])
            })
            .collect();
        let mut s1 = g.new_state();
        g.process_batch(&mut s1, &stream);
        let out1 = g.finalize(&mut s1);
        let mut s2 = g.new_state();
        g.process_batch_parallel(&mut s2, &stream, 4);
        let out2 = g.finalize(&mut s2);
        assert_eq!(out1.per_sentence, out2.per_sentence);
    }

    #[test]
    fn incremental_batches_match_single_batch() {
        let local = LexiconEmd::new(["italy", "beshear", "covid"]);
        let clf = accept_all(7);
        let stream = sents(&[
            &["Italy", "reports", "cases"],
            &["covid", "in", "italy"],
            &["Beshear", "on", "Covid"],
            &["beshear", "speaks"],
        ]);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let (out_single, _) = g.run(&stream, 100);
        let (out_batched, _) = g.run(&stream, 1);
        let a: Vec<_> = out_single
            .per_sentence
            .iter()
            .map(|(_, v)| v.clone())
            .collect();
        let b: Vec<_> = out_batched
            .per_sentence
            .iter()
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(a, b, "batching must not change final outputs");
    }

    #[test]
    fn late_candidate_found_in_early_sentence() {
        // "Beshear" is only detected locally in the LAST sentence; the
        // finalize rescan must recover its mention in the first sentence.
        #[derive(Debug)]
        struct LastOnly;
        impl LocalEmd for LastOnly {
            fn name(&self) -> &str {
                "last-only"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = if s.id.tweet_id == 2 {
                    s.texts()
                        .enumerate()
                        .filter(|(_, t)| t.eq_ignore_ascii_case("beshear"))
                        .map(|(i, _)| Span::new(i, i + 1))
                        .collect()
                } else {
                    vec![]
                };
                crate::local::LocalEmdOutput {
                    spans,
                    token_embeddings: None,
                }
            }
        }
        let local = LastOnly;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["beshear", "speaks", "today"],
            &["no", "entities", "here"],
            &["Beshear", "again"],
        ]);
        let mut state = g.new_state();
        // One batch per sentence: candidate appears only at batch 3.
        for s in &stream {
            g.process_batch(&mut state, std::slice::from_ref(s));
        }
        let out = g.finalize(&mut state);
        assert_eq!(
            out.per_sentence[0].1.len(),
            1,
            "early mention recovered at finalize"
        );
        assert_eq!(out.per_sentence[2].1.len(), 1);
    }

    #[test]
    fn index_stream_builds_candidates_without_classification() {
        let local = LexiconEmd::new(["italy"]);
        let stream = sents(&[&["Italy", "x"], &["italy", "y"]]);
        let state = index_stream(&local, None, &GlobalizerConfig::default(), &stream);
        assert_eq!(state.candidates.len(), 1);
        let rec = state.candidates.get("italy").unwrap();
        assert_eq!(rec.frequency(), 2);
        assert_eq!(rec.label, CandidateLabel::Pending);
        assert_eq!(rec.n_pooled(), 2);
    }

    #[test]
    fn partial_extraction_corrected_end_to_end() {
        // Local EMD finds the full "Andy Beshear" in tweet 0 but only
        // "Andy" in tweet 1; global output must have the full span in both.
        #[derive(Debug)]
        struct PartialEmd;
        impl LocalEmd for PartialEmd {
            fn name(&self) -> &str {
                "partial"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = if s.id.tweet_id == 0 {
                    vec![Span::new(0, 2)]
                } else {
                    vec![Span::new(1, 2)] // just "Andy"
                };
                crate::local::LocalEmdOutput {
                    spans,
                    token_embeddings: None,
                }
            }
        }
        let local = PartialEmd;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["Andy", "Beshear", "talks"],
            &["gov", "Andy", "Beshear", "walks"],
        ]);
        let (out, _) = g.run(&stream, 10);
        assert!(
            out.per_sentence[1].1.contains(&Span::new(1, 3)),
            "full mention recovered"
        );
    }

    #[test]
    fn incremental_finalize_matches_full_rescan() {
        // Same ingested state, closed two ways: the incremental dirty-set
        // rescan (parallel) and the brute-force everything rescan must be
        // bit-identical — outputs, candidate set, and entity verdicts.
        let local = LexiconEmd::new(["italy", "beshear", "covid"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["Italy", "reports", "covid", "cases"],
            &["nothing", "to", "see"],
            &["Beshear", "on", "Covid", "in", "italy"],
            &["beshear", "speaks", "again"],
        ]);
        let mut s1 = g.new_state();
        for s in &stream {
            g.process_batch(&mut s1, std::slice::from_ref(s));
        }
        let mut s2 = s1.clone();
        let inc = g.finalize_with_threads(&mut s1, 4);
        let full = g.finalize_full_rescan(&mut s2);
        assert_eq!(inc.per_sentence, full.per_sentence);
        assert_eq!(inc.n_candidates, full.n_candidates);
        assert_eq!(inc.n_entities, full.n_entities);
        assert_eq!(inc.n_promoted, full.n_promoted);
        let keys1: Vec<&str> = s1.candidates.iter().map(|c| c.key.as_str()).collect();
        let keys2: Vec<&str> = s2.candidates.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys1, keys2, "candidate discovery order must match");
        for (a, b) in s1.candidates.iter().zip(s2.candidates.iter()) {
            assert_eq!(
                a.global_embedding(),
                b.global_embedding(),
                "pooled sums must match"
            );
            assert_eq!(a.mentions, b.mentions);
        }
    }

    #[test]
    fn finalize_rescans_only_affected_sentences() {
        // Candidate discovered in the last batch: only the earlier sentences
        // containing its first token are rescanned at close, not the stream.
        let local = LexiconEmd::new(["beshear"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["beshear", "speaks", "today"],
            &["no", "entities", "here"],
            &["still", "nothing"],
            &["Beshear", "again"],
        ]);
        let mut state = g.new_state();
        for s in &stream {
            g.process_batch(&mut state, std::slice::from_ref(s));
        }
        let out = g.finalize(&mut state);
        // Sentence 0 was dirtied by the batch-3 trie insert... no — the
        // candidate "beshear" is registered at batch 0 already (local
        // detects it there), so every sentence is scanned within its own
        // batch and nothing is left dirty at close.
        assert_eq!(
            out.n_rescanned, 0,
            "no sentence can be affected by later candidates"
        );
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn finalize_rescan_count_is_incremental() {
        // "beshear" only becomes a candidate at the last batch; of the three
        // earlier sentences exactly one contains the token and only that one
        // is rescanned at close.
        #[derive(Debug)]
        struct LastOnly;
        impl LocalEmd for LastOnly {
            fn name(&self) -> &str {
                "last-only"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = if s.id.tweet_id == 3 {
                    vec![Span::new(0, 1)]
                } else {
                    vec![]
                };
                crate::local::LocalEmdOutput {
                    spans,
                    token_embeddings: None,
                }
            }
        }
        let local = LastOnly;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["beshear", "speaks", "today"],
            &["no", "entities", "here"],
            &["still", "nothing"],
            &["Beshear", "again"],
        ]);
        let mut state = g.new_state();
        for s in &stream {
            g.process_batch(&mut state, std::slice::from_ref(s));
        }
        let out = g.finalize(&mut state);
        assert_eq!(
            out.n_rescanned, 1,
            "only the one affected early sentence is rescanned"
        );
        assert_eq!(out.per_sentence[0].1.len(), 1, "early mention recovered");
        assert_eq!(out.per_sentence[3].1.len(), 1);
    }

    #[test]
    fn adjacent_fragments_promoted_to_full_candidate() {
        // The local system only ever detects the fragments "moross" and
        // "lumsa", never the bigram. With enough adjacency support the
        // promotion pass must recover the full two-token mention.
        let local = LexiconEmd::new(["moross", "lumsa"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["Moross", "Lumsa", "quarantined"],
            &["cases", "at", "Moross", "Lumsa", "rise"],
            &["Moross", "Lumsa", "closed"],
        ]);
        let (out, state) = g.run(&stream, 10);
        assert_eq!(out.n_promoted, 1);
        assert!(state
            .ctrie
            .contains(state.tweetbase.interner(), &["moross", "lumsa"]));
        assert_eq!(out.per_sentence[0].1, vec![Span::new(0, 2)]);
        assert_eq!(out.per_sentence[1].1, vec![Span::new(2, 4)]);
        assert_eq!(out.per_sentence[2].1, vec![Span::new(0, 2)]);
        // The promoted candidate pooled one embedding per recovered mention.
        let promoted = state.candidates.get("moross lumsa").unwrap();
        assert_eq!(promoted.frequency(), 3);
        assert_eq!(promoted.n_pooled(), 3);
    }

    #[test]
    fn rare_adjacency_not_promoted() {
        // One incidental adjacency is far below the default support of 3:
        // the fragments stay separate candidates.
        let local = LexiconEmd::new(["italy", "canada"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["Italy", "Canada", "trade"],
            &["Italy", "alone"],
            &["Canada", "alone"],
        ]);
        let (out, state) = g.run(&stream, 10);
        assert_eq!(out.n_promoted, 0);
        assert!(!state
            .ctrie
            .contains(state.tweetbase.interner(), &["italy", "canada"]));
        assert_eq!(
            out.per_sentence[0].1,
            vec![Span::new(0, 1), Span::new(1, 2)]
        );
    }

    #[test]
    fn promotion_disabled_by_zero_support() {
        let local = LexiconEmd::new(["moross", "lumsa"]);
        let clf = accept_all(7);
        let cfg = GlobalizerConfig {
            promotion_support: 0,
            ..Default::default()
        };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let stream = sents(&[
            &["Moross", "Lumsa", "quarantined"],
            &["Moross", "Lumsa", "rises"],
            &["Moross", "Lumsa", "closed"],
        ]);
        let (out, _) = g.run(&stream, 10);
        assert_eq!(out.n_promoted, 0);
        assert_eq!(
            out.per_sentence[0].1,
            vec![Span::new(0, 1), Span::new(1, 2)]
        );
    }

    #[test]
    fn out_of_bounds_local_spans_dropped_at_ingestion() {
        // A misbehaving local system emits spans past the end of the
        // sentence and empty spans. They must be dropped once at ingestion:
        // not panic the rescan, not appear in LocalOnly outputs, not count
        // as locally-detected evidence.
        #[derive(Debug)]
        struct Misbehaving;
        impl LocalEmd for Misbehaving {
            fn name(&self) -> &str {
                "misbehaving"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                // Struct literals: `Span::new` debug-asserts non-emptiness,
                // and the point here is smuggling invalid spans past the
                // local system boundary.
                crate::local::LocalEmdOutput {
                    spans: vec![
                        Span { start: 0, end: 1 }, // valid
                        Span {
                            start: 1,
                            end: s.len() + 3,
                        }, // out of bounds
                        Span { start: 2, end: 2 }, // empty
                        Span {
                            start: s.len(),
                            end: s.len() + 1,
                        }, // fully past the end
                    ],
                    token_embeddings: None,
                }
            }
        }
        let local = Misbehaving;
        let clf = accept_all(7);
        for ablation in [
            Ablation::LocalOnly,
            Ablation::MentionExtraction,
            Ablation::Full,
        ] {
            let cfg = GlobalizerConfig {
                ablation,
                ..Default::default()
            };
            let g = Globalizer::new(&local, None, &clf, cfg);
            let stream = sents(&[&["Italy", "reports", "cases"]]);
            let (out, state) = g.run(&stream, 10);
            assert_eq!(
                out.per_sentence[0].1,
                vec![Span::new(0, 1)],
                "only the valid span survives under {ablation:?}"
            );
            if ablation != Ablation::LocalOnly {
                let rec = state.candidates.get("italy").unwrap();
                assert!(rec.mentions.iter().all(|m| m.locally_detected));
            }
        }
    }

    /// A local system that panics (injected-fault payload, so the quiet
    /// hook suppresses the backtrace) on selected tweet ids, from the
    /// `fail_on_attempt`-th attempt per sentence onward (1-based; 1 =
    /// always fails).
    #[derive(Debug)]
    struct PanickyEmd {
        fail_tweet: u64,
        fail_until_attempt: usize,
        calls: std::sync::Mutex<std::collections::HashMap<u64, usize>>,
    }

    impl PanickyEmd {
        fn new(fail_tweet: u64, fail_until_attempt: usize) -> PanickyEmd {
            emd_resilience::failpoint::install_quiet_hook();
            PanickyEmd {
                fail_tweet,
                fail_until_attempt,
                calls: std::sync::Mutex::new(std::collections::HashMap::new()),
            }
        }
    }

    impl LocalEmd for PanickyEmd {
        fn name(&self) -> &str {
            "panicky"
        }
        fn embedding_dim(&self) -> Option<usize> {
            None
        }
        fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
            if s.id.tweet_id == self.fail_tweet {
                let should_fail = {
                    // Recover the lock if a previous attempt's panic
                    // poisoned it — the counter itself is never torn.
                    let mut calls = self
                        .calls
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    let n = calls.entry(s.id.tweet_id).or_insert(0);
                    *n += 1;
                    *n <= self.fail_until_attempt
                };
                if should_fail {
                    emd_resilience::failpoint::panic_injected("test_local");
                }
            }
            let spans = s
                .texts()
                .enumerate()
                .filter(|(_, t)| t.eq_ignore_ascii_case("italy"))
                .map(|(i, _)| Span::new(i, i + 1))
                .collect();
            crate::local::LocalEmdOutput {
                spans,
                token_embeddings: None,
            }
        }
    }

    #[test]
    fn persistently_panicking_sentence_is_quarantined() {
        // Tweet 1's local inference panics on every attempt: the sentence
        // must land in the dead-letter buffer, the rest of the stream must
        // come through untouched.
        let local = PanickyEmd::new(1, usize::MAX);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[
            &["Italy", "reports", "cases"],
            &["italy", "poisoned", "message"],
            &["ITALY", "again"],
        ]);
        let (out, state) = g.run(&stream, 10);
        let sids: Vec<u64> = out.per_sentence.iter().map(|(s, _)| s.tweet_id).collect();
        assert_eq!(sids, vec![0, 2], "quarantined sentence not emitted");
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].sid, SentenceId::new(1, 0));
        assert_eq!(
            out.quarantined[0].phase,
            emd_resilience::PipelinePhase::LocalInference
        );
        assert_eq!(state.n_quarantined(), 1);
        // The surviving sentences still go through the full pipeline.
        assert_eq!(out.per_sentence[0].1, vec![Span::new(0, 1)]);
        assert_eq!(out.per_sentence[1].1, vec![Span::new(0, 1)]);
    }

    #[test]
    fn transient_panic_is_retried_not_quarantined() {
        // Tweet 1 fails exactly once; the default budget of one retry
        // recovers it, so the output is identical to a fault-free run.
        let local = PanickyEmd::new(1, 1);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[&["Italy", "one"], &["italy", "two"], &["ITALY", "three"]]);
        let (out, _) = g.run(&stream, 10);
        assert!(out.quarantined.is_empty());
        assert_eq!(out.per_sentence.len(), 3);
        for (_, spans) in &out.per_sentence {
            assert_eq!(spans, &vec![Span::new(0, 1)]);
        }
    }

    #[test]
    fn zero_retry_budget_quarantines_on_first_panic() {
        let local = PanickyEmd::new(1, 1);
        let clf = accept_all(7);
        let cfg = GlobalizerConfig {
            poison_retries: 0,
            ..Default::default()
        };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let stream = sents(&[&["Italy", "one"], &["italy", "two"]]);
        let (out, _) = g.run(&stream, 10);
        assert_eq!(out.quarantined.len(), 1, "no retry with a zero budget");
    }

    #[test]
    fn parallel_local_phase_quarantines_identically() {
        // The same poison sentence, processed on the sequential and the
        // sharded local phase: outputs and quarantine logs must match.
        let clf = accept_all(7);
        let stream = sents(&[
            &["Italy", "a"],
            &["italy", "b"],
            &["ITALY", "c"],
            &["italy", "d"],
        ]);
        let run = |threads: Option<usize>| {
            let local = PanickyEmd::new(2, usize::MAX);
            let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
            let mut state = g.new_state();
            match threads {
                None => g.process_batch(&mut state, &stream),
                Some(t) => g.process_batch_parallel(&mut state, &stream, t),
            }
            g.finalize(&mut state)
        };
        let seq = run(None);
        let par = run(Some(3));
        assert_eq!(seq.per_sentence, par.per_sentence);
        assert_eq!(seq.quarantined, par.quarantined);
        assert_eq!(seq.quarantined.len(), 1);
    }

    #[test]
    fn oversized_token_quarantined_at_ingest() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let big = "x".repeat(emd_resilience::validate::MAX_TOKEN_BYTES + 1);
        let stream = vec![
            Sentence::from_tokens(SentenceId::new(0, 0), ["Italy", "fine"]),
            Sentence::from_tokens(SentenceId::new(1, 0), ["Italy", big.as_str()]),
        ];
        let (out, _) = g.run(&stream, 10);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].sid, SentenceId::new(1, 0));
        assert_eq!(
            out.quarantined[0].phase,
            emd_resilience::PipelinePhase::Ingest
        );
        assert_eq!(out.per_sentence.len(), 1);
    }

    #[test]
    fn degraded_candidate_falls_back_to_local_detections() {
        // "Coronavirus" is detected locally only in proper case; the
        // global rescan recovers the ALL-CAPS mention. When the candidate
        // is degraded (its classifier verdict unreliable), emission must
        // fall back to the locally detected span only.
        #[derive(Debug)]
        struct CaseSensitiveEmd;
        impl LocalEmd for CaseSensitiveEmd {
            fn name(&self) -> &str {
                "case-sensitive"
            }
            fn embedding_dim(&self) -> Option<usize> {
                None
            }
            fn process(&self, s: &Sentence) -> crate::local::LocalEmdOutput {
                let spans = s
                    .texts()
                    .enumerate()
                    .filter(|(_, t)| *t == "Coronavirus")
                    .map(|(i, _)| Span::new(i, i + 1))
                    .collect();
                crate::local::LocalEmdOutput {
                    spans,
                    token_embeddings: None,
                }
            }
        }
        let local = CaseSensitiveEmd;
        let clf = accept_all(7);
        let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let stream = sents(&[&["Coronavirus", "spreads"], &["CORONAVIRUS", "rises"]]);
        let (mut state, out) = {
            let mut state = g.new_state();
            g.process_batch(&mut state, &stream);
            let out = g.finalize(&mut state);
            (state, out)
        };
        // Healthy run: both mentions emitted.
        let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 2);
        assert_eq!(out.n_degraded, 0);
        // Degrade the candidate and re-emit: only the local detection
        // survives.
        state.candidates.get_mut("coronavirus").unwrap().degraded = true;
        let out = g.emit(&state, 0, 0);
        assert_eq!(out.n_degraded, 1);
        assert_eq!(out.per_sentence[0].1, vec![Span::new(0, 1)]);
        assert_eq!(out.per_sentence[1].1, Vec::<Span>::new());
    }

    #[test]
    fn windowed_run_evicts_and_stays_bounded() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let cfg = GlobalizerConfig {
            window: crate::config::WindowConfig::sliding(4),
            ..Default::default()
        };
        let mut g = Globalizer::new(&local, None, &clf, cfg);
        // Recording is process-global and off by default; flip it on (and
        // leave it on — the pipeline is bit-identical either way) so the
        // private registry actually sees the window counters.
        emd_obs::set_enabled(true);
        let reg = emd_obs::Registry::new();
        g.set_metrics(PipelineMetrics::from_registry(&reg));
        let msgs: Vec<Vec<&str>> = (0..12).map(|_| vec!["Italy", "reports"]).collect();
        let msgs: Vec<&[&str]> = msgs.iter().map(|v| v.as_slice()).collect();
        let stream = sents(&msgs);
        let mut state = g.new_state();
        for chunk in stream.chunks(2) {
            g.process_batch(&mut state, chunk);
            assert!(
                state.tweetbase.len() <= 4,
                "window ceiling must hold after every batch"
            );
        }
        assert_eq!(state.n_evicted(), 8);
        let out = g.finalize(&mut state);
        // The final output covers the live window; evicted sentences were
        // already fully scanned (their pool contributions persist).
        assert_eq!(out.per_sentence.len(), 4);
        let sids: Vec<u64> = out.per_sentence.iter().map(|(s, _)| s.tweet_id).collect();
        assert_eq!(sids, vec![8, 9, 10, 11]);
        for (_, spans) in &out.per_sentence {
            assert_eq!(spans, &vec![Span::new(0, 1)]);
        }
        // Pooled evidence from evicted mentions is retained.
        assert_eq!(state.candidates.get("italy").unwrap().frequency(), 12);
        let snap = g.metrics().snapshot();
        assert_eq!(snap.counter("emd_window_evicted_records_total"), Some(8));
        assert_eq!(snap.gauge("emd_window_depth"), Some(4.0));
    }

    #[test]
    fn oversized_window_matches_unbounded_run() {
        let local = LexiconEmd::new(["italy", "virus"]);
        let clf = accept_all(7);
        let stream = sents(&[
            &["Italy", "reports", "virus"],
            &["the", "virus", "spreads"],
            &["ITALY", "closes"],
        ]);
        let unbounded = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
        let windowed = Globalizer::new(
            &local,
            None,
            &clf,
            GlobalizerConfig {
                window: crate::config::WindowConfig::sliding(1000),
                ..Default::default()
            },
        );
        let (a, _) = unbounded.run(&stream, 1);
        let (b, _) = windowed.run(&stream, 1);
        assert_eq!(a.per_sentence, b.per_sentence);
        assert_eq!(a.n_candidates, b.n_candidates);
        assert_eq!(a.n_entities, b.n_entities);
    }

    #[test]
    fn frozen_adjacency_preserves_promotion_across_eviction() {
        // "Moross Lumsa" is only ever detected in fragments. Most of the
        // supporting sentences are evicted before finalize; the frozen
        // ledger must keep the adjacency evidence alive so the promotion
        // still fires.
        let local = LexiconEmd::new(["moross", "lumsa"]);
        let clf = accept_all(7);
        let cfg = GlobalizerConfig {
            window: crate::config::WindowConfig::sliding(2),
            ..Default::default()
        };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let msgs: Vec<Vec<&str>> = (0..6).map(|_| vec!["Moross", "Lumsa", "speaks"]).collect();
        let msgs: Vec<&[&str]> = msgs.iter().map(|v| v.as_slice()).collect();
        let stream = sents(&msgs);
        let mut state = g.new_state();
        for chunk in stream.chunks(2) {
            g.process_batch(&mut state, chunk);
        }
        assert_eq!(state.n_evicted(), 4);
        assert!(
            !state.frozen_adjacency.is_empty(),
            "evicted adjacency evidence must be frozen"
        );
        let out = g.finalize(&mut state);
        assert_eq!(out.n_promoted, 1, "promotion survives eviction");
        // Live sentences re-emit the merged mention.
        for (_, spans) in &out.per_sentence {
            assert_eq!(spans, &vec![Span::new(0, 2)]);
        }
    }

    #[test]
    fn eviction_never_resurrects_a_quarantined_sentence() {
        let local = LexiconEmd::new(["italy"]);
        let clf = accept_all(7);
        let cfg = GlobalizerConfig {
            window: crate::config::WindowConfig::sliding(2),
            ..Default::default()
        };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let big = "x".repeat(emd_resilience::validate::MAX_TOKEN_BYTES + 1);
        let poison = Sentence::from_tokens(SentenceId::new(1, 0), ["Italy", big.as_str()]);
        let mut stream = vec![
            Sentence::from_tokens(SentenceId::new(0, 0), ["Italy", "fine"]),
            poison,
        ];
        for i in 2..6u64 {
            stream.push(Sentence::from_tokens(
                SentenceId::new(i, 0),
                ["Italy", "again"],
            ));
        }
        // A clean-looking replay of the quarantined id, long after every
        // record from its era has been evicted.
        stream.push(Sentence::from_tokens(
            SentenceId::new(1, 0),
            ["Italy", "replayed"],
        ));
        let mut state = g.new_state();
        for chunk in stream.chunks(2) {
            g.process_batch(&mut state, chunk);
        }
        let out = g.finalize(&mut state);
        assert!(
            out.per_sentence.iter().all(|(s, _)| s.tweet_id != 1),
            "a quarantined sentence id must never re-enter the output"
        );
        assert_eq!(out.quarantined.len(), 2);
        assert!(out.quarantined[1].reason.contains("previously quarantined"));
    }

    #[test]
    fn long_windowed_run_compacts_and_prunes() {
        let local = LexiconEmd::new(["italy", "oddity"]);
        // Reject-all: an Entity verdict pins a candidate forever, so use
        // the classifier that leaves everything non-entity to expose the
        // frequency-decay pruning path.
        let clf = reject_all(7);
        let cfg = GlobalizerConfig {
            window: crate::config::WindowConfig::sliding(2),
            ..Default::default()
        };
        let mut g = Globalizer::new(&local, None, &clf, cfg);
        emd_obs::set_enabled(true);
        let reg = emd_obs::Registry::new();
        g.set_metrics(PipelineMetrics::from_registry(&reg));
        // "Oddity" appears once at the very start (frequency 1); every
        // later sentence mentions only "Italy". Once the oddity sentence
        // is evicted the candidate is cold and must be pruned, CTrie path
        // included.
        let mut stream = vec![Sentence::from_tokens(
            SentenceId::new(0, 0),
            ["Oddity", "here"],
        )];
        for i in 1..20u64 {
            stream.push(Sentence::from_tokens(
                SentenceId::new(i, 0),
                ["Italy", "reports"],
            ));
        }
        let mut state = g.new_state();
        for chunk in stream.chunks(2) {
            g.process_batch(&mut state, chunk);
        }
        assert!(
            state.candidates.get("oddity").is_none(),
            "cold candidate pruned"
        );
        assert!(
            state.candidates.get("italy").is_some(),
            "hot candidate kept"
        );
        assert!(
            !state
                .ctrie
                .contains(state.tweetbase.interner(), &["oddity"]),
            "CTrie path removed"
        );
        assert!(state.ctrie.contains(state.tweetbase.interner(), &["italy"]));
        // Tombstones never exceed the live count by more than one batch.
        assert!(
            state.tweetbase.n_slots() <= 2 * state.tweetbase.len() + 2,
            "compaction keeps the slot vector dense (slots={}, live={})",
            state.tweetbase.n_slots(),
            state.tweetbase.len()
        );
        let snap = g.metrics().snapshot();
        assert!(snap.counter("emd_window_compactions_total").unwrap() > 0);
        assert!(snap.counter("emd_window_pruned_candidates_total").unwrap() > 0);
        let out = g.finalize(&mut state);
        assert_eq!(out.per_sentence.len(), 2);
    }
}
