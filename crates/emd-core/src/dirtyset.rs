//! Bitset-backed dirty-slot index for the rescan queue.
//!
//! Registering one new candidate marks every stored sentence containing
//! its first token as dirty — for a common first token that is thousands
//! of slot indices, and a churny stream registers tens of thousands of
//! candidates. With a `BTreeSet<usize>` that fanout was the single
//! largest ingest cost (~100ns per insert, millions of inserts per
//! million sentences). [`DirtySet`] replaces it with a growable bitset
//! plus a cached population count: insert/remove/contains are a word
//! index and a mask, and iteration walks set bits in ascending slot
//! order — exactly the order the `BTreeSet` iterated, so rescan replay
//! order (and therefore output bit-identity) is unchanged.
//!
//! Checkpoints serialize the set as a sorted index list, byte-identical
//! to the list the `BTreeSet` produced, so the on-disk schema is
//! unaffected by the representation swap.

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// A set of `usize` slot indices stored as a bitset. Grows on insert;
/// memory is one bit per slot up to the largest index ever inserted
/// (slot indices are compacted with the sentence store, so this stays
/// O(window)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    words: Vec<u64>,
    len: usize,
}

impl DirtySet {
    /// Empty set.
    pub fn new() -> DirtySet {
        DirtySet::default()
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `i`. Returns `true` if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        self.len += fresh as usize;
        fresh
    }

    /// Remove `i`. Returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        match self.words.get_mut(w) {
            Some(word) if *word & b != 0 => {
                *word &= !b;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Is `i` in the set?
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Remove every index.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Iterate the indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let w = w & (w - 1); // clear lowest set bit
                (w != 0).then_some(w)
            })
            .map(move |w| wi * 64 + w.trailing_zeros() as usize)
        })
    }

    /// Empty the set, returning its former contents in ascending order.
    pub fn take_sorted(&mut self) -> Vec<usize> {
        let out: Vec<usize> = self.iter().collect();
        self.clear();
        out
    }
}

impl FromIterator<usize> for DirtySet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> DirtySet {
        let mut s = DirtySet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

// Checkpoints carry the sorted index list — the same value a
// `BTreeSet<usize>` serialized to, so the swap is schema-invisible.
impl Serialize for DirtySet {
    fn to_value(&self) -> Value {
        self.iter().collect::<Vec<usize>>().to_value()
    }
}

impl Deserialize for DirtySet {
    fn from_value(v: &Value) -> Result<DirtySet, DeError> {
        Ok(Vec::<usize>::from_value(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = DirtySet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.remove(12345));
        assert_eq!(s.len(), 3);
        s.clear();
        assert!(s.is_empty() && !s.contains(0));
    }

    #[test]
    fn iterates_in_ascending_order_like_btreeset() {
        use std::collections::BTreeSet;
        let idxs = [700usize, 0, 63, 64, 65, 3, 127, 128, 700, 9];
        let s: DirtySet = idxs.iter().copied().collect();
        let b: BTreeSet<usize> = idxs.iter().copied().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            b.into_iter().collect::<Vec<_>>()
        );
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn take_sorted_drains() {
        let mut s: DirtySet = [9usize, 2, 2, 400].into_iter().collect();
        assert_eq!(s.take_sorted(), vec![2, 9, 400]);
        assert!(s.is_empty());
        assert_eq!(s.take_sorted(), Vec::<usize>::new());
    }

    #[test]
    fn serde_round_trip_matches_btreeset_schema() {
        use std::collections::BTreeSet;
        let idxs = [77usize, 1, 300, 64];
        let s: DirtySet = idxs.iter().copied().collect();
        let b: BTreeSet<usize> = idxs.iter().copied().collect();
        assert_eq!(
            s.to_value(),
            b.iter().copied().collect::<Vec<usize>>().to_value()
        );
        let back = DirtySet::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }
}
