//! The Entity Phrase Embedder (§V-B2).
//!
//! Converts a candidate mention's token-level entity-aware embeddings into
//! a single fixed-size phrase embedding: mean pooling followed by a dense
//! layer, exactly Eq. (1)–(2) of the paper.
//!
//! Training follows SBERT's siamese recipe with one modification the paper
//! makes: the deep encoder is **frozen** — only the pooling head (the dense
//! layer) learns. Two sentences are embedded with *mirrored* (shared)
//! weights, compared by cosine similarity, and regressed against a
//! similarity score with MSE loss. Because the encoder is frozen, training
//! operates on precomputed token-embedding matrices.

use crate::tweetbase::EmbView;
use emd_nn::dense::Dense;
use emd_nn::matrix::{cosine, dot, Matrix};
use emd_nn::optim::Adam;
use emd_nn::param::Net;
use emd_text::token::Span;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Mean-pool + dense phrase embedder with a frozen upstream encoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhraseEmbedder {
    /// The trainable pooling head `W_ff`, `b_ff`.
    pub dense: Dense,
}

/// One precomputed training pair: token-embedding matrices of the two
/// sentences and the gold similarity in [0, 1].
pub type StsExample = (Matrix, Matrix, f32);

/// Training hyperparameters (paper: Adam, lr 0.001, batch 32, early
/// stopping after 25 stagnant epochs).
#[derive(Debug, Clone)]
pub struct StsTrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for StsTrainConfig {
    fn default() -> Self {
        StsTrainConfig {
            epochs: 200,
            lr: 0.001,
            batch_size: 32,
            patience: 25,
            seed: 42,
        }
    }
}

/// Outcome of phrase-embedder training.
#[derive(Debug, Clone)]
pub struct StsTrainReport {
    /// Best validation MSE reached.
    pub best_val_mse: f32,
    /// Epoch at which the best model was found.
    pub best_epoch: usize,
    /// Total epochs actually run.
    pub epochs_run: usize,
}

impl PhraseEmbedder {
    /// New embedder projecting `in_dim` token embeddings to `out_dim`
    /// phrase embeddings.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> PhraseEmbedder {
        let mut rng = StdRng::seed_from_u64(seed);
        PhraseEmbedder {
            dense: Dense::new(in_dim, out_dim, &mut rng),
        }
    }

    /// Input (token-embedding) dimensionality.
    pub fn in_dim(&self) -> usize {
        self.dense.in_dim()
    }

    /// Output (phrase-embedding) dimensionality.
    pub fn out_dim(&self) -> usize {
        self.dense.out_dim()
    }

    /// Mean-pool `n_rows` embedding rows (yielded by `rows`) and project
    /// through the dense head, without materializing an intermediate
    /// [`Matrix`]. Bit-identical to the historical
    /// `Matrix::row_mean` + `Dense::infer` path: rows accumulate in yield
    /// order from a zero vector (matching `col_sums`), the mean is a
    /// reciprocal multiply (matching `row_mean`), and the projection uses
    /// the same ikj accumulation order with the bias added last.
    pub fn embed_rows_iter<'r>(
        &self,
        n_rows: usize,
        rows: impl Iterator<Item = &'r [f32]>,
    ) -> Vec<f32> {
        if n_rows == 0 {
            return vec![0.0; self.out_dim()];
        }
        let mut pooled = vec![0.0f32; self.in_dim()];
        for row in rows {
            emd_simd::add_assign(&mut pooled, row);
        }
        emd_simd::scale(&mut pooled, 1.0 / n_rows as f32);
        let mut out = vec![0.0f32; self.out_dim()];
        emd_simd::dense_forward(
            &pooled,
            &self.dense.w.value.data,
            &self.dense.b.value.data,
            &mut out,
        );
        out
    }

    /// Embed a set of token-embedding rows: mean-pool then project.
    pub fn embed_rows(&self, rows: &Matrix) -> Vec<f32> {
        self.embed_rows_iter(rows.rows, (0..rows.rows).map(|r| rows.row(r)))
    }

    /// Embed the tokens of `span` within a sentence's `[T, d]` embeddings.
    pub fn embed_span(&self, token_embeddings: &Matrix, span: &Span) -> Vec<f32> {
        let end = span.end.min(token_embeddings.rows);
        if span.start >= end {
            return vec![0.0; self.out_dim()];
        }
        self.embed_rows_iter(
            end - span.start,
            (span.start..end).map(|t| token_embeddings.row(t)),
        )
    }

    /// [`PhraseEmbedder::embed_span`] over an arena-backed embedding view
    /// (the scan hot path — no row copies, no temp matrix).
    pub fn embed_span_view(&self, te: EmbView<'_>, span: &Span) -> Vec<f32> {
        let end = span.end.min(te.rows);
        if span.start >= end {
            return vec![0.0; self.out_dim()];
        }
        self.embed_rows_iter(end - span.start, (span.start..end).map(|t| te.row(t)))
    }

    /// Cosine similarity the siamese network outputs for a pair.
    pub fn pair_similarity(&self, a: &Matrix, b: &Matrix) -> f32 {
        cosine(&self.embed_rows(a), &self.embed_rows(b))
    }

    /// Mean squared error of predicted vs gold similarity over a set.
    pub fn mse(&self, pairs: &[StsExample]) -> f32 {
        if pairs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (a, b, y) in pairs {
            let d = self.pair_similarity(a, b) - y;
            total += d * d;
        }
        total / pairs.len() as f32
    }

    /// Train the pooling head on STS pairs with the siamese objective.
    ///
    /// Keeps the best-validation checkpoint (paper: "save the best model
    /// checkpoint"), restoring it before returning.
    pub fn train_sts(
        &mut self,
        train: &[StsExample],
        val: &[StsExample],
        cfg: &StsTrainConfig,
    ) -> StsTrainReport {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut best_val = self.mse(val);
        let mut best_epoch = 0usize;
        let mut best_w = self.dense.w.value.clone();
        let mut best_b = self.dense.b.value.clone();
        let mut epochs_run = 0usize;

        for epoch in 0..cfg.epochs {
            epochs_run = epoch + 1;
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                self.dense.zero_grads();
                for &i in chunk {
                    let (a, b, y) = &train[i];
                    self.accumulate_pair_grad(a, b, *y);
                }
                let mut params = self.dense.params_mut();
                opt.step(&mut params);
            }
            let v = self.mse(val);
            if v < best_val - 1e-6 {
                best_val = v;
                best_epoch = epoch + 1;
                best_w = self.dense.w.value.clone();
                best_b = self.dense.b.value.clone();
            } else if epoch + 1 - best_epoch >= cfg.patience {
                break;
            }
        }
        self.dense.w.value = best_w;
        self.dense.b.value = best_b;
        StsTrainReport {
            best_val_mse: best_val,
            best_epoch,
            epochs_run,
        }
    }

    /// Accumulate the gradient of `(cos(u,v) − y)²` into the dense layer,
    /// where `u`, `v` come from the two mirrored passes.
    fn accumulate_pair_grad(&mut self, a: &Matrix, b: &Matrix, y: f32) {
        if a.rows == 0 || b.rows == 0 {
            return;
        }
        let xa = a.row_mean();
        let xb = b.row_mean();
        let ua = self.dense.infer(&xa);
        let ub = self.dense.infer(&xb);
        let (u, v) = (ua.row(0), ub.row(0));
        let nu = dot(u, u).sqrt();
        let nv = dot(v, v).sqrt();
        if nu < 1e-8 || nv < 1e-8 {
            return;
        }
        let c = dot(u, v) / (nu * nv);
        let dl_dc = 2.0 * (c - y);
        // ∂c/∂u = v/(|u||v|) − c·u/|u|² ; symmetric for v.
        let mut gu = Matrix::zeros(1, u.len());
        let mut gv = Matrix::zeros(1, v.len());
        for i in 0..u.len() {
            gu.data[i] = dl_dc * (v[i] / (nu * nv) - c * u[i] / (nu * nu));
            gv.data[i] = dl_dc * (u[i] / (nu * nv) - c * v[i] / (nv * nv));
        }
        // Mirrored weights: both passes accumulate into the same params.
        self.dense.w.grad.add_assign(&xa.matmul_tn(&gu));
        self.dense.w.grad.add_assign(&xb.matmul_tn(&gv));
        self.dense.b.grad.add_assign(&gu.col_sums());
        self.dense.b.grad.add_assign(&gv.col_sums());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn rand_rows(t: usize, d: usize, rng: &mut StdRng) -> Matrix {
        Matrix::from_vec(t, d, (0..t * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    /// Build a toy STS set where similarity is determined by a shared
    /// latent direction: similar pairs share it, dissimilar ones don't.
    fn toy_sts(n: usize, d: usize, seed: u64) -> Vec<StsExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let latent: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (0..n)
            .map(|i| {
                let similar = i % 2 == 0;
                let mut a = rand_rows(4, d, &mut rng);
                let mut b = rand_rows(4, d, &mut rng);
                if similar {
                    for r in 0..4 {
                        for (c, l) in latent.iter().enumerate() {
                            let v = 3.0 * l;
                            a.data[r * d + c] += v;
                            b.data[r * d + c] += v;
                        }
                    }
                }
                (a, b, if similar { 0.9 } else { 0.1 })
            })
            .collect()
    }

    #[test]
    fn embed_shapes() {
        let pe = PhraseEmbedder::new(8, 4, 0);
        let rows = Matrix::zeros(3, 8);
        assert_eq!(pe.embed_rows(&rows).len(), 4);
        assert_eq!(pe.embed_rows(&Matrix::zeros(0, 8)), vec![0.0; 4]);
    }

    #[test]
    fn embed_span_selects_rows() {
        let pe = PhraseEmbedder::new(2, 2, 1);
        let mut te = Matrix::zeros(4, 2);
        te.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        te.row_mut(2).copy_from_slice(&[3.0, 4.0]);
        let full = pe.embed_span(&te, &Span::new(1, 3));
        // Must equal embedding of the mean row [2,3].
        let mean = Matrix::from_vec(1, 2, vec![2.0, 3.0]);
        let expect = pe.embed_rows(&mean);
        for (a, b) in full.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn iter_path_bit_identical_to_matrix_path() {
        let mut rng = StdRng::seed_from_u64(77);
        let pe = PhraseEmbedder::new(8, 4, 13);
        let te = rand_rows(5, 8, &mut rng);
        let fast = pe.embed_rows(&te);
        let slow = pe.dense.infer(&te.row_mean()).row(0).to_vec();
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fused pooling path must be bit-identical to row_mean + infer"
        );
    }

    #[test]
    fn span_view_matches_embed_span() {
        let mut rng = StdRng::seed_from_u64(78);
        let pe = PhraseEmbedder::new(6, 3, 14);
        let te = rand_rows(7, 6, &mut rng);
        let view = EmbView {
            data: &te.data,
            rows: te.rows,
            cols: te.cols,
        };
        for span in [
            Span::new(0, 7),
            Span::new(2, 5),
            Span::new(5, 99),
            Span::new(9, 12),
        ] {
            let a = pe.embed_span(&te, &span);
            let b = pe.embed_span_view(view, &span);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "span {span:?}"
            );
        }
    }

    #[test]
    fn out_of_range_span_is_zeros() {
        let pe = PhraseEmbedder::new(2, 3, 2);
        let te = Matrix::zeros(2, 2);
        assert_eq!(pe.embed_span(&te, &Span::new(5, 7)), vec![0.0; 3]);
    }

    #[test]
    fn training_reduces_validation_mse() {
        let train = toy_sts(120, 6, 3);
        let val = toy_sts(40, 6, 4);
        let mut pe = PhraseEmbedder::new(6, 4, 5);
        let before = pe.mse(&val);
        let report = pe.train_sts(
            &train,
            &val,
            &StsTrainConfig {
                epochs: 60,
                patience: 60,
                ..Default::default()
            },
        );
        let after = pe.mse(&val);
        assert!(
            after < before * 0.8,
            "val MSE should drop: {before} → {after} (report {report:?})"
        );
        assert!(report.best_val_mse <= before);
    }

    #[test]
    fn similar_pairs_score_higher_after_training() {
        let train = toy_sts(150, 6, 6);
        let mut pe = PhraseEmbedder::new(6, 4, 7);
        pe.train_sts(
            &train,
            &train[..30],
            &StsTrainConfig {
                epochs: 60,
                patience: 60,
                ..Default::default()
            },
        );
        let test = toy_sts(40, 6, 8);
        let mut sim_sum = 0.0;
        let mut dis_sum = 0.0;
        let mut n = 0;
        for (i, (a, b, _)) in test.iter().enumerate() {
            let s = pe.pair_similarity(a, b);
            if i % 2 == 0 {
                sim_sum += s;
            } else {
                dis_sum += s;
                n += 1;
            }
        }
        assert!(
            sim_sum / n as f32 > dis_sum / n as f32 + 0.2,
            "similar {} vs dissimilar {}",
            sim_sum / n as f32,
            dis_sum / n as f32
        );
    }

    #[test]
    fn early_stopping_fires() {
        let train = toy_sts(40, 4, 9);
        let val = toy_sts(10, 4, 10);
        let mut pe = PhraseEmbedder::new(4, 3, 11);
        let report = pe.train_sts(
            &train,
            &val,
            &StsTrainConfig {
                epochs: 1000,
                patience: 3,
                ..Default::default()
            },
        );
        assert!(report.epochs_run < 1000, "patience must stop training");
    }
}
