//! The Entity Classifier (§V-C).
//!
//! A multi-layer feed-forward network with ReLU activations and a sigmoid
//! output, fed the global candidate embedding concatenated with the
//! candidate's token length (the paper's "+1" feature). The sigmoid output
//! — the probability of the candidate being a true entity — is bucketed by
//! the α/β/γ thresholds:
//!
//! * `p ≥ α (0.55)` → confidently an **entity**,
//! * `p ≤ β (0.40)` → confidently a **non-entity**,
//! * otherwise → **ambiguous**: the candidate stays pending and is
//!   re-scored as more mentions (hence a sharper global embedding) arrive.

use crate::config::GlobalizerConfig;
use emd_nn::activations::{sigmoid, Relu};
use emd_nn::dense::Dense;
use emd_nn::loss::bce_with_logits;
use emd_nn::matrix::Matrix;
use emd_nn::optim::Adam;
use emd_nn::param::{Net, Param};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Classifier verdict for a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateLabel {
    /// Not yet scored.
    Pending,
    /// Confidently an entity (`p ≥ α`).
    Entity,
    /// Confidently a non-entity (`p ≤ β`).
    NonEntity,
    /// In the γ band — needs more evidence downstream.
    Ambiguous,
}

/// The feed-forward entity classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityClassifier {
    l1: Dense,
    l2: Dense,
    l3: Dense,
    #[serde(skip)]
    a1: Relu,
    #[serde(skip)]
    a2: Relu,
}

/// Training hyperparameters (paper: Adam lr 0.0015, batch 128, up to 1000
/// epochs, early stopping after 20 stagnant epochs, 80-20 split).
#[derive(Debug, Clone)]
pub struct ClassifierTrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Shuffle / split seed.
    pub seed: u64,
}

impl Default for ClassifierTrainConfig {
    fn default() -> Self {
        ClassifierTrainConfig {
            epochs: 1000,
            lr: 0.0015,
            batch_size: 128,
            patience: 20,
            seed: 42,
        }
    }
}

/// Training outcome, including the validation F1 of Table II.
#[derive(Debug, Clone)]
pub struct ClassifierTrainReport {
    /// Best validation F1 (threshold 0.5) reached.
    pub best_val_f1: f32,
    /// Epoch of the best checkpoint.
    pub best_epoch: usize,
    /// Epochs actually run.
    pub epochs_run: usize,
}

impl EntityClassifier {
    /// New classifier over `in_dim` features (global embedding + length).
    pub fn new(in_dim: usize, seed: u64) -> EntityClassifier {
        let mut rng = StdRng::seed_from_u64(seed);
        EntityClassifier {
            l1: Dense::new(in_dim, 32, &mut rng),
            l2: Dense::new(32, 16, &mut rng),
            l3: Dense::new(16, 1, &mut rng),
            a1: Relu::new(),
            a2: Relu::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.l1.in_dim()
    }

    /// Build the feature vector: global embedding ‖ token length.
    pub fn features(embedding: &[f32], token_len: usize) -> Vec<f32> {
        let mut f = Vec::with_capacity(embedding.len() + 1);
        f.extend_from_slice(embedding);
        f.push(token_len as f32);
        f
    }

    fn logit_infer(&self, x: &[f32]) -> f32 {
        // Hidden widths are fixed by the constructor (in → 32 → 16 → 1),
        // so the whole forward pass fits in stack buffers: no Matrix
        // temporaries, no heap traffic per scored candidate. The kernels
        // replicate `Dense::infer` + in-place ReLU exactly (same ikj
        // accumulation order, bias added after the full dot product), so
        // logits are bit-identical to the historical Matrix-based path.
        let mut h1 = [0.0f32; 32];
        let mut h2 = [0.0f32; 16];
        let mut out = [0.0f32; 1];
        emd_simd::dense_forward(x, &self.l1.w.value.data, &self.l1.b.value.data, &mut h1);
        emd_simd::relu(&mut h1);
        emd_simd::dense_forward(&h1, &self.l2.w.value.data, &self.l2.b.value.data, &mut h2);
        emd_simd::relu(&mut h2);
        emd_simd::dense_forward(&h2, &self.l3.w.value.data, &self.l3.b.value.data, &mut out);
        out[0]
    }

    /// Probability that the candidate is a true entity.
    pub fn predict(&self, features: &[f32]) -> f32 {
        sigmoid(self.logit_infer(features))
    }

    /// Bucket a probability by the α/β/γ thresholds.
    pub fn classify(p: f32, cfg: &GlobalizerConfig) -> CandidateLabel {
        if p >= cfg.alpha {
            CandidateLabel::Entity
        } else if p <= cfg.beta {
            CandidateLabel::NonEntity
        } else {
            CandidateLabel::Ambiguous
        }
    }

    /// Forward with caches + backward for one example; returns loss.
    /// `weight` scales the example's contribution (class re-weighting).
    fn train_step(&mut self, x: &[f32], target: f32, weight: f32) -> f32 {
        let x = Matrix::row_vector(x);
        let h1 = self.l1.forward(&x);
        let r1 = self.a1.forward(&h1);
        let h2 = self.l2.forward(&r1);
        let r2 = self.a2.forward(&h2);
        let logit = self.l3.forward(&r2).data[0];
        let (loss, g) = bce_with_logits(logit, target);
        let (loss, g) = (loss * weight, g * weight);
        let g3 = self.l3.backward(&Matrix::from_vec(1, 1, vec![g]));
        let g2 = self.l2.backward(&self.a2.backward(&g3));
        let _ = self.l1.backward(&self.a1.backward(&g2));
        loss
    }

    /// F1 at threshold 0.5 on a labelled set.
    pub fn f1(&self, data: &[(Vec<f32>, bool)]) -> f32 {
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for (x, y) in data {
            let pred = self.predict(x) >= 0.5;
            match (pred, *y) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        if tp == 0 {
            return 0.0;
        }
        let p = tp as f32 / (tp + fp) as f32;
        let r = tp as f32 / (tp + fn_) as f32;
        2.0 * p * r / (p + r)
    }

    /// Train on labelled `(features, is_entity)` records with an 80-20
    /// train/validation split; keeps and restores the best-F1 checkpoint.
    pub fn train(
        &mut self,
        data: &[(Vec<f32>, bool)],
        cfg: &ClassifierTrainConfig,
    ) -> ClassifierTrainReport {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(&mut rng);
        let n_val = (data.len() / 5).max(1);
        let (val_idx, train_idx) = order.split_at(n_val.min(order.len()));
        let val: Vec<(Vec<f32>, bool)> = val_idx.iter().map(|&i| data[i].clone()).collect();
        let mut train_order: Vec<usize> = train_idx.to_vec();

        // Candidate sets are imbalanced (weak proposers generate far more
        // false candidates than true entities); weight the positive class
        // so recall is not sacrificed.
        let n_pos = train_idx.iter().filter(|&&i| data[i].1).count().max(1);
        let n_neg = (train_idx.len() - n_pos).max(1);
        let pos_weight = (n_neg as f32 / n_pos as f32).clamp(0.2, 5.0);

        let mut opt = Adam::new(cfg.lr);
        let mut best_f1 = self.f1(&val);
        let mut best_epoch = 0usize;
        let mut best: Vec<Matrix> = self.params_mut().iter().map(|p| p.value.clone()).collect();
        let mut epochs_run = 0usize;
        for epoch in 0..cfg.epochs {
            epochs_run = epoch + 1;
            train_order.shuffle(&mut rng);
            for chunk in train_order.chunks(cfg.batch_size) {
                self.zero_grads();
                for &i in chunk {
                    let (x, y) = &data[i];
                    let w = if *y { pos_weight } else { 1.0 };
                    let _ = self.train_step(x, if *y { 1.0 } else { 0.0 }, w);
                }
                let mut params = self.params_mut();
                opt.step(&mut params);
            }
            let f1 = self.f1(&val);
            if f1 > best_f1 + 1e-6 {
                best_f1 = f1;
                best_epoch = epoch + 1;
                best = self.params_mut().iter().map(|p| p.value.clone()).collect();
            } else if epoch + 1 - best_epoch >= cfg.patience {
                break;
            }
        }
        for (p, b) in self.params_mut().into_iter().zip(best) {
            p.value = b;
        }
        ClassifierTrainReport {
            best_val_f1: best_f1,
            best_epoch,
            epochs_run,
        }
    }
}

impl Net for EntityClassifier {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.l1.params_mut();
        ps.extend(self.l2.params_mut());
        ps.extend(self.l3.params_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Linearly separable toy data: entities live in the positive
    /// half-space of a latent direction.
    fn toy_data(n: usize, d: usize, seed: u64) -> Vec<(Vec<f32>, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (0..n)
            .map(|_| {
                let x: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
                let s: f32 = x.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
                let y = s > 0.0;
                (EntityClassifier::features(&x, 1), y)
            })
            .collect()
    }

    #[test]
    fn features_append_length() {
        let f = EntityClassifier::features(&[0.1, 0.2], 3);
        assert_eq!(f, vec![0.1, 0.2, 3.0]);
    }

    #[test]
    fn thresholds() {
        let cfg = GlobalizerConfig::default();
        assert_eq!(
            EntityClassifier::classify(0.9, &cfg),
            CandidateLabel::Entity
        );
        assert_eq!(
            EntityClassifier::classify(0.55, &cfg),
            CandidateLabel::Entity
        );
        assert_eq!(
            EntityClassifier::classify(0.5, &cfg),
            CandidateLabel::Ambiguous
        );
        assert_eq!(
            EntityClassifier::classify(0.40, &cfg),
            CandidateLabel::NonEntity
        );
        assert_eq!(
            EntityClassifier::classify(0.1, &cfg),
            CandidateLabel::NonEntity
        );
    }

    #[test]
    fn stack_forward_bit_identical_to_matrix_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = EntityClassifier::new(7, 8);
        for _ in 0..32 {
            let x: Vec<f32> = (0..7).map(|_| rng.gen_range(-3.0..3.0f32)).collect();
            // The historical Matrix-based forward pass, verbatim.
            let xm = Matrix::row_vector(&x);
            let mut h = c.l1.infer(&xm);
            for v in &mut h.data {
                *v = v.max(0.0);
            }
            let mut h = c.l2.infer(&h);
            for v in &mut h.data {
                *v = v.max(0.0);
            }
            let want = c.l3.infer(&h).data[0];
            assert_eq!(
                c.logit_infer(&x).to_bits(),
                want.to_bits(),
                "stack-buffer forward must be bit-identical"
            );
        }
    }

    #[test]
    fn predict_in_unit_interval() {
        let c = EntityClassifier::new(4, 0);
        let p = c.predict(&[0.5, -0.5, 1.0, 2.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn learns_separable_data() {
        let data = toy_data(600, 5, 1);
        let mut c = EntityClassifier::new(6, 2);
        let report = c.train(
            &data,
            &ClassifierTrainConfig {
                epochs: 150,
                patience: 30,
                ..Default::default()
            },
        );
        assert!(report.best_val_f1 > 0.85, "val F1 = {}", report.best_val_f1);
    }

    #[test]
    fn early_stopping() {
        let data = toy_data(100, 3, 3);
        let mut c = EntityClassifier::new(4, 4);
        let report = c.train(
            &data,
            &ClassifierTrainConfig {
                epochs: 1000,
                patience: 5,
                ..Default::default()
            },
        );
        assert!(report.epochs_run < 1000);
    }

    #[test]
    fn f1_on_degenerate_predictor() {
        // Untrained network with huge negative bias predicts nothing → F1 0.
        let mut c = EntityClassifier::new(3, 5);
        {
            let params = c.params_mut();
            // last param is l3 bias
            let last = params.into_iter().last().unwrap();
            last.value.data[0] = -100.0;
        }
        let data = toy_data(50, 2, 6);
        assert_eq!(c.f1(&data), 0.0);
    }
}
