//! Classifier training-data harvesting (§VI, "Training Entity Classifier").
//!
//! The Entity Classifier is supervised with labelled global-embedding
//! records of candidates extracted from the D5 training stream: run the
//! Local EMD system plus the global indexing stages over D5, then label
//! each discovered candidate *entity* iff its (case-insensitive) surface
//! matches a gold mention surface in the stream.

use crate::classifier::EntityClassifier;
use crate::config::GlobalizerConfig;
use crate::globalizer::index_stream;
use crate::local::LocalEmd;
use crate::phrase_embedder::PhraseEmbedder;
use emd_text::token::Dataset;
use std::collections::HashSet;

/// Harvest `(features, is_entity)` records for classifier training from an
/// annotated stream.
pub fn harvest_training_data(
    local: &dyn LocalEmd,
    phrase: Option<&PhraseEmbedder>,
    config: &GlobalizerConfig,
    dataset: &Dataset,
) -> Vec<(Vec<f32>, bool)> {
    let sentences: Vec<_> = dataset
        .sentences
        .iter()
        .map(|a| a.sentence.clone())
        .collect();
    let state = index_stream(local, phrase, config, &sentences);

    // Gold surface keys (case-insensitive).
    let gold: HashSet<String> = dataset
        .sentences
        .iter()
        .flat_map(|a| a.gold.iter().map(|sp| sp.surface_lower(&a.sentence)))
        .collect();

    let mut out: Vec<(Vec<f32>, bool)> = Vec::new();
    for rec in state.candidates.iter() {
        let label = gold.contains(&rec.key);
        out.push((
            EntityClassifier::features(&rec.pooled_embedding(config.pooling), rec.token_len()),
            label,
        ));
        // Evaluation streams contain many single-mention candidates whose
        // "global" embedding is one local sample; expose the classifier to
        // that regime by also training on up to 3 singleton embeddings.
        for emb in rec.local_rows().take(3) {
            out.push((EntityClassifier::features(emb, rec.token_len()), label));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LexiconEmd;
    use emd_text::token::{AnnotatedSentence, DatasetKind, Sentence, SentenceId, Span};

    fn dataset() -> Dataset {
        let s1 = AnnotatedSentence {
            sentence: Sentence::from_tokens(SentenceId::new(0, 0), ["Italy", "reports", "cases"]),
            gold: vec![Span::new(0, 1)],
        };
        let s2 = AnnotatedSentence {
            sentence: Sentence::from_tokens(
                SentenceId::new(1, 0),
                ["the", "report", "from", "italy"],
            ),
            gold: vec![Span::new(3, 4)],
        };
        Dataset {
            name: "toy".into(),
            kind: DatasetKind::Streaming,
            n_topics: 1,
            sentences: vec![s1, s2],
        }
    }

    #[test]
    fn harvested_labels_follow_gold() {
        // The lexicon proposes both a true entity ("italy") and a false
        // positive ("the").
        let local = LexiconEmd::new(["italy", "the"]);
        let data = harvest_training_data(&local, None, &GlobalizerConfig::default(), &dataset());
        // 2 candidates, each with a pooled row plus singleton-mention rows.
        assert!(data.len() >= 2);
        // Features = 6-dim syntactic + length.
        assert!(data.iter().all(|(f, _)| f.len() == 7));
        let n_pos = data.iter().filter(|(_, y)| *y).count();
        assert!(n_pos >= 1, "italy rows are positive");
        assert!(
            n_pos < data.len(),
            "the false candidate contributes negatives"
        );
    }

    #[test]
    fn empty_local_emd_harvests_nothing() {
        let local = LexiconEmd::new(Vec::<String>::new());
        let data = harvest_training_data(&local, None, &GlobalizerConfig::default(), &dataset());
        assert!(data.is_empty());
    }
}
