//! The Local EMD plug-in interface.
//!
//! Any EMD system that processes sentences individually can be inserted into
//! the framework by implementing [`LocalEmd`] — without algorithmic
//! modification, exactly as the paper requires ("inserted as blackbox within
//! the framework without any technical alteration").

use emd_nn::matrix::Matrix;
use emd_text::token::{Sentence, Span};

/// The result of running a Local EMD system on one sentence.
#[derive(Debug, Clone)]
pub struct LocalEmdOutput {
    /// Predicted entity-mention spans.
    pub spans: Vec<Span>,
    /// For deep systems: the `[T, d]` entity-aware token embeddings from the
    /// final pre-classification layer (§IV). `None` for non-deep systems.
    pub token_embeddings: Option<Matrix>,
}

/// A pluggable Local EMD system.
///
/// `Send + Sync` is required so the framework can fan sentence processing
/// out across threads ([`crate::globalizer::Globalizer::process_batch_parallel`]);
/// inference is `&self` and every provided implementation is plain data.
///
/// ## Boundary contract
///
/// The framework treats implementations as **untrusted black boxes** and
/// hardens the boundary once, at ingestion:
///
/// * **Spans** may be empty, out of bounds, overlapping, or unsorted —
///   ingestion sorts them and drops invalid or overlapping entries. They
///   never reach `LocalOnly` outputs, candidate registration, or
///   `locally_detected` evidence.
/// * **Token embeddings**, when present, must have one row per token and
///   finite values; otherwise the whole sentence is rejected (a truncated
///   or NaN-poisoned matrix cannot be partially trusted) and diverted to
///   the quarantine buffer on
///   [`crate::globalizer::GlobalizerOutput::quarantined`].
/// * **Panics** in [`LocalEmd::process`] are caught per sentence, retried
///   within [`crate::config::GlobalizerConfig::poison_retries`], and
///   quarantine the sentence when the budget is exhausted — one poisoned
///   input never aborts a batch or leaks worker threads.
///
/// Implementations therefore need no defensive validation of their own
/// output; conversely they must not rely on invalid spans being emitted.
pub trait LocalEmd: Send + Sync {
    /// Human-readable system name. Used in reports, and stamped into
    /// `LocalDetect` / local-phase `PhaseSpan` trace events
    /// (`emd_trace`) as the `system` causal field, so a provenance chain
    /// shows *which* local system proposed each span.
    fn name(&self) -> &str;

    /// Dimensionality of the entity-aware token embeddings, or `None` for
    /// non-deep systems (which fall back to syntactic embeddings in the
    /// global phase).
    fn embedding_dim(&self) -> Option<usize>;

    /// Run EMD on a single sentence in isolation.
    fn process(&self, sentence: &Sentence) -> LocalEmdOutput;

    /// Convenience: is this a deep system?
    fn is_deep(&self) -> bool {
        self.embedding_dim().is_some()
    }
}

/// A trivial Local EMD used in tests and docs: tags tokens that appear in a
/// fixed lexicon (case-insensitively), no embeddings.
#[derive(Debug, Clone, Default)]
pub struct LexiconEmd {
    /// Lower-cased single-token entries.
    pub lexicon: std::collections::HashSet<String>,
}

impl LexiconEmd {
    /// Build from an iterator of entries.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(entries: I) -> Self {
        LexiconEmd {
            lexicon: entries
                .into_iter()
                .map(|s| s.into().to_lowercase())
                .collect(),
        }
    }
}

impl LocalEmd for LexiconEmd {
    fn name(&self) -> &str {
        "LexiconEmd"
    }

    fn embedding_dim(&self) -> Option<usize> {
        None
    }

    fn process(&self, sentence: &Sentence) -> LocalEmdOutput {
        let spans = sentence
            .texts()
            .enumerate()
            .filter(|(_, t)| self.lexicon.contains(&t.to_lowercase()))
            .map(|(i, _)| Span::new(i, i + 1))
            .collect();
        LocalEmdOutput {
            spans,
            token_embeddings: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::SentenceId;

    #[test]
    fn lexicon_emd_tags_case_insensitively() {
        let emd = LexiconEmd::new(["Italy", "covid"]);
        let s = Sentence::from_tokens(SentenceId::new(0, 0), ["COVID", "hits", "italy"]);
        let out = emd.process(&s);
        assert_eq!(out.spans, vec![Span::new(0, 1), Span::new(2, 3)]);
        assert!(out.token_embeddings.is_none());
        assert!(!emd.is_deep());
    }
}
