//! # emd-core
//!
//! The paper's primary contribution: the **EMD Globalizer** framework
//! (Saha Bhowmick, Dragut & Meng, ICDE 2022) — a stream-aware, two-phase
//! entity-mention-detection pipeline that wraps any existing EMD system:
//!
//! 1. **Local EMD** ([`local::LocalEmd`]): a pluggable black-box tagger runs
//!    over each tweet-sentence in isolation, proposing seed entity
//!    candidates and (for deep systems) per-token *entity-aware embeddings*.
//! 2. **Global EMD**:
//!    * candidates are indexed in a case-insensitive prefix-trie forest, the
//!      [`ctrie::CTrie`];
//!    * a rescan of the stream ([`mention`]) finds *every* mention of every
//!      candidate — recovering mentions the local system missed and
//!      correcting partial extractions;
//!    * each mention yields a *local candidate embedding*: for deep systems
//!      the [`phrase_embedder::PhraseEmbedder`] (an SBERT-style frozen-
//!      encoder siamese head) pools token embeddings into a phrase vector;
//!      for non-deep systems the 6-dimensional syntactic embedding of
//!      §V-B1 ([`emd_text::casing::SyntacticClass`]) is used;
//!    * embeddings pool incrementally per candidate in the
//!      [`candidatebase::CandidateBase`] into a *global candidate embedding*;
//!    * the [`classifier::EntityClassifier`] separates true entities from
//!      false positives using the α/β/γ thresholds of §V-C;
//!    * all mentions of accepted candidates are emitted.
//!
//! The [`globalizer::Globalizer`] orchestrates both phases, supports batch
//! and incremental execution, and exposes the ablation modes of the paper's
//! Figure 6.

pub mod candidatebase;
pub mod classifier;
pub mod config;
pub mod ctrie;
pub mod dirtyset;
pub mod globalizer;
pub mod local;
pub mod mention;
pub mod obs;
pub mod phrase_embedder;
pub mod supervisor;
pub mod training;
pub mod tweetbase;

pub use classifier::{CandidateLabel, EntityClassifier};
pub use config::{Ablation, GlobalizerConfig};
pub use ctrie::CTrie;
pub use globalizer::{Globalizer, GlobalizerOutput};
pub use local::{LocalEmd, LocalEmdOutput};
pub use obs::{PhaseTimings, PipelineMetrics};
pub use phrase_embedder::PhraseEmbedder;
pub use supervisor::{RunReport, StreamSupervisor, SupervisorConfig, SupervisorConfigError};
