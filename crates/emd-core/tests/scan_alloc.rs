//! Allocation regression test for the occurrence-scan hot path.
//!
//! PR 4's scan built two fresh `Vec<String>` of lowercased tokens per
//! sentence (one for the trie walk, one for the posting-list lookups) —
//! a heap allocation per token per sentence, dominating the scan profile.
//! The SoA layout interns folded tokens once at ingest, so the steady
//! state walk is pure symbol comparisons. This test pins that property
//! with a counting global allocator: a warmed [`extract_mentions_into`]
//! call performs **zero** heap allocations.

use emd_core::ctrie::CTrie;
use emd_core::mention::extract_mentions_into;
use emd_text::intern::{Interner, Sym};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper that counts allocation calls.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_occurrence_scan_allocates_nothing() {
    // A realistic small inventory: multi-token candidates sharing
    // prefixes, so the walk exercises descent, terminal backtracking, and
    // restarts.
    let mut interner = Interner::new();
    let mut trie = CTrie::new();
    for cand in [
        &["andy", "beshear"][..],
        &["andy"][..],
        &["new", "york"][..],
        &["new", "york", "city"][..],
        &["coronavirus"][..],
        &["world", "health", "organization"][..],
    ] {
        trie.insert(&mut interner, cand);
    }

    // Sentences arrive pre-interned (what `TweetBase::insert` produces).
    let sentences: Vec<Vec<Sym>> = [
        &["gov", "andy", "beshear", "spoke", "on", "coronavirus"][..],
        &["new", "york", "city", "reports", "cases"][..],
        &[
            "the",
            "world",
            "health",
            "organization",
            "and",
            "new",
            "york",
        ][..],
        &["nothing", "matches", "in", "this", "one"][..],
    ]
    .iter()
    .map(|s| s.iter().map(|t| interner.intern_folded(t)).collect())
    .collect();

    // Warm the scratch buffer to its high-water capacity.
    let mut out = Vec::new();
    for syms in &sentences {
        extract_mentions_into(&trie, syms, 6, &mut out);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut total = 0usize;
    for _ in 0..100 {
        for syms in &sentences {
            extract_mentions_into(&trie, syms, 6, &mut out);
            total += out.len();
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state occurrence scan must not touch the heap \
         ({} allocations over 400 scans)",
        after - before
    );
    assert_eq!(total, 100 * 5, "scans still find every mention");
}
