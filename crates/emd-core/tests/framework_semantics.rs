//! Semantic contracts of the framework, tested against adversarial toy
//! local systems (distinct from the unit tests inside the modules).

use emd_core::candidatebase::MentionRef;
use emd_core::classifier::CandidateLabel;
use emd_core::config::{Ablation, Pooling};
use emd_core::local::{LexiconEmd, LocalEmd, LocalEmdOutput};
use emd_core::{EntityClassifier, Globalizer, GlobalizerConfig};
use emd_nn::param::Net;
use emd_text::token::{Sentence, SentenceId, Span};

fn sents(msgs: &[&[&str]]) -> Vec<Sentence> {
    msgs.iter()
        .enumerate()
        .map(|(i, w)| Sentence::from_tokens(SentenceId::new(i as u64, 0), w.iter().copied()))
        .collect()
}

fn biased_classifier(dim: usize, bias: f32) -> EntityClassifier {
    let mut c = EntityClassifier::new(dim, 0);
    c.params_mut().into_iter().last().unwrap().value.data[0] = bias;
    c
}

/// A local system that emits spans past the sentence end — the framework
/// must not panic and must not leak invalid spans into the CTrie.
#[derive(Debug)]
struct OutOfRangeEmd;
impl LocalEmd for OutOfRangeEmd {
    fn name(&self) -> &str {
        "out-of-range"
    }
    fn embedding_dim(&self) -> Option<usize> {
        None
    }
    fn process(&self, s: &Sentence) -> LocalEmdOutput {
        LocalEmdOutput {
            spans: vec![Span::new(0, s.len() + 3)],
            token_embeddings: None,
        }
    }
}

#[test]
fn invalid_local_spans_are_ignored() {
    let local = OutOfRangeEmd;
    let clf = biased_classifier(7, 10.0);
    let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
    let (out, state) = g.run(&sents(&[&["a", "b"], &["c"]]), 8);
    assert_eq!(
        state.ctrie.len(),
        0,
        "oversized spans must not register candidates"
    );
    let total: usize = out.per_sentence.iter().map(|(_, v)| v.len()).sum();
    assert_eq!(total, 0);
}

/// A local system emitting spans longer than `max_candidate_len` — they
/// must be excluded from the trie.
#[derive(Debug)]
struct LongSpanEmd;
impl LocalEmd for LongSpanEmd {
    fn name(&self) -> &str {
        "long-span"
    }
    fn embedding_dim(&self) -> Option<usize> {
        None
    }
    fn process(&self, s: &Sentence) -> LocalEmdOutput {
        let spans = if s.len() >= 5 {
            vec![Span::new(0, 5)]
        } else {
            vec![]
        };
        LocalEmdOutput {
            spans,
            token_embeddings: None,
        }
    }
}

#[test]
fn max_candidate_len_enforced() {
    let local = LongSpanEmd;
    let clf = biased_classifier(7, 10.0);
    let cfg = GlobalizerConfig {
        max_candidate_len: 3,
        ..Default::default()
    };
    let g = Globalizer::new(&local, None, &clf, cfg);
    let (_, state) = g.run(&sents(&[&["a", "b", "c", "d", "e"]]), 8);
    assert!(state.ctrie.is_empty());
}

#[test]
fn empty_stream_is_fine() {
    let local = LexiconEmd::new(["x"]);
    let clf = biased_classifier(7, 10.0);
    let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
    let (out, state) = g.run(&[], 8);
    assert!(out.per_sentence.is_empty());
    assert_eq!(out.n_candidates, 0);
    assert!(state.tweetbase.is_empty());
}

#[test]
fn finalize_is_idempotent() {
    let local = LexiconEmd::new(["italy"]);
    let clf = biased_classifier(7, 10.0);
    let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
    let stream = sents(&[&["Italy", "x"], &["italy", "y"]]);
    let mut state = g.new_state();
    g.process_batch(&mut state, &stream);
    let a = g.finalize(&mut state);
    let b = g.finalize(&mut state);
    assert_eq!(a.per_sentence, b.per_sentence);
    assert_eq!(a.n_entities, b.n_entities);
}

#[test]
fn candidate_scores_exposed_after_full_run() {
    let local = LexiconEmd::new(["italy", "the"]);
    let clf = biased_classifier(7, -10.0); // reject everything
    let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
    let (_, state) = g.run(&sents(&[&["the", "Italy", "story"]]), 8);
    for c in state.candidates.iter() {
        let p = c.score.expect("scored at finalize");
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(c.label, CandidateLabel::NonEntity);
    }
}

#[test]
fn trust_local_fallback_changes_gamma_band_only() {
    // A classifier pinned into the γ band: sigmoid(logit)=0.5 everywhere
    // (zero weights). With fallback, locally-detected candidates are
    // accepted; without, final_threshold=0.5 accepts them as well
    // (p==0.5); raise the threshold to separate the two behaviours.
    let local = LexiconEmd::new(["italy"]);
    let clf = EntityClassifier::new(7, 1); // near-zero logits ≈ 0.5
    let stream = sents(&[&["Italy", "x"]]);
    let run = |trust: bool| {
        let cfg = GlobalizerConfig {
            final_threshold: 0.9,
            trust_local_fallback: trust,
            ..Default::default()
        };
        let g = Globalizer::new(&local, None, &clf, cfg);
        let (out, _) = g.run(&stream, 8);
        out.per_sentence[0].1.len()
    };
    assert_eq!(
        run(true),
        1,
        "fallback accepts the locally-detected candidate"
    );
    assert_eq!(
        run(false),
        0,
        "without fallback the high threshold rejects it"
    );
}

#[test]
fn pooling_modes_agree_for_single_mention() {
    use emd_core::candidatebase::CandidateBase;
    let mut cb = CandidateBase::new(3);
    let r = cb.entry("solo");
    r.add_embedding(&[0.3, -0.2, 0.9]);
    assert_eq!(
        r.pooled_embedding(Pooling::Mean),
        r.pooled_embedding(Pooling::Max)
    );
}

#[test]
fn mention_refs_distinguish_local_vs_recovered() {
    // Case-sensitive local system: only "Italy" detected locally; the
    // lowercase mention is recovered, flagged locally_detected=false.
    #[derive(Debug)]
    struct CaseSensitive;
    impl LocalEmd for CaseSensitive {
        fn name(&self) -> &str {
            "cs"
        }
        fn embedding_dim(&self) -> Option<usize> {
            None
        }
        fn process(&self, s: &Sentence) -> LocalEmdOutput {
            let spans = s
                .texts()
                .enumerate()
                .filter(|(_, t)| *t == "Italy")
                .map(|(i, _)| Span::new(i, i + 1))
                .collect();
            LocalEmdOutput {
                spans,
                token_embeddings: None,
            }
        }
    }
    let local = CaseSensitive;
    let clf = biased_classifier(7, 10.0);
    let g = Globalizer::new(&local, None, &clf, GlobalizerConfig::default());
    let (_, state) = g.run(&sents(&[&["Italy", "x"], &["italy", "y"]]), 8);
    let rec = state.candidates.get("italy").unwrap();
    let flags: Vec<bool> = rec
        .mentions
        .iter()
        .map(|m: &MentionRef| m.locally_detected)
        .collect();
    assert_eq!(flags.iter().filter(|f| **f).count(), 1);
    assert_eq!(flags.len(), 2);
}

#[test]
fn local_only_never_builds_global_state() {
    let local = LexiconEmd::new(["italy"]);
    let clf = biased_classifier(7, 10.0);
    let cfg = GlobalizerConfig {
        ablation: Ablation::LocalOnly,
        ..Default::default()
    };
    let g = Globalizer::new(&local, None, &clf, cfg);
    let (_, state) = g.run(&sents(&[&["Italy", "italy"]]), 8);
    assert!(state.candidates.is_empty());
}
