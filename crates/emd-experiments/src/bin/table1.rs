//! Regenerates Table I (dataset statistics).

fn main() {
    emd_experiments::emit("table1", &emd_experiments::reports::table1());
}
