//! Regenerates the §VI-C error analysis.

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    let suite = load_suite();
    let bert = build_variant(SystemKind::MiniBert, &suite);
    emd_experiments::emit("error_analysis", &reports::error_analysis(&suite, &bert));
}
