//! Diagnostic: inspect harvested classifier training data per system.

use emd_core::config::GlobalizerConfig;
use emd_core::training::harvest_training_data;
use emd_experiments::{build_variant, load_suite, SystemKind};

fn main() {
    let suite = load_suite();
    for kind in SystemKind::all() {
        let v = build_variant(kind, &suite);
        let data = harvest_training_data(
            v.local.as_ref(),
            v.phrase.as_ref(),
            &GlobalizerConfig::default(),
            &suite.d5,
        );
        let n_pos = data.iter().filter(|(_, y)| *y).count();
        println!(
            "{:<16} candidates={:<6} pos={:<6} ({:.1}%) dim={} val_f1={:.3}",
            kind.name(),
            data.len(),
            n_pos,
            100.0 * n_pos as f64 / data.len().max(1) as f64,
            v.embedding_dim,
            v.classifier_report.best_val_f1
        );
        // Mean feature vectors per class (first 8 dims).
        let dim = data[0].0.len();
        let mut mp = vec![0f64; dim];
        let mut mn = vec![0f64; dim];
        for (x, y) in &data {
            let tgt = if *y { &mut mp } else { &mut mn };
            for (a, &b) in tgt.iter_mut().zip(x.iter()) {
                *a += b as f64;
            }
        }
        for a in mp.iter_mut() {
            *a /= n_pos.max(1) as f64;
        }
        for a in mn.iter_mut() {
            *a /= (data.len() - n_pos).max(1) as f64;
        }
        let k = dim.min(8);
        println!(
            "  pos mean: {:?}",
            &mp[..k]
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
        println!(
            "  neg mean: {:?}",
            &mn[..k]
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
