//! Regenerates Table III (local vs global effectiveness + timing,
//! 4 systems x 6 datasets).

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    let suite = load_suite();
    let variants: Vec<_> = SystemKind::all()
        .iter()
        .map(|&k| build_variant(k, &suite))
        .collect();
    let (report, _) = reports::table3(&suite, &variants);
    emd_experiments::emit("table3", &report);
}
