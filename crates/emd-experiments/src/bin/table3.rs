//! Regenerates Table III (local vs global effectiveness + timing,
//! 4 systems x 6 datasets).

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    emd_obs::set_enabled(true);
    let suite = load_suite();
    let variants: Vec<_> = SystemKind::all()
        .iter()
        .map(|&k| build_variant(k, &suite))
        .collect();
    let (report, cells) = reports::table3(&suite, &variants);
    emd_experiments::emit("table3", &report);
    emd_experiments::emit_json(
        "phase_timings",
        &emd_experiments::phase_timings_report(&cells),
    );
}
