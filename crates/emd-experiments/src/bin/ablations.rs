//! Design-choice ablations beyond the paper's Figure 6 — the knobs
//! DESIGN.md calls out:
//!
//! * global-embedding pooling: mean (paper) vs max,
//! * the γ-band end-of-stream resolution (trust-local fallback on/off),
//! * the α/β confidence thresholds,
//! * the maximum candidate length `k` of the mention-extraction window.
//!
//! Runs the TwitterNLP variant (the cheapest trained system) on the D2
//! stream so the whole sweep completes in under a minute.

use emd_core::config::Pooling;
use emd_core::{Globalizer, GlobalizerConfig};
use emd_eval::metrics::mention_prf;
use emd_eval::tables::{f2, TextTable};
use emd_experiments::{aligned_preds, build_variant, load_suite, SystemKind};
use emd_text::token::Sentence;

fn main() {
    let suite = load_suite();
    let variant = build_variant(SystemKind::TwitterNlp, &suite);
    let d2 = &suite.std.datasets[1];
    let sentences: Vec<Sentence> = d2.sentences.iter().map(|a| a.sentence.clone()).collect();

    let eval = |cfg: GlobalizerConfig| -> (f64, f64, f64) {
        let g = Globalizer::new(
            variant.local.as_ref(),
            variant.phrase.as_ref(),
            &variant.classifier,
            cfg,
        );
        let (out, _) = g.run(&sentences, 512);
        let m = mention_prf(d2, &aligned_preds(d2, &out));
        (m.p, m.r, m.f1)
    };

    let mut report = String::from("Ablations on design choices (TwitterNLP variant, D2)\n\n");

    // 1. Pooling + trust-local grid.
    let mut t = TextTable::new(["Pooling", "Trust-local γ fallback", "P", "R", "F1"]);
    for pooling in [Pooling::Mean, Pooling::Max] {
        for trust in [true, false] {
            let (p, r, f1) = eval(GlobalizerConfig {
                pooling,
                trust_local_fallback: trust,
                ..Default::default()
            });
            t.row([
                format!("{pooling:?}"),
                trust.to_string(),
                f2(p),
                f2(r),
                f2(f1),
            ]);
        }
    }
    report.push_str(&t.render());

    // 2. Threshold sweep (α, β) around the paper's (0.55, 0.40).
    report.push('\n');
    let mut t = TextTable::new(["alpha", "beta", "P", "R", "F1"]);
    for (alpha, beta) in [
        (0.75f32, 0.60f32),
        (0.65, 0.50),
        (0.55, 0.40),
        (0.50, 0.30),
        (0.45, 0.20),
    ] {
        let (p, r, f1) = eval(GlobalizerConfig {
            alpha,
            beta,
            ..Default::default()
        });
        t.row([
            format!("{alpha:.2}"),
            format!("{beta:.2}"),
            f2(p),
            f2(r),
            f2(f1),
        ]);
    }
    report.push_str(&t.render());

    // 3. Candidate length window k.
    report.push('\n');
    let mut t = TextTable::new(["max candidate len k", "P", "R", "F1"]);
    for k in [1usize, 2, 3, 6, 10] {
        let (p, r, f1) = eval(GlobalizerConfig {
            max_candidate_len: k,
            ..Default::default()
        });
        t.row([k.to_string(), f2(p), f2(r), f2(f1)]);
    }
    report.push_str(&t.render());
    report.push_str("\nPaper defaults: mean pooling, alpha=0.55, beta=0.40, k=6.\n");

    emd_experiments::emit("ablations", &report);
}
