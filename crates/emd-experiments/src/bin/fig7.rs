//! Regenerates Figure 7 (entity recall vs mention frequency).

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    let suite = load_suite();
    let bert = build_variant(SystemKind::MiniBert, &suite);
    emd_experiments::emit("fig7", &reports::fig7(&suite, &bert));
}
