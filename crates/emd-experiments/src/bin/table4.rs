//! Regenerates Table IV (EMD Globalizer vs HIRE-NER).

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    let suite = load_suite();
    let aguilar = build_variant(SystemKind::Aguilar, &suite);
    emd_experiments::emit("table4", &reports::table4(&suite, &aguilar));
}
