//! Regenerates Figure 6 (component ablation on streaming datasets).

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    let suite = load_suite();
    let aguilar = build_variant(SystemKind::Aguilar, &suite);
    emd_experiments::emit("fig6", &reports::fig6(&suite, &aguilar));
}
