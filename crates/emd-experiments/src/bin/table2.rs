//! Regenerates Table II (Entity Classifier validation F1).

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    let suite = load_suite();
    let variants: Vec<_> = SystemKind::all()
        .iter()
        .map(|&k| build_variant(k, &suite))
        .collect();
    emd_experiments::emit("table2", &reports::table2(&variants));
}
