//! Runs every experiment, reusing trained variants, writing `results/`.

use emd_experiments::{build_variant, load_suite, reports, SystemKind};

fn main() {
    // Collect pipeline metrics for the whole run; dumped at the end.
    emd_obs::set_enabled(true);
    eprintln!(
        "[run_all] generating datasets (EMD_SCALE={}, EMD_TRAIN_SCALE={})",
        emd_experiments::eval_scale(),
        emd_experiments::train_scale()
    );
    let suite = load_suite();
    emd_experiments::emit("table1", &reports::table1());

    eprintln!("[run_all] training 4 local EMD systems + phrase embedders + classifiers ...");
    let variants: Vec<_> = SystemKind::all()
        .iter()
        .map(|&k| build_variant(k, &suite))
        .collect();
    emd_experiments::emit("table2", &reports::table2(&variants));

    eprintln!("[run_all] Table III ...");
    let (t3, cells) = reports::table3(&suite, &variants);
    emd_experiments::emit("table3", &t3);
    emd_experiments::emit_json(
        "phase_timings",
        &emd_experiments::phase_timings_report(&cells),
    );

    let aguilar = &variants[2];
    let bert = &variants[3];
    eprintln!("[run_all] Table IV ...");
    emd_experiments::emit("table4", &reports::table4(&suite, aguilar));
    eprintln!("[run_all] Figure 6 ...");
    emd_experiments::emit("fig6", &reports::fig6(&suite, aguilar));
    eprintln!("[run_all] Figure 7 ...");
    emd_experiments::emit("fig7", &reports::fig7(&suite, bert));
    eprintln!("[run_all] Error analysis ...");
    emd_experiments::emit("error_analysis", &reports::error_analysis(&suite, bert));
    // Process-wide metric totals across every experiment above, in both
    // exposition formats.
    let snap = emd_obs::global().snapshot();
    emd_experiments::emit_json("metrics", &snap.to_json());
    emd_experiments::emit("metrics_prometheus", &snap.to_prometheus());
    eprintln!("[run_all] done. (run the `ablations` binary for the design-choice sweeps)");
}
