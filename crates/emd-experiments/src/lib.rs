//! # emd-experiments
//!
//! Shared harness behind the experiment binaries that regenerate every
//! table and figure of the paper:
//!
//! | Binary            | Regenerates              |
//! |-------------------|--------------------------|
//! | `table1`          | Table I (dataset stats)  |
//! | `table2`          | Table II (classifier validation F1) |
//! | `table3`          | Table III (local vs global P/R/F1 + time) |
//! | `table4`          | Table IV (vs HIRE-NER)   |
//! | `fig6`            | Figure 6 (component ablation) |
//! | `fig7`            | Figure 7 (recall vs mention frequency) |
//! | `error_analysis`  | §VI-C error taxonomy     |
//! | (example) `coronavirus_case_study` | Figures 1 & 5 — `cargo run --release --example coronavirus_case_study` |
//! | `run_all`         | everything above, writing `results/` |
//!
//! Scale: models here are laptop-sized; the `EMD_SCALE` environment
//! variable (default 0.25) shrinks the evaluation datasets proportionally
//! and `EMD_TRAIN_SCALE` (default 0.08 → ≈3K of D5's 38K tweets) bounds
//! training cost. Shapes are stable across scales; see EXPERIMENTS.md.

use emd_baseline::{HireConfig, HireNer};
use emd_core::classifier::{ClassifierTrainConfig, ClassifierTrainReport, EntityClassifier};
use emd_core::config::{Ablation, GlobalizerConfig};
use emd_core::local::LocalEmd;
use emd_core::phrase_embedder::{PhraseEmbedder, StsExample, StsTrainConfig, StsTrainReport};
use emd_core::training::harvest_training_data;
use emd_core::{Globalizer, GlobalizerOutput, PhaseTimings};
use emd_eval::metrics::{mention_prf, Prf};
use emd_local::aguilar::{Aguilar, AguilarConfig};
use emd_local::mini_bert::{MiniBert, MiniBertConfig};
use emd_local::np_chunker::NpChunker;
use emd_local::twitter_nlp::{TwitterNlp, TwitterNlpConfig};
use emd_synth::datasets::{
    generic_training_corpus, standard_datasets, training_stream, StandardDatasets,
};
use emd_synth::sts::gen_sts;
use emd_text::token::{Dataset, Sentence, Span};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The four Local EMD instantiations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// TweeboParser-style NP chunker.
    NpChunker,
    /// Ritter et al. CRF tagger.
    TwitterNlp,
    /// Aguilar et al. BiLSTM-CNN-CRF.
    Aguilar,
    /// BERTweet-style transformer.
    MiniBert,
}

impl SystemKind {
    /// All systems in Table-III order.
    pub fn all() -> [SystemKind; 4] {
        [
            SystemKind::NpChunker,
            SystemKind::TwitterNlp,
            SystemKind::Aguilar,
            SystemKind::MiniBert,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::NpChunker => "NP Chunker",
            SystemKind::TwitterNlp => "TwitterNLP",
            SystemKind::Aguilar => "Aguilar et al.",
            SystemKind::MiniBert => "BERTweet",
        }
    }
}

/// Everything the experiments need: the world, the evaluation suite, D5,
/// and the generic out-of-domain corpus the local systems are trained on.
pub struct Suite {
    /// D1–D4 + WNUT17 + BTC and the shared world.
    pub std: StandardDatasets,
    /// The D5 training stream (same world as the evaluation datasets; used
    /// for the Entity Classifier, T-CAP calibration and error analysis —
    /// mirroring the paper, where only the classifier is D5-trained).
    pub d5: Dataset,
    /// WNUT17-train analog from a disjoint world: the corpus the
    /// "production" local EMD systems were trained on.
    pub generic: Dataset,
    /// The disjoint world the generic corpus came from (provides the
    /// training-time gazetteer).
    pub generic_world: emd_synth::entities::World,
}

/// Read a scale factor from the environment.
fn env_scale(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0 && *v <= 1.0)
        .unwrap_or(default)
}

/// Evaluation-dataset scale (`EMD_SCALE`, default 0.25).
pub fn eval_scale() -> f64 {
    env_scale("EMD_SCALE", 0.25)
}

/// Training-stream scale (`EMD_TRAIN_SCALE`, default 0.08).
pub fn train_scale() -> f64 {
    env_scale("EMD_TRAIN_SCALE", 0.08)
}

/// Master seed for all experiments.
pub const SEED: u64 = 2022;

/// Load the full suite at the configured scales.
pub fn load_suite() -> Suite {
    let std = standard_datasets(SEED, eval_scale());
    let (_, d5) = training_stream(SEED, train_scale());
    let (generic_world, generic) = generic_training_corpus(SEED, train_scale());
    Suite {
        std,
        d5,
        generic,
        generic_world,
    }
}

/// A fully trained framework variant for one Local EMD system.
pub struct Variant {
    /// Which system this is.
    pub kind: SystemKind,
    /// The trained local system.
    pub local: Box<dyn LocalEmd>,
    /// Phrase embedder (deep systems only).
    pub phrase: Option<PhraseEmbedder>,
    /// The trained entity classifier.
    pub classifier: EntityClassifier,
    /// Classifier training report (Table II).
    pub classifier_report: ClassifierTrainReport,
    /// Phrase-embedder training report (deep systems).
    pub phrase_report: Option<StsTrainReport>,
    /// Candidate-embedding dimensionality.
    pub embedding_dim: usize,
}

/// Precompute STS training pairs as token-embedding matrices using the
/// trained deep local system (the frozen encoder).
fn sts_pairs(
    local: &dyn LocalEmd,
    suite: &Suite,
    n: usize,
    n_val: usize,
) -> (Vec<StsExample>, Vec<StsExample>) {
    let (train, val) = gen_sts(&suite.std.world, n, n_val, SEED ^ 0x575);
    let embed = |s: &Sentence| {
        local
            .process(s)
            .token_embeddings
            .expect("deep local system must emit embeddings")
    };
    let conv = |pairs: &[emd_synth::sts::StsPair]| {
        pairs
            .iter()
            .map(|p| (embed(&p.a), embed(&p.b), p.score))
            .collect::<Vec<StsExample>>()
    };
    (conv(&train), conv(&val))
}

/// Train one complete framework variant: local system on D5, phrase
/// embedder on synthetic STS (deep only), entity classifier on candidates
/// harvested from D5.
pub fn build_variant(kind: SystemKind, suite: &Suite) -> Variant {
    let world = &suite.std.world;
    // Local systems are trained on the *generic* out-of-domain corpus with
    // the generic world's gazetteer (they are off-the-shelf production
    // tools in the paper); at inference the gazetteer resource is the
    // evaluation world's (lexical resources partially cover established
    // entities, rarely the emerging ones).
    let local: Box<dyn LocalEmd> = match kind {
        SystemKind::NpChunker => Box::new(NpChunker::new()),
        SystemKind::TwitterNlp => {
            let mut m = TwitterNlp::train(
                &suite.generic,
                suite.generic_world.gazetteer.clone(),
                &TwitterNlpConfig::default(),
            );
            m.set_gazetteer(world.gazetteer.clone());
            Box::new(m)
        }
        SystemKind::Aguilar => {
            let (mut m, _) = Aguilar::train(
                &suite.generic,
                suite.generic_world.gazetteer.clone(),
                &AguilarConfig::default(),
            );
            m.set_gazetteer(world.gazetteer.clone());
            Box::new(m)
        }
        SystemKind::MiniBert => {
            let (m, _) = MiniBert::train(&suite.generic, &MiniBertConfig::default());
            Box::new(m)
        }
    };

    // Phrase embedder for deep systems: output dim mirrors the paper
    // (Aguilar keeps the token dim; BERTweet projects down).
    let (phrase, phrase_report) = match local.embedding_dim() {
        Some(d) => {
            let out_dim = match kind {
                SystemKind::Aguilar => d,
                _ => (d * 2 / 3).max(8),
            };
            let (train, val) = sts_pairs(local.as_ref(), suite, 600, 150);
            let mut pe = PhraseEmbedder::new(d, out_dim, SEED ^ 0x9e);
            let report = pe.train_sts(&train, &val, &StsTrainConfig::default());
            (Some(pe), Some(report))
        }
        None => (None, None),
    };

    // Entity classifier on D5-harvested candidates.
    let cfg = GlobalizerConfig::default();
    let data = harvest_training_data(local.as_ref(), phrase.as_ref(), &cfg, &suite.d5);
    let embedding_dim = phrase.as_ref().map(|p| p.out_dim()).unwrap_or(6);
    let mut classifier = EntityClassifier::new(embedding_dim + 1, SEED ^ 0xc1);
    let classifier_report = classifier.train(&data, &ClassifierTrainConfig::default());

    Variant {
        kind,
        local,
        phrase,
        classifier,
        classifier_report,
        phrase_report,
        embedding_dim,
    }
}

/// Result of evaluating one (variant, dataset) cell of Table III.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Dataset name.
    pub dataset: String,
    /// System name.
    pub system: &'static str,
    /// Local-only effectiveness.
    pub local: Prf,
    /// Full-framework effectiveness.
    pub global: Prf,
    /// Wall-clock seconds for the standalone local pass.
    pub local_secs: f64,
    /// Wall-clock seconds for the full framework run.
    pub global_secs: f64,
    /// Sentences in the dataset (denominator for the rescan fraction).
    pub n_sentences: usize,
    /// Sentences revisited by the incremental close-of-stream rescan.
    pub n_rescanned: usize,
    /// Candidates promoted from adjacent fragments at stream close.
    pub n_promoted: usize,
    /// Per-phase wall-clock breakdown of the full framework run.
    pub phase: PhaseTimings,
}

impl CellResult {
    /// Relative F1 gain (the paper's "F1 Gain" column).
    pub fn gain(&self) -> f64 {
        if self.local.f1 > 0.0 {
            (self.global.f1 - self.local.f1) / self.local.f1
        } else {
            0.0
        }
    }

    /// Absolute time overhead in seconds.
    pub fn overhead(&self) -> f64 {
        (self.global_secs - self.local_secs).max(0.0)
    }

    /// Fraction of the stream revisited by the closing rescan.
    pub fn rescan_frac(&self) -> f64 {
        if self.n_sentences > 0 {
            self.n_rescanned as f64 / self.n_sentences as f64
        } else {
            0.0
        }
    }
}

/// Extract predictions aligned with the dataset from a globalizer output.
pub fn aligned_preds(dataset: &Dataset, out: &GlobalizerOutput) -> Vec<Vec<Span>> {
    let map = out.as_map();
    dataset
        .sentences
        .iter()
        .map(|a| map.get(&a.sentence.id).cloned().unwrap_or_default())
        .collect()
}

/// Run one variant over one dataset with the given ablation, returning the
/// aligned predictions, the raw globalizer output (rescan/promotion stats),
/// the closing state, and wall time.
pub fn run_variant(
    variant: &Variant,
    dataset: &Dataset,
    ablation: Ablation,
) -> (
    Vec<Vec<Span>>,
    GlobalizerOutput,
    emd_core::globalizer::GlobalizerState,
    f64,
) {
    let cfg = GlobalizerConfig {
        ablation,
        ..Default::default()
    };
    let g = Globalizer::new(
        variant.local.as_ref(),
        variant.phrase.as_ref(),
        &variant.classifier,
        cfg,
    );
    let sentences: Vec<Sentence> = dataset
        .sentences
        .iter()
        .map(|a| a.sentence.clone())
        .collect();
    let t0 = Instant::now();
    let (out, state) = g.run(&sentences, 512);
    let secs = t0.elapsed().as_secs_f64();
    let preds = aligned_preds(dataset, &out);
    (preds, out, state, secs)
}

/// Evaluate one Table-III cell: standalone local pass, then the full
/// framework.
pub fn evaluate_cell(variant: &Variant, dataset: &Dataset) -> CellResult {
    // Standalone local timing + effectiveness.
    let sentences: Vec<Sentence> = dataset
        .sentences
        .iter()
        .map(|a| a.sentence.clone())
        .collect();
    let t0 = Instant::now();
    let local_preds: Vec<Vec<Span>> = sentences
        .iter()
        .map(|s| variant.local.process(s).spans)
        .collect();
    let local_secs = t0.elapsed().as_secs_f64();
    let local = mention_prf(dataset, &local_preds);

    let (global_preds, out, _, run_secs) = run_variant(variant, dataset, Ablation::Full);
    let global = mention_prf(dataset, &global_preds);
    CellResult {
        dataset: dataset.name.clone(),
        system: variant.kind.name(),
        local,
        global,
        local_secs,
        global_secs: run_secs,
        n_sentences: sentences.len(),
        n_rescanned: out.n_rescanned,
        n_promoted: out.n_promoted,
        phase: out.phase_timings,
    }
}

/// Train and evaluate HIRE-NER over a dataset (Table IV baseline).
pub fn evaluate_hire(hire: &HireNer, dataset: &Dataset) -> Prf {
    let sentences: Vec<Sentence> = dataset
        .sentences
        .iter()
        .map(|a| a.sentence.clone())
        .collect();
    let preds = hire.run_dataset(&sentences);
    mention_prf(dataset, &preds)
}

/// Train the HIRE-NER baseline on D5.
pub fn build_hire(suite: &Suite) -> HireNer {
    HireNer::train(&suite.d5, &HireConfig::default())
}

/// Write a result file under `results/` (best-effort; directory created if
/// missing) and echo to stdout.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    emit_file(&format!("{name}.txt"), content);
}

/// Write a machine-readable result under `results/` without echoing the
/// (potentially large) content to stdout.
pub fn emit_json(name: &str, content: &str) {
    emit_file(&format!("{name}.json"), content);
}

fn emit_file(filename: &str, content: &str) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(filename);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("[written {}]", path.display());
    }
}

/// One Table-III cell's per-phase timing breakdown, as persisted to
/// `results/phase_timings.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTimingsRecord {
    /// Dataset name.
    pub dataset: String,
    /// Local EMD system name.
    pub system: String,
    /// Full-run wall-clock seconds.
    pub global_secs: f64,
    /// Cumulative nanoseconds per pipeline phase.
    pub phase: PhaseTimings,
}

/// Serialize the per-phase timing breakdown of every evaluated cell to a
/// JSON document (see [`PhaseTimingsRecord`]).
pub fn phase_timings_report(cells: &[CellResult]) -> String {
    let records: Vec<PhaseTimingsRecord> = cells
        .iter()
        .map(|c| PhaseTimingsRecord {
            dataset: c.dataset.clone(),
            system: c.system.to_string(),
            global_secs: c.global_secs,
            phase: c.phase.clone(),
        })
        .collect();
    serde_json::to_string(&records).expect("phase timings serialize")
}

pub mod reports;
