//! Report generators: one function per table/figure, shared by the
//! standalone binaries and `run_all`.

use crate::{
    build_hire, evaluate_cell, evaluate_hire, run_variant, CellResult, Suite, SystemKind, Variant,
};
use emd_core::config::Ablation;
use emd_eval::error_analysis::analyze;
use emd_eval::freq_bins::entity_recall_by_frequency;
use emd_eval::metrics::mention_prf;
use emd_eval::paper_ref;
use emd_eval::tables::{f2, pct, TextTable};
use emd_synth::datasets::{standard_datasets, stats};
use emd_text::token::DatasetKind;

/// Table I: dataset statistics (always at full scale — generation is cheap).
pub fn table1() -> String {
    let mut out =
        String::from("Table I: Twitter datasets (synthetic regeneration, full scale)\n\n");
    let suite = standard_datasets(crate::SEED, 1.0);
    let (_, d5) = emd_synth::datasets::training_stream(crate::SEED, 1.0);
    let mut t = TextTable::new([
        "Dataset",
        "#Topics",
        "#Hashtags",
        "#Entities",
        "#Mentions",
        "Size",
    ]);
    for d in suite.datasets.iter().chain(std::iter::once(&d5)) {
        let s = stats(d);
        let topics = if d.kind == DatasetKind::NonStreaming {
            "per-msg".to_string()
        } else {
            s.n_topics.to_string()
        };
        t.row([
            s.name.clone(),
            topics,
            s.n_hashtags.to_string(),
            s.n_entities.to_string(),
            s.n_mentions.to_string(),
            s.size.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nPaper reference sizes: D1=1K, D2=2K, D3=3K, D4=6K, D5=38K, WNUT17≈1287 entities, BTC≈9553 entities.\n");
    out
}

/// Table II: classifier validation F1 per variant.
pub fn table2(variants: &[Variant]) -> String {
    let mut out = String::from("Table II: Validation performance of the Entity Classifier\n\n");
    let mut t = TextTable::new([
        "Local EMD",
        "System Type",
        "Embedding Size",
        "Validation F1",
        "Paper F1",
    ]);
    for v in variants {
        let (ty, paper) = paper_ref::TABLE2
            .iter()
            .find(|(n, _, _, _)| *n == v.kind.name())
            .map(|(_, ty, _, f)| (*ty, *f))
            .unwrap_or(("?", 0.0));
        t.row([
            v.kind.name().to_string(),
            ty.to_string(),
            format!("{}+1", v.embedding_dim),
            format!("{:.3}", v.classifier_report.best_val_f1),
            format!("{paper:.3}"),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table III: effectiveness and execution time for every (dataset, system)
/// cell. Returns the rendered report and the raw cells.
pub fn table3(suite: &Suite, variants: &[Variant]) -> (String, Vec<CellResult>) {
    let mut cells = Vec::new();
    let mut t = TextTable::new([
        "Dataset",
        "System",
        "L-P",
        "L-R",
        "L-F1",
        "L-time(s)",
        "G-P",
        "G-R",
        "G-F1",
        "G-time(s)",
        "F1 Gain",
        "Overhead(s)",
        "Paper L-F1",
        "Paper G-F1",
    ]);
    for d in &suite.std.datasets {
        for v in variants {
            let cell = evaluate_cell(v, d);
            let paper = paper_ref::TABLE3
                .iter()
                .find(|r| r.dataset == d.name && r.system == v.kind.name());
            t.row([
                d.name.clone(),
                v.kind.name().to_string(),
                f2(cell.local.p),
                f2(cell.local.r),
                f2(cell.local.f1),
                format!("{:.2}", cell.local_secs),
                f2(cell.global.p),
                f2(cell.global.r),
                f2(cell.global.f1),
                format!("{:.2}", cell.global_secs),
                pct(cell.gain()),
                format!("{:.2}", cell.overhead()),
                paper.map(|r| f2(r.local.2)).unwrap_or_default(),
                paper.map(|r| f2(r.global.2)).unwrap_or_default(),
            ]);
            cells.push(cell);
        }
    }
    let mut out =
        String::from("Table III: Effectiveness and execution time with EMD Globalizer\n\n");
    out.push_str(&t.render());

    // Aggregates (the §VI headline claims).
    let agg = |filter: &dyn Fn(&CellResult) -> bool| -> f64 {
        let xs: Vec<f64> = cells
            .iter()
            .filter(|c| filter(c))
            .map(|c| c.gain())
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let streaming = |c: &CellResult| c.dataset.starts_with('D');
    out.push_str(&format!(
        "\nAverage F1 gain, all datasets     : {} (paper: {})\n",
        pct(agg(&|_| true)),
        pct(paper_ref::claims::AVG_GAIN_ALL)
    ));
    out.push_str(&format!(
        "Average F1 gain, streaming (D1-D4): {} (paper: {})\n",
        pct(agg(&streaming)),
        pct(paper_ref::claims::AVG_GAIN_STREAMING)
    ));
    out.push_str(&format!(
        "Average F1 gain, non-streaming    : {} (paper: {})\n",
        pct(agg(&|c| !streaming(c))),
        pct(paper_ref::claims::AVG_GAIN_NON_STREAMING)
    ));
    for kind in SystemKind::all() {
        out.push_str(&format!(
            "Average F1 gain, {:<15}  : {}\n",
            kind.name(),
            pct(agg(&|c| c.system == kind.name()))
        ));
    }

    // Incremental-finalize statistics: how much of each stream the
    // inverted-index close-of-stream rescan actually revisits, and how
    // many candidates adjacent-fragment promotion recovered.
    let total_sentences: usize = cells.iter().map(|c| c.n_sentences).sum();
    let total_rescanned: usize = cells.iter().map(|c| c.n_rescanned).sum();
    let total_promoted: usize = cells.iter().map(|c| c.n_promoted).sum();
    out.push_str(&format!(
        "\nClosing rescan (incremental finalize): {total_rescanned} of {total_sentences} sentences revisited ({}), {total_promoted} candidates promoted from adjacent fragments\n",
        pct(if total_sentences > 0 {
            total_rescanned as f64 / total_sentences as f64
        } else {
            0.0
        }),
    ));
    (out, cells)
}

/// Table IV: EMD Globalizer (Aguilar variant) vs HIRE-NER.
pub fn table4(suite: &Suite, aguilar: &Variant) -> String {
    let hire = build_hire(suite);
    let mut t = TextTable::new([
        "Dataset", "System", "P", "R", "F1", "Paper P", "Paper R", "Paper F1",
    ]);
    for d in &suite.std.datasets {
        let (preds, _, _, _) = run_variant(aguilar, d, Ablation::Full);
        let g = mention_prf(d, &preds);
        let h = evaluate_hire(&hire, d);
        let paper = paper_ref::TABLE4.iter().find(|r| r.dataset == d.name);
        t.row([
            d.name.clone(),
            "EMD Globalizer".to_string(),
            f2(g.p),
            f2(g.r),
            f2(g.f1),
            paper.map(|r| f2(r.globalizer.0)).unwrap_or_default(),
            paper.map(|r| f2(r.globalizer.1)).unwrap_or_default(),
            paper.map(|r| f2(r.globalizer.2)).unwrap_or_default(),
        ]);
        t.row([
            String::new(),
            "HIRE-NER".to_string(),
            f2(h.p),
            f2(h.r),
            f2(h.f1),
            paper.map(|r| f2(r.hire.0)).unwrap_or_default(),
            paper.map(|r| f2(r.hire.1)).unwrap_or_default(),
            paper.map(|r| f2(r.hire.2)).unwrap_or_default(),
        ]);
    }
    let mut out = String::from(
        "Table IV: Effectiveness of Global EMD systems (Aguilar variant vs HIRE-NER)\n\n",
    );
    out.push_str(&t.render());
    out
}

/// Figure 6: component ablation on the streaming datasets (Aguilar variant).
pub fn fig6(suite: &Suite, aguilar: &Variant) -> String {
    let mut t = TextTable::new([
        "Dataset",
        "Local only",
        "+Mention extraction",
        "Full framework",
    ]);
    let mut gains_mention = Vec::new();
    let mut gains_full = Vec::new();
    for d in &suite.std.datasets {
        if !d.name.starts_with('D') {
            continue;
        }
        let f1_of = |ablation| {
            let (preds, _, _, _) = run_variant(aguilar, d, ablation);
            mention_prf(d, &preds).f1
        };
        let local = f1_of(Ablation::LocalOnly);
        let mention = f1_of(Ablation::MentionExtraction);
        let full = f1_of(Ablation::Full);
        if local > 0.0 {
            gains_mention.push((mention - local) / local);
            gains_full.push((full - local) / local);
        }
        t.row([d.name.clone(), f2(local), f2(mention), f2(full)]);
    }
    let mut out = String::from(
        "Figure 6: Impact of framework components on performance (Aguilar variant, D1-D4)\n\n",
    );
    out.push_str(&t.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    out.push_str(&format!(
        "\nMention-extraction-only avg gain: {} (paper: {})\n",
        pct(mean(&gains_mention)),
        pct(paper_ref::claims::FIG6_MENTION_ONLY_GAIN)
    ));
    out.push_str(&format!(
        "Full-framework avg gain         : {} (paper: {})\n",
        pct(mean(&gains_full)),
        pct(paper_ref::claims::FIG6_FULL_GAIN)
    ));
    out
}

/// Figure 7: entity detection recall vs mention frequency (BERTweet
/// variant, streaming datasets, bins of width 5).
pub fn fig7(suite: &Suite, bert: &Variant) -> String {
    // Sum bins across the streaming datasets.
    let mut merged: Vec<(usize, usize, usize, usize)> = Vec::new(); // lo, hi, ents, detected
    for d in &suite.std.datasets {
        if !d.name.starts_with('D') {
            continue;
        }
        let (preds, _, _, _) = run_variant(bert, d, Ablation::Full);
        for b in entity_recall_by_frequency(d, &preds, 5) {
            let idx = (b.lo - 1) / 5;
            if merged.len() <= idx {
                merged.resize(idx + 1, (0, 0, 0, 0));
            }
            let slot = &mut merged[idx];
            slot.0 = b.lo;
            slot.1 = b.hi;
            slot.2 += b.n_entities;
            slot.3 += b.n_detected;
        }
    }
    let mut t = TextTable::new(["Mention freq", "#Entities", "#Detected", "Recall"]);
    for (lo, hi, n, det) in merged.iter().filter(|m| m.2 > 0) {
        let rec = *det as f64 / *n as f64;
        t.row([
            format!("{lo}-{hi}"),
            n.to_string(),
            det.to_string(),
            f2(rec),
        ]);
    }
    let mut out = String::from(
        "Figure 7: Impact of mention frequency on detecting entities (BERTweet variant, D1-D4)\n\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPaper: recall ≈ {} for entities with ≤5 mentions, rising to ~1.0 for frequent entities.\n",
        paper_ref::claims::FIG7_LOW_FREQ_RECALL
    ));
    out
}

/// §VI-C error analysis (BERTweet variant, streaming datasets).
pub fn error_analysis(suite: &Suite, bert: &Variant) -> String {
    let mut total = emd_eval::error_analysis::ErrorBreakdown::default();
    for d in &suite.std.datasets {
        if !d.name.starts_with('D') {
            continue;
        }
        let (_, _, state, _) = run_variant(bert, d, Ablation::Full);
        let e = analyze(d, &state.candidates);
        total.total_mentions += e.total_mentions;
        total.total_entities += e.total_entities;
        total.entities_never_candidate += e.entities_never_candidate;
        total.mentions_unrecoverable += e.mentions_unrecoverable;
        total.entities_classifier_fn += e.entities_classifier_fn;
        total.mentions_classifier_fn += e.mentions_classifier_fn;
    }
    let mut out = String::from("Error analysis (§VI-C), BERTweet variant over D1-D4:\n\n");
    out.push_str(&format!(
        "Gold mentions: {}   gold entities: {}\n",
        total.total_mentions, total.total_entities
    ));
    out.push_str(&format!(
        "Unrecoverable (local EMD missed every mention of the entity): {} mentions of {} entities = {} (paper: {})\n",
        total.mentions_unrecoverable,
        total.entities_never_candidate,
        pct(total.unrecoverable_rate()),
        pct(paper_ref::claims::UNRECOVERABLE_RATE)
    ));
    out.push_str(&format!(
        "Classifier false negatives: {} mentions of {} entities = {} (paper: {})\n",
        total.mentions_classifier_fn,
        total.entities_classifier_fn,
        pct(total.classifier_fn_rate()),
        pct(paper_ref::claims::CLASSIFIER_FN_RATE)
    ));
    out
}
