//! Byte-pair encoding, from scratch.
//!
//! BERTweet segments tweets into subword units with fastBPE over a 64K
//! vocabulary; our MiniBERT stand-in learns a small BPE vocabulary from the
//! synthetic corpus with the classic Sennrich et al. algorithm:
//!
//! 1. represent each word as a sequence of characters plus an end-of-word
//!    marker `</w>`,
//! 2. repeatedly merge the most frequent adjacent symbol pair,
//! 3. the learned merge list, applied in order, deterministically segments
//!    any new word.
//!
//! The encoder exposes dense subword ids with reserved `PAD`/`UNK`/`CLS`
//! slots used by the transformer.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Padding id.
pub const PAD: u32 = 0;
/// Unknown-symbol id.
pub const UNK: u32 = 1;
/// Classification / begin-of-sequence token id.
pub const CLS: u32 = 2;
const N_RESERVED: u32 = 3;

const EOW: &str = "</w>";

/// A learned BPE model: merge ranks + subword vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bpe {
    /// Merge priority: (left, right) → rank (lower = earlier).
    merges: HashMap<(String, String), u32>,
    /// Subword string → id.
    vocab: HashMap<String, u32>,
    /// id → subword string.
    items: Vec<String>,
}

impl Bpe {
    /// Learn a BPE model from `(word, count)` pairs with at most
    /// `n_merges` merge operations.
    pub fn learn<'a, I>(word_counts: I, n_merges: usize) -> Bpe
    where
        I: IntoIterator<Item = (&'a str, u64)>,
    {
        // Each word is a symbol sequence; keep counts.
        let mut words: Vec<(Vec<String>, u64)> = Vec::new();
        for (w, c) in word_counts {
            if w.is_empty() {
                continue;
            }
            let mut syms: Vec<String> = w.chars().map(|ch| ch.to_string()).collect();
            if let Some(last) = syms.last_mut() {
                last.push_str(EOW);
            }
            words.push((syms, c));
        }

        let mut merges: HashMap<(String, String), u32> = HashMap::new();
        for rank in 0..n_merges {
            // Count adjacent pairs.
            let mut pair_counts: HashMap<(String, String), u64> = HashMap::new();
            for (syms, c) in &words {
                for win in syms.windows(2) {
                    *pair_counts
                        .entry((win[0].clone(), win[1].clone()))
                        .or_insert(0) += c;
                }
            }
            // Most frequent pair; tie-break lexicographically for determinism.
            let best = pair_counts
                .into_iter()
                .filter(|(_, c)| *c >= 2)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((a, b), _)) = best else { break };
            merges.insert((a.clone(), b.clone()), rank as u32);
            // Apply the merge to every word.
            let merged = format!("{a}{b}");
            for (syms, _) in &mut words {
                let mut out = Vec::with_capacity(syms.len());
                let mut i = 0;
                while i < syms.len() {
                    if i + 1 < syms.len() && syms[i] == a && syms[i + 1] == b {
                        out.push(merged.clone());
                        i += 2;
                    } else {
                        out.push(syms[i].clone());
                        i += 1;
                    }
                }
                *syms = out;
            }
        }

        // Build the subword vocabulary from everything reachable: single
        // chars (with and without EOW) seen in training plus merge outputs.
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut items: Vec<String> = Vec::new();
        for reserved in ["<pad>", "<unk>", "<cls>"] {
            vocab.insert(reserved.to_string(), items.len() as u32);
            items.push(reserved.to_string());
        }
        let add = |s: &str, vocab: &mut HashMap<String, u32>, items: &mut Vec<String>| {
            if !vocab.contains_key(s) {
                vocab.insert(s.to_string(), items.len() as u32);
                items.push(s.to_string());
            }
        };
        for (syms, _) in &words {
            for s in syms {
                add(s, &mut vocab, &mut items);
            }
        }
        // Also add raw single characters so segmentation of unseen words
        // rarely produces UNK.
        let singles: Vec<String> = words
            .iter()
            .flat_map(|(syms, _)| syms.iter())
            .flat_map(|s| s.replace(EOW, "").chars().collect::<Vec<_>>())
            .map(|c| c.to_string())
            .collect();
        for c in singles {
            add(&c, &mut vocab, &mut items);
            add(&format!("{c}{EOW}"), &mut vocab, &mut items);
        }
        Bpe {
            merges,
            vocab,
            items,
        }
    }

    /// Segment a word into subword strings by applying learned merges in
    /// rank order.
    pub fn segment(&self, word: &str) -> Vec<String> {
        if word.is_empty() {
            return Vec::new();
        }
        let mut syms: Vec<String> = word.chars().map(|c| c.to_string()).collect();
        if let Some(last) = syms.last_mut() {
            last.push_str(EOW);
        }
        loop {
            // Find the lowest-rank applicable merge.
            let mut best: Option<(usize, u32)> = None;
            for i in 0..syms.len().saturating_sub(1) {
                if let Some(&rank) = self.merges.get(&(syms[i].clone(), syms[i + 1].clone())) {
                    if best.map(|(_, r)| rank < r).unwrap_or(true) {
                        best = Some((i, rank));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let merged = format!("{}{}", syms[i], syms[i + 1]);
            syms.splice(i..i + 2, [merged]);
        }
        syms
    }

    /// Encode a word into subword ids (`UNK` for unknown symbols).
    pub fn encode_word(&self, word: &str) -> Vec<u32> {
        self.segment(word)
            .iter()
            .map(|s| self.vocab.get(s).copied().unwrap_or(UNK))
            .collect()
    }

    /// Encode a token sequence. Returns the flat subword ids and, for each
    /// input token, the index of its *first* subword in the flat sequence —
    /// the alignment BERT-style models use to produce word-level outputs.
    pub fn encode_tokens<'a, I: IntoIterator<Item = &'a str>>(
        &self,
        tokens: I,
    ) -> (Vec<u32>, Vec<usize>) {
        let mut ids = Vec::new();
        let mut first = Vec::new();
        for t in tokens {
            first.push(ids.len());
            let mut ws = self.encode_word(&t.to_lowercase());
            if ws.is_empty() {
                ws.push(UNK);
            }
            ids.append(&mut ws);
        }
        (ids, first)
    }

    /// Subword vocabulary size (including reserved ids).
    pub fn vocab_size(&self) -> usize {
        self.items.len()
    }

    /// The string of a subword id.
    pub fn subword(&self, id: u32) -> &str {
        if (id as usize) < self.items.len() {
            &self.items[id as usize]
        } else {
            "<unk>"
        }
    }

    /// Number of learned merges.
    pub fn n_merges(&self) -> usize {
        self.merges.len()
    }

    /// Reserved id count (pad/unk/cls).
    pub fn n_reserved() -> u32 {
        N_RESERVED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_bpe() -> Bpe {
        let corpus = [
            ("corona", 10u64),
            ("coronavirus", 20),
            ("virus", 15),
            ("viral", 5),
            ("low", 8),
            ("lower", 6),
            ("lowest", 4),
        ];
        Bpe::learn(corpus.iter().map(|(w, c)| (*w, *c)), 60)
    }

    #[test]
    fn learn_produces_merges() {
        let bpe = toy_bpe();
        assert!(bpe.n_merges() > 0);
        assert!(bpe.vocab_size() > 10);
    }

    #[test]
    fn segment_reconstructs_word() {
        let bpe = toy_bpe();
        for w in ["coronavirus", "virus", "lowest", "unseenword"] {
            let segs = bpe.segment(w);
            let joined: String = segs.join("").replace(EOW, "");
            assert_eq!(joined, w, "segmentation must reconstruct the word");
        }
    }

    #[test]
    fn frequent_words_become_few_subwords() {
        let bpe = toy_bpe();
        // With 60 merges on this tiny corpus, "virus" should be ≤ 2 units.
        assert!(
            bpe.segment("virus").len() <= 2,
            "{:?}",
            bpe.segment("virus")
        );
    }

    #[test]
    fn encode_word_known_symbols() {
        let bpe = toy_bpe();
        let ids = bpe.encode_word("corona");
        assert!(!ids.is_empty());
        assert!(
            ids.iter().all(|&i| i != UNK),
            "all symbols seen in training"
        );
    }

    #[test]
    fn encode_unseen_chars_fall_back_to_unk() {
        let bpe = toy_bpe();
        let ids = bpe.encode_word("日本");
        assert!(ids.iter().all(|&i| i == UNK));
    }

    #[test]
    fn token_alignment() {
        let bpe = toy_bpe();
        let (ids, first) = bpe.encode_tokens(["corona", "virus"]);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0], 0);
        assert!(first[1] <= ids.len());
        assert!(first[1] > 0);
    }

    #[test]
    fn empty_word() {
        let bpe = toy_bpe();
        assert!(bpe.segment("").is_empty());
        assert!(bpe.encode_word("").is_empty());
    }

    #[test]
    fn determinism() {
        let a = toy_bpe();
        let b = toy_bpe();
        assert_eq!(a.segment("coronavirus"), b.segment("coronavirus"));
        assert_eq!(a.vocab_size(), b.vocab_size());
    }
}
