//! Gazetteer lookups with Aguilar-style 6-dimensional lexical vectors.
//!
//! Aguilar et al. encode, for every token, whether it appears inside an
//! entry of each of six gazetteer types. We reproduce the mechanism: a
//! [`Gazetteer`] holds entries per [`GazCategory`] and produces a
//! `[f32; 6]` lexical vector per token (and a phrase-level membership test
//! used by the candidate classifier's feature set).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The six gazetteer categories (mirrors Aguilar et al.'s 6-dim vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GazCategory {
    /// People's names.
    Person,
    /// Geographic locations.
    Location,
    /// Organizations, institutions, teams.
    Organization,
    /// Products and services.
    Product,
    /// Creative works (movies, shows, songs).
    CreativeWork,
    /// Groups / events / miscellaneous.
    Group,
}

impl GazCategory {
    /// Dense index 0..6.
    pub fn index(self) -> usize {
        match self {
            GazCategory::Person => 0,
            GazCategory::Location => 1,
            GazCategory::Organization => 2,
            GazCategory::Product => 3,
            GazCategory::CreativeWork => 4,
            GazCategory::Group => 5,
        }
    }

    /// Number of categories.
    pub const COUNT: usize = 6;

    /// All categories, in index order.
    pub fn all() -> [GazCategory; 6] {
        [
            GazCategory::Person,
            GazCategory::Location,
            GazCategory::Organization,
            GazCategory::Product,
            GazCategory::CreativeWork,
            GazCategory::Group,
        ]
    }
}

/// A multi-category gazetteer.
///
/// Entries are stored lower-cased. Besides full-phrase membership, every
/// token occurring in any entry of a category is indexed, because Aguilar's
/// lexical feature fires per *token*.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Gazetteer {
    phrases: [HashSet<String>; GazCategory::COUNT],
    tokens: [HashSet<String>; GazCategory::COUNT],
}

impl Gazetteer {
    /// Empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a (possibly multi-token, space-separated) entry.
    pub fn insert(&mut self, cat: GazCategory, entry: &str) {
        let low = entry.to_lowercase();
        for tok in low.split_whitespace() {
            self.tokens[cat.index()].insert(tok.to_string());
        }
        self.phrases[cat.index()].insert(low);
    }

    /// Number of phrase entries across all categories.
    pub fn len(&self) -> usize {
        self.phrases.iter().map(|s| s.len()).sum()
    }

    /// True if no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Token-level lexical vector: dimension `c` is 1.0 iff the lower-cased
    /// token occurs inside any entry of category `c`.
    pub fn lexical_vector(&self, token: &str) -> [f32; GazCategory::COUNT] {
        let low = token.to_lowercase();
        let mut v = [0.0; GazCategory::COUNT];
        for (i, set) in self.tokens.iter().enumerate() {
            if set.contains(&low) {
                v[i] = 1.0;
            }
        }
        v
    }

    /// Full-phrase membership in a specific category (case-insensitive).
    pub fn contains_phrase(&self, cat: GazCategory, phrase: &str) -> bool {
        self.phrases[cat.index()].contains(&phrase.to_lowercase())
    }

    /// Full-phrase membership in any category.
    pub fn contains_any(&self, phrase: &str) -> bool {
        let low = phrase.to_lowercase();
        self.phrases.iter().any(|s| s.contains(&low))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut g = Gazetteer::new();
        g.insert(GazCategory::Person, "Andy Beshear");
        g.insert(GazCategory::Location, "Italy");
        assert!(g.contains_phrase(GazCategory::Person, "andy beshear"));
        assert!(g.contains_any("ITALY"));
        assert!(!g.contains_any("mars"));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn token_level_vector() {
        let mut g = Gazetteer::new();
        g.insert(GazCategory::Person, "Andy Beshear");
        let v = g.lexical_vector("beshear");
        assert_eq!(v[GazCategory::Person.index()], 1.0);
        assert_eq!(v[GazCategory::Location.index()], 0.0);
        // Case-insensitive
        let v2 = g.lexical_vector("BESHEAR");
        assert_eq!(v2[GazCategory::Person.index()], 1.0);
    }

    #[test]
    fn multi_category_token() {
        let mut g = Gazetteer::new();
        g.insert(GazCategory::Location, "Washington");
        g.insert(GazCategory::Person, "George Washington");
        let v = g.lexical_vector("washington");
        assert_eq!(v[GazCategory::Location.index()], 1.0);
        assert_eq!(v[GazCategory::Person.index()], 1.0);
    }

    #[test]
    fn category_indices_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in GazCategory::all() {
            assert!(seen.insert(c.index()));
        }
        assert_eq!(seen.len(), GazCategory::COUNT);
    }
}
