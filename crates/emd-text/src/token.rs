//! Corpus data model: tokens, sentences, spans, BIO tags and datasets.
//!
//! These types are shared by every crate in the workspace. A [`Sentence`] is
//! one tokenized tweet-sentence identified by a `(tweet id, sentence id)`
//! pair — the same indexing the paper's *TweetBase* uses. A [`Span`] is a
//! half-open token range `[start, end)` denoting an entity mention.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single token with its byte offsets into the original message text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The token's surface text, exactly as it appeared.
    pub text: String,
    /// Byte offset of the first byte in the source message.
    pub start: usize,
    /// Byte offset one past the last byte in the source message.
    pub end: usize,
}

impl Token {
    /// Build a token without source offsets (offsets set to `0..0`).
    ///
    /// Useful in tests and for synthetic corpora where the original byte
    /// positions carry no information.
    pub fn synthetic(text: impl Into<String>) -> Self {
        Token {
            text: text.into(),
            start: 0,
            end: 0,
        }
    }
}

/// Identifier of a tweet-sentence inside a stream: `(tweet id, sentence id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SentenceId {
    /// Identifier of the enclosing tweet within the stream.
    pub tweet_id: u64,
    /// Sentence index within the tweet (tweets may contain several sentences).
    pub sent_id: u32,
}

impl SentenceId {
    /// Convenience constructor.
    pub fn new(tweet_id: u64, sent_id: u32) -> Self {
        SentenceId { tweet_id, sent_id }
    }
}

impl fmt::Display for SentenceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.tweet_id, self.sent_id)
    }
}

/// A tokenized tweet-sentence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sentence {
    /// Stream-level identifier.
    pub id: SentenceId,
    /// Tokens in order of appearance.
    pub tokens: Vec<Token>,
}

impl Sentence {
    /// Build a sentence from whitespace-free token strings (synthetic offsets).
    pub fn from_tokens<I, S>(id: SentenceId, toks: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Sentence {
            id,
            tokens: toks.into_iter().map(Token::synthetic).collect(),
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the sentence has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Iterator over the token texts.
    pub fn texts(&self) -> impl Iterator<Item = &str> {
        self.tokens.iter().map(|t| t.text.as_str())
    }

    /// Reassemble the sentence with single spaces — used for display only.
    pub fn joined(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&t.text);
        }
        out
    }
}

/// A half-open token range `[start, end)` marking an entity mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Index of the first token of the mention.
    pub start: usize,
    /// One past the index of the last token of the mention.
    pub end: usize,
}

impl Span {
    /// Create a span; panics if `start >= end` in debug builds.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start < end, "span must be non-empty: {start}..{end}");
        Span { start, end }
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// A span is never empty by construction, but mirror the std convention.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// True when `self` and `other` share at least one token.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The surface string of this span within `sentence` (space-joined).
    pub fn surface(&self, sentence: &Sentence) -> String {
        let mut out = String::new();
        for i in self.start..self.end.min(sentence.len()) {
            if i > self.start {
                out.push(' ');
            }
            out.push_str(&sentence.tokens[i].text);
        }
        out
    }

    /// Lower-cased surface string — the canonical candidate key used by the
    /// CTrie and CandidateBase (mention matching is case-insensitive, §V-A).
    pub fn surface_lower(&self, sentence: &Sentence) -> String {
        self.surface(sentence).to_lowercase()
    }
}

/// BIO sequence-labeling tag relative to the nearest entity boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bio {
    /// Beginning of an entity mention.
    B,
    /// Inside (continuation of) an entity mention.
    I,
    /// Outside any mention.
    O,
}

impl Bio {
    /// Dense index used by sequence models (B=0, I=1, O=2).
    pub fn index(self) -> usize {
        match self {
            Bio::B => 0,
            Bio::I => 1,
            Bio::O => 2,
        }
    }

    /// Inverse of [`Bio::index`].
    pub fn from_index(i: usize) -> Bio {
        match i {
            0 => Bio::B,
            1 => Bio::I,
            _ => Bio::O,
        }
    }

    /// Number of tags in the scheme.
    pub const COUNT: usize = 3;
}

/// Convert a set of (non-overlapping) spans into a BIO tag sequence of
/// length `len`. Overlapping spans are resolved left-to-right, first wins.
pub fn spans_to_bio(spans: &[Span], len: usize) -> Vec<Bio> {
    let mut tags = vec![Bio::O; len];
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort();
    for sp in sorted {
        if sp.start >= len {
            continue;
        }
        let end = sp.end.min(len);
        // Skip spans colliding with an already-placed one (first wins).
        if tags[sp.start..end].iter().any(|t| *t != Bio::O) {
            continue;
        }
        tags[sp.start] = Bio::B;
        for t in tags.iter_mut().take(end).skip(sp.start + 1) {
            *t = Bio::I;
        }
    }
    tags
}

/// Decode a BIO tag sequence into spans. A dangling `I` (without a
/// preceding `B`) starts a new span, the lenient convention used by the
/// WNUT evaluation scripts.
pub fn bio_to_spans(tags: &[Bio]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut start: Option<usize> = None;
    for (i, t) in tags.iter().enumerate() {
        match t {
            Bio::B => {
                if let Some(s) = start.take() {
                    spans.push(Span::new(s, i));
                }
                start = Some(i);
            }
            Bio::I => {
                if start.is_none() {
                    start = Some(i);
                }
            }
            Bio::O => {
                if let Some(s) = start.take() {
                    spans.push(Span::new(s, i));
                }
            }
        }
    }
    if let Some(s) = start {
        spans.push(Span::new(s, tags.len()));
    }
    spans
}

/// A sentence paired with its gold entity mention spans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotatedSentence {
    /// The tokenized sentence.
    pub sentence: Sentence,
    /// Gold mention spans (non-overlapping, sorted).
    pub gold: Vec<Span>,
}

impl AnnotatedSentence {
    /// Gold BIO tags for this sentence.
    pub fn gold_bio(&self) -> Vec<Bio> {
        spans_to_bio(&self.gold, self.sentence.len())
    }
}

/// Whether a dataset preserves the topical stream structure of Twitter or is
/// a random sample of the Twittersphere (WNUT17 / BTC style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Topic-focused stream subsets (D1–D5): heavy entity recurrence.
    Streaming,
    /// Randomly sampled benchmark corpora: little entity recurrence.
    NonStreaming,
}

/// An annotated corpus: the unit of evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Short dataset label (`"D1"`, `"WNUT17"`, ...).
    pub name: String,
    /// Streaming or non-streaming provenance.
    pub kind: DatasetKind,
    /// Number of distinct conversation topics sampled.
    pub n_topics: usize,
    /// All annotated sentences in stream order.
    pub sentences: Vec<AnnotatedSentence>,
}

impl Dataset {
    /// Total number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// True when the dataset has no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Total number of gold mentions.
    pub fn n_mentions(&self) -> usize {
        self.sentences.iter().map(|s| s.gold.len()).sum()
    }

    /// Number of unique gold entities (case-insensitive surface keys).
    pub fn n_unique_entities(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for s in &self.sentences {
            for sp in &s.gold {
                set.insert(sp.surface_lower(&s.sentence));
            }
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(words: &[&str]) -> Sentence {
        Sentence::from_tokens(SentenceId::new(1, 0), words.iter().copied())
    }

    #[test]
    fn span_surface_and_lower() {
        let s = sent(&["Andy", "Beshear", "speaks"]);
        let sp = Span::new(0, 2);
        assert_eq!(sp.surface(&s), "Andy Beshear");
        assert_eq!(sp.surface_lower(&s), "andy beshear");
        assert_eq!(sp.len(), 2);
    }

    #[test]
    fn span_overlap() {
        let a = Span::new(0, 2);
        let b = Span::new(1, 3);
        let c = Span::new(2, 4);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn bio_round_trip() {
        let spans = vec![Span::new(1, 3), Span::new(4, 5)];
        let tags = spans_to_bio(&spans, 6);
        assert_eq!(tags, vec![Bio::O, Bio::B, Bio::I, Bio::O, Bio::B, Bio::O]);
        assert_eq!(bio_to_spans(&tags), spans);
    }

    #[test]
    fn bio_adjacent_mentions() {
        // B I B — two adjacent mentions must stay separate.
        let tags = vec![Bio::B, Bio::I, Bio::B, Bio::O];
        assert_eq!(bio_to_spans(&tags), vec![Span::new(0, 2), Span::new(2, 3)]);
    }

    #[test]
    fn bio_dangling_i_starts_span() {
        let tags = vec![Bio::O, Bio::I, Bio::I, Bio::O];
        assert_eq!(bio_to_spans(&tags), vec![Span::new(1, 3)]);
    }

    #[test]
    fn bio_trailing_span_closed() {
        let tags = vec![Bio::O, Bio::B, Bio::I];
        assert_eq!(bio_to_spans(&tags), vec![Span::new(1, 3)]);
    }

    #[test]
    fn spans_to_bio_ignores_overlap() {
        let spans = vec![Span::new(0, 2), Span::new(1, 3)];
        let tags = spans_to_bio(&spans, 3);
        assert_eq!(tags, vec![Bio::B, Bio::I, Bio::O]);
    }

    #[test]
    fn spans_to_bio_clips_out_of_range() {
        let spans = vec![Span::new(2, 9)];
        let tags = spans_to_bio(&spans, 4);
        assert_eq!(tags, vec![Bio::O, Bio::O, Bio::B, Bio::I]);
    }

    #[test]
    fn dataset_stats() {
        let s1 = AnnotatedSentence {
            sentence: sent(&["Covid", "hits", "Italy"]),
            gold: vec![Span::new(0, 1), Span::new(2, 3)],
        };
        let s2 = AnnotatedSentence {
            sentence: sent(&["ITALY", "locks", "down"]),
            gold: vec![Span::new(0, 1)],
        };
        let d = Dataset {
            name: "toy".into(),
            kind: DatasetKind::Streaming,
            n_topics: 1,
            sentences: vec![s1, s2],
        };
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_mentions(), 3);
        // "italy" and "ITALY" share a case-insensitive key → 2 unique.
        assert_eq!(d.n_unique_entities(), 2);
    }
}
