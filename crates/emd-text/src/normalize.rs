//! Light text normalization for embedding lookup.
//!
//! Microblog text is noisy: character elongations (`soooo`), inconsistent
//! casing, URLs and user handles that explode vocabulary size. Models look
//! up embeddings by the *normalized* form while the pipeline keeps original
//! surfaces for output and for the casing features.

/// Squash runs of 3+ identical characters down to 2 (`soooo` → `soo`).
///
/// Two repeats are kept because legitimate English words contain doubled
/// letters (`too`, `css`); three or more almost never occur outside
/// expressive lengthening.
pub fn squash_elongation(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    for c in s.chars() {
        if Some(c) == prev {
            run += 1;
        } else {
            run = 1;
            prev = Some(c);
        }
        if run <= 2 {
            out.push(c);
        }
    }
    out
}

/// Normalize a token for embedding lookup:
/// * URLs → `<url>`
/// * @mentions → `<user>`
/// * pure numbers → `<num>`
/// * hashtags keep their body (`#Covid` → `covid`) since hashtag bodies are
///   often entity mentions,
/// * otherwise lowercase + elongation squashing.
pub fn normalize_token(tok: &str) -> String {
    if tok.starts_with("http://") || tok.starts_with("https://") || tok.starts_with("www.") {
        return "<url>".to_string();
    }
    if tok.len() > 1 && tok.starts_with('@') {
        return "<user>".to_string();
    }
    let body = tok.strip_prefix('#').unwrap_or(tok);
    if !body.is_empty()
        && body
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == ',' || c == ':')
    {
        return "<num>".to_string();
    }
    squash_elongation(&body.to_lowercase())
}

/// True if the token looks like a URL.
pub fn is_url(tok: &str) -> bool {
    tok.starts_with("http://") || tok.starts_with("https://") || tok.starts_with("www.")
}

/// True if the token is a user mention (`@handle`).
pub fn is_mention(tok: &str) -> bool {
    tok.len() > 1 && tok.starts_with('@')
}

/// True if the token is a hashtag (`#topic`).
pub fn is_hashtag(tok: &str) -> bool {
    tok.len() > 1 && tok.starts_with('#')
}

/// True if the token is purely punctuation.
pub fn is_punct(tok: &str) -> bool {
    !tok.is_empty() && tok.chars().all(|c| !c.is_alphanumeric())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elongation() {
        assert_eq!(squash_elongation("soooo"), "soo");
        assert_eq!(squash_elongation("too"), "too");
        assert_eq!(squash_elongation("cool"), "cool");
        assert_eq!(squash_elongation("yessss!!!"), "yess!!");
        assert_eq!(squash_elongation(""), "");
    }

    #[test]
    fn token_normalization() {
        assert_eq!(normalize_token("https://t.co/x"), "<url>");
        assert_eq!(normalize_token("@user_1"), "<user>");
        assert_eq!(normalize_token("#Covid"), "covid");
        assert_eq!(normalize_token("10,000"), "<num>");
        assert_eq!(normalize_token("ITALY"), "italy");
        assert_eq!(normalize_token("soooo"), "soo");
    }

    #[test]
    fn classifiers() {
        assert!(is_url("www.example.com"));
        assert!(is_mention("@abc"));
        assert!(!is_mention("@"));
        assert!(is_hashtag("#x"));
        assert!(is_punct("!!!"));
        assert!(!is_punct("a!"));
    }
}
