//! Token interning for the occurrence-scan hot path.
//!
//! The scan/pool/classify loop used to key posting lists and CTrie edges
//! by `String` and call `str::to_lowercase()` on every token of every
//! scanned sentence — one short-lived heap allocation per token per scan.
//! [`Interner`] replaces those keys with dense `u32` [`Sym`]s: a token is
//! folded and interned **once at ingest**, and every later lookup — the
//! trie walk, the posting-list probe, the dirty-set fanout — is an integer
//! compare against symbols that already exist.
//!
//! Folding semantics are pinned to `str::to_lowercase()` (the key scheme
//! the whole pipeline has used since PR 1): ASCII-only strings take an
//! allocation-free fast path, and anything else falls back to the real
//! Unicode lowering so "STRASSE" and "straße" keep their historical
//! (distinct) identities.
//!
//! Symbols are stable for the life of the interner and never garbage
//! collected: a window eviction can drop the *posting list* for a symbol,
//! but the symbol itself stays valid so checkpoint replay and late
//! re-registration of a candidate never re-number anything. At ~20 bytes
//! per distinct token this is noise next to the embedding arenas.

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use std::collections::HashMap;

/// A dense interned-token handle. `u32` keeps posting lists and trie edge
/// maps at half the width of a pointer and a twelfth of an inline
/// `String`.
pub type Sym = u32;

/// An append-only string interner with `to_lowercase`-folding lookups.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    map: HashMap<String, Sym>,
}

/// Is `s` already in folded form, byte-for-byte? (ASCII with no uppercase
/// letters — the overwhelmingly common case for microblog tokens.)
#[inline]
fn is_folded_ascii(s: &str) -> bool {
    s.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase())
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s` exactly as given, returning its symbol. Idempotent:
    /// interning the same string twice returns the same symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = self.strings.len() as Sym;
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Intern the case-folded form of `s` (exactly `s.to_lowercase()`).
    /// Allocation-free when `s` is already folded ASCII and known.
    pub fn intern_folded(&mut self, s: &str) -> Sym {
        if is_folded_ascii(s) {
            if let Some(&sym) = self.map.get(s) {
                return sym;
            }
            return self.intern(s);
        }
        self.intern(&s.to_lowercase())
    }

    /// Look up the symbol of the case-folded form of `s`, without
    /// interning. Allocation-free for ASCII input.
    pub fn lookup_folded(&self, s: &str) -> Option<Sym> {
        if is_folded_ascii(s) {
            return self.map.get(s).copied();
        }
        if s.is_ascii() {
            // ASCII with uppercase: fold into a small stack buffer when it
            // fits, else fall through to the allocating path.
            let bytes = s.as_bytes();
            if bytes.len() <= 64 {
                let mut buf = [0u8; 64];
                for (dst, &b) in buf.iter_mut().zip(bytes) {
                    *dst = b.to_ascii_lowercase();
                }
                let folded = std::str::from_utf8(&buf[..bytes.len()]).expect("ascii");
                return self.map.get(folded).copied();
            }
        }
        self.map.get(s.to_lowercase().as_str()).copied()
    }

    /// The string a symbol stands for.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Approximate resident heap size, for memory accounting.
    pub fn resident_bytes(&self) -> usize {
        self.strings
            .iter()
            .map(|s| s.capacity() + std::mem::size_of::<String>())
            .sum::<usize>()
            * 2 // map keys duplicate the strings
            + self.map.len() * std::mem::size_of::<(String, Sym)>()
    }
}

// The map is derivable from the string table, so checkpoints carry only
// the table (in symbol order) and rebuild the map on load. Symbol values
// therefore survive save/restore bit-for-bit.
impl Serialize for Interner {
    fn to_value(&self) -> Value {
        self.strings.to_value()
    }
}

impl Deserialize for Interner {
    fn from_value(v: &Value) -> Result<Interner, DeError> {
        let strings = Vec::<String>::from_value(v)?;
        let mut map = HashMap::with_capacity(strings.len());
        for (i, s) in strings.iter().enumerate() {
            if map.insert(s.clone(), i as Sym).is_some() {
                return Err(DeError::msg(format!("duplicate interned string {s:?}")));
            }
        }
        Ok(Interner { strings, map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = Interner::new();
        let a = it.intern("apple");
        let b = it.intern("banana");
        assert_eq!(it.intern("apple"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(it.resolve(a), "apple");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn folded_matches_to_lowercase_semantics() {
        let mut it = Interner::new();
        let a = it.intern_folded("Italy");
        assert_eq!(it.resolve(a), "italy");
        assert_eq!(it.intern_folded("ITALY"), a);
        assert_eq!(it.intern_folded("italy"), a);
        // Unicode folding goes through the real to_lowercase: "STRASSE"
        // folds to "strasse", which is NOT "straße".
        let sharp = it.intern_folded("straße");
        let ss = it.intern_folded("STRASSE");
        assert_ne!(sharp, ss);
        assert_eq!(it.resolve(ss), "strasse");
    }

    #[test]
    fn lookup_folded_never_interns() {
        let mut it = Interner::new();
        let a = it.intern_folded("rome");
        assert_eq!(it.lookup_folded("Rome"), Some(a));
        assert_eq!(it.lookup_folded("ROME"), Some(a));
        assert_eq!(it.lookup_folded("paris"), None);
        assert_eq!(it.len(), 1);
        // Long ASCII tokens overflow the stack buffer but still fold.
        let long = "A".repeat(100);
        let l = it.intern_folded(&long);
        assert_eq!(it.lookup_folded(&long), Some(l));
    }

    proptest::proptest! {
        /// Intern → resolve is lossless for arbitrary printable strings
        /// (exact interning returns the bytes verbatim; folded interning
        /// returns exactly `str::to_lowercase()`), and re-interning either
        /// form maps back to the same symbol.
        #[test]
        fn round_trips_are_lossless(tokens in proptest::collection::vec("\\PC{0,12}", 1..16)) {
            let mut it = Interner::new();
            for t in &tokens {
                let exact = it.intern(t);
                proptest::prop_assert_eq!(it.resolve(exact), t.as_str());
                proptest::prop_assert_eq!(it.intern(t), exact);

                let folded = it.intern_folded(t);
                let want = t.to_lowercase();
                proptest::prop_assert_eq!(it.resolve(folded), want.as_str());
                proptest::prop_assert_eq!(it.lookup_folded(t), Some(folded));
                proptest::prop_assert_eq!(it.intern_folded(&want), folded);
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_symbols() {
        let mut it = Interner::new();
        let a = it.intern("Alpha");
        let b = it.intern_folded("Beta");
        let back = Interner::from_value(&it.to_value()).unwrap();
        assert_eq!(back.resolve(a), "Alpha");
        assert_eq!(back.resolve(b), "beta");
        assert_eq!(back.lookup_folded("BETA"), Some(b));
        assert_eq!(back.len(), it.len());
    }
}
