//! Interning vocabulary with frequency counts.
//!
//! Neural local EMD systems look tokens up by dense id; the CTrie keys its
//! nodes by lower-cased ids. A [`Vocab`] provides both: stable `u32` ids,
//! frequency-based truncation, and reserved special ids (`PAD`, `UNK`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reserved id for padding.
pub const PAD: u32 = 0;
/// Reserved id for out-of-vocabulary tokens.
pub const UNK: u32 = 1;
/// Number of reserved ids.
pub const N_RESERVED: u32 = 2;

/// A frequency-aware interning vocabulary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    map: HashMap<String, u32>,
    items: Vec<String>,
    freqs: Vec<u64>,
    /// When true, all lookups and insertions lowercase the key first.
    lowercase: bool,
}

impl Vocab {
    /// New empty vocabulary. `lowercase` folds case on insert/lookup.
    pub fn new(lowercase: bool) -> Self {
        let mut v = Vocab {
            map: HashMap::new(),
            items: Vec::new(),
            freqs: Vec::new(),
            lowercase,
        };
        v.items.push("<pad>".to_string());
        v.items.push("<unk>".to_string());
        v.freqs.push(0);
        v.freqs.push(0);
        v.map.insert("<pad>".to_string(), PAD);
        v.map.insert("<unk>".to_string(), UNK);
        v
    }

    fn key(&self, s: &str) -> String {
        if self.lowercase {
            s.to_lowercase()
        } else {
            s.to_string()
        }
    }

    /// Intern `s`, bumping its frequency, returning its id.
    pub fn add(&mut self, s: &str) -> u32 {
        let k = self.key(s);
        if let Some(&id) = self.map.get(&k) {
            self.freqs[id as usize] += 1;
            return id;
        }
        let id = self.items.len() as u32;
        self.map.insert(k.clone(), id);
        self.items.push(k);
        self.freqs.push(1);
        id
    }

    /// Look up without inserting; `UNK` if absent.
    pub fn get(&self, s: &str) -> u32 {
        let k = self.key(s);
        self.map.get(&k).copied().unwrap_or(UNK)
    }

    /// Look up without inserting; `None` if absent.
    pub fn try_get(&self, s: &str) -> Option<u32> {
        let k = self.key(s);
        self.map.get(&k).copied()
    }

    /// The string for an id (panics on out-of-range).
    pub fn text(&self, id: u32) -> &str {
        &self.items[id as usize]
    }

    /// Observed frequency of an id.
    pub fn freq(&self, id: u32) -> u64 {
        self.freqs[id as usize]
    }

    /// Total number of entries, including reserved ids.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when only the reserved ids are present.
    pub fn is_empty(&self) -> bool {
        self.items.len() as u32 == N_RESERVED
    }

    /// Build a pruned copy keeping only entries with `freq >= min_freq`
    /// (reserved ids always kept). Ids are reassigned densely.
    pub fn pruned(&self, min_freq: u64) -> Vocab {
        let mut v = Vocab::new(self.lowercase);
        for id in N_RESERVED..self.items.len() as u32 {
            if self.freqs[id as usize] >= min_freq {
                let nid = v.items.len() as u32;
                v.map.insert(self.items[id as usize].clone(), nid);
                v.items.push(self.items[id as usize].clone());
                v.freqs.push(self.freqs[id as usize]);
            }
        }
        v
    }

    /// Encode a sequence of token texts into ids (UNK for unknown).
    pub fn encode<'a, I: IntoIterator<Item = &'a str>>(&self, toks: I) -> Vec<u32> {
        toks.into_iter().map(|t| self.get(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ids() {
        let v = Vocab::new(false);
        assert_eq!(v.get("<pad>"), PAD);
        assert_eq!(v.get("<unk>"), UNK);
        assert_eq!(v.len(), 2);
        assert!(v.is_empty());
    }

    #[test]
    fn add_and_get() {
        let mut v = Vocab::new(false);
        let a = v.add("covid");
        let b = v.add("italy");
        assert_ne!(a, b);
        assert_eq!(v.get("covid"), a);
        assert_eq!(v.get("missing"), UNK);
        assert_eq!(v.text(a), "covid");
    }

    #[test]
    fn frequency_counting() {
        let mut v = Vocab::new(false);
        let a = v.add("x");
        v.add("x");
        v.add("x");
        assert_eq!(v.freq(a), 3);
    }

    #[test]
    fn lowercase_folding() {
        let mut v = Vocab::new(true);
        let a = v.add("Italy");
        assert_eq!(v.get("ITALY"), a);
        assert_eq!(v.get("italy"), a);
        assert_eq!(v.text(a), "italy");
    }

    #[test]
    fn case_sensitive_when_disabled() {
        let mut v = Vocab::new(false);
        let a = v.add("Italy");
        assert_eq!(v.get("italy"), UNK);
        assert_eq!(v.get("Italy"), a);
    }

    #[test]
    fn pruning() {
        let mut v = Vocab::new(false);
        v.add("rare");
        for _ in 0..5 {
            v.add("common");
        }
        let p = v.pruned(2);
        assert_eq!(p.get("rare"), UNK);
        assert_ne!(p.get("common"), UNK);
        assert_eq!(p.len(), 3); // pad, unk, common
    }

    #[test]
    fn encode_sequence() {
        let mut v = Vocab::new(true);
        v.add("covid");
        v.add("hits");
        let ids = v.encode(["Covid", "hits", "mars"]);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[2], UNK);
        assert_ne!(ids[0], UNK);
    }
}
