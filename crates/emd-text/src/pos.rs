//! Lightweight part-of-speech tagger for tweets.
//!
//! Stands in for TweeboParser / TwitterNLP's T-POS: a lexicon + suffix-rule
//! tagger over a compact Twitter tagset. It is deliberately *shallow* — the
//! paper's point is that the NP-chunker local system is a weak, syntax-only
//! candidate proposer, and the CRF/neural systems merely consume POS tags as
//! one feature among several.

use crate::normalize;
use serde::{Deserialize, Serialize};

/// Compact Twitter POS tagset (subset of Gimpel et al.'s tagset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (capitalized, unknown to closed-class lexicons).
    Propn,
    /// Verb.
    Verb,
    /// Adjective.
    Adj,
    /// Adverb.
    Adv,
    /// Pronoun.
    Pron,
    /// Determiner.
    Det,
    /// Adposition / preposition.
    Adp,
    /// Conjunction.
    Conj,
    /// Numeral.
    Num,
    /// Punctuation.
    Punct,
    /// `#hashtag`.
    Hashtag,
    /// `@mention`.
    Mention,
    /// URL.
    Url,
    /// Emoticon.
    Emoticon,
    /// Interjection (lol, omg, ...).
    Interj,
    /// Anything else.
    Other,
}

impl PosTag {
    /// Dense feature index.
    pub fn index(self) -> usize {
        use PosTag::*;
        match self {
            Noun => 0,
            Propn => 1,
            Verb => 2,
            Adj => 3,
            Adv => 4,
            Pron => 5,
            Det => 6,
            Adp => 7,
            Conj => 8,
            Num => 9,
            Punct => 10,
            Hashtag => 11,
            Mention => 12,
            Url => 13,
            Emoticon => 14,
            Interj => 15,
            Other => 16,
        }
    }

    /// Number of tags.
    pub const COUNT: usize = 17;

    /// Can this tag occur inside a noun phrase?
    pub fn nominal(self) -> bool {
        matches!(
            self,
            PosTag::Noun | PosTag::Propn | PosTag::Num | PosTag::Hashtag
        )
    }
}

const DETERMINERS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "some", "any", "no", "every", "each",
    "either", "neither", "my", "your", "his", "her", "its", "our", "their",
];
const PRONOUNS: &[&str] = &[
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "him",
    "us",
    "them",
    "who",
    "what",
    "which",
    "whom",
    "whose",
    "myself",
    "yourself",
    "himself",
    "herself",
    "itself",
    "ourselves",
    "themselves",
    "someone",
    "anyone",
    "everyone",
    "nobody",
    "something",
    "anything",
    "everything",
    "nothing",
    "u",
    "ya",
    "y'all",
];
const PREPOSITIONS: &[&str] = &[
    "in", "on", "at", "by", "for", "with", "about", "against", "between", "into", "through",
    "during", "before", "after", "above", "below", "to", "from", "up", "down", "of", "off", "over",
    "under", "near", "since", "until", "within", "without", "via", "per", "than", "as",
];
const CONJUNCTIONS: &[&str] = &[
    "and", "or", "but", "nor", "so", "yet", "because", "although", "while", "if", "when", "that",
];
const COMMON_VERBS: &[&str] = &[
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "do",
    "does",
    "did",
    "have",
    "has",
    "had",
    "will",
    "would",
    "can",
    "could",
    "shall",
    "should",
    "may",
    "might",
    "must",
    "get",
    "gets",
    "got",
    "go",
    "goes",
    "went",
    "going",
    "say",
    "says",
    "said",
    "make",
    "makes",
    "made",
    "take",
    "takes",
    "took",
    "see",
    "sees",
    "saw",
    "know",
    "knows",
    "knew",
    "think",
    "thinks",
    "thought",
    "want",
    "wants",
    "wanted",
    "give",
    "gives",
    "gave",
    "come",
    "comes",
    "came",
    "work",
    "works",
    "worked",
    "look",
    "looks",
    "looked",
    "need",
    "needs",
    "needed",
    "keep",
    "keeps",
    "kept",
    "let",
    "lets",
    "ask",
    "asks",
    "asked",
    "show",
    "shows",
    "showed",
    "report",
    "reports",
    "reported",
    "announce",
    "announces",
    "announced",
    "confirm",
    "confirms",
    "confirmed",
    "rise",
    "rises",
    "rose",
    "rising",
    "spread",
    "spreads",
    "spreading",
    "hit",
    "hits",
    "lock",
    "locks",
    "locked",
    "close",
    "closes",
    "closed",
    "win",
    "wins",
    "won",
    "lose",
    "loses",
    "lost",
    "play",
    "plays",
    "played",
    "sign",
    "signs",
    "signed",
    "release",
    "releases",
    "released",
    "launch",
    "launches",
    "launched",
    "beat",
    "beats",
    "says",
    "warns",
    "warned",
    "warn",
    "surge",
    "surges",
    "surged",
    "drop",
    "drops",
    "dropped",
    "rank",
    "relax",
    "monitor",
    "shut",
    "explain",
    "explains",
    "explained",
    "discuss",
    "discusses",
    "discussed",
    "speak",
    "speaks",
    "spoke",
    "visit",
    "visits",
    "visited",
    "leads",
    "lead",
    "led",
    "scores",
    "score",
    "scored",
    "starts",
    "start",
    "started",
];
const COMMON_ADVERBS: &[&str] = &[
    "not",
    "very",
    "too",
    "also",
    "just",
    "now",
    "then",
    "here",
    "there",
    "again",
    "still",
    "only",
    "even",
    "never",
    "always",
    "often",
    "soon",
    "already",
    "really",
    "maybe",
    "perhaps",
    "today",
    "tomorrow",
    "yesterday",
    "tonight",
    "fast",
    "hard",
    "well",
    "far",
    "n't",
];
const COMMON_ADJECTIVES: &[&str] = &[
    "new", "good", "bad", "big", "small", "high", "low", "old", "young", "early", "late", "long",
    "short", "great", "little", "own", "other", "same", "able", "social", "public", "local",
    "global", "national", "major", "minor", "positive", "negative", "severe", "mild", "deadly",
    "viral", "official", "similar", "many", "few", "several", "last", "next", "first", "second",
    "third", "worst", "best", "top",
];
const INTERJECTIONS: &[&str] = &[
    "lol", "omg", "wow", "yay", "ugh", "hmm", "yes", "yeah", "no", "nah", "ok", "okay", "please",
    "thanks", "rt", "wtf", "smh", "lmao", "haha", "hahaha",
];

fn in_list(list: &[&str], w: &str) -> bool {
    list.contains(&w)
}

/// Tag a single token given its lowercase form, shape, and position.
fn tag_token(original: &str, lower: &str, sentence_initial: bool) -> PosTag {
    if normalize::is_url(original) {
        return PosTag::Url;
    }
    if normalize::is_mention(original) {
        return PosTag::Mention;
    }
    if normalize::is_hashtag(original) {
        return PosTag::Hashtag;
    }
    // Emoticons containing letters (":D", "xD") aren't pure punctuation.
    if matches!(
        original,
        ":D" | ":P" | ":p" | ":o" | ":O" | "xD" | "XD" | ":-D"
    ) {
        return PosTag::Emoticon;
    }
    if normalize::is_punct(original) {
        // Distinguish emoticons from plain punctuation.
        if (original.contains(':') || original.contains('<') || original.contains(';'))
            && original.len() >= 2
            && !original.chars().all(|c| c == '.' || c == ',')
        {
            return PosTag::Emoticon;
        }
        return PosTag::Punct;
    }
    if lower.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return PosTag::Num;
    }
    if in_list(DETERMINERS, lower) {
        return PosTag::Det;
    }
    if in_list(PRONOUNS, lower) {
        return PosTag::Pron;
    }
    if in_list(PREPOSITIONS, lower) {
        return PosTag::Adp;
    }
    if in_list(CONJUNCTIONS, lower) {
        return PosTag::Conj;
    }
    if in_list(INTERJECTIONS, lower) {
        return PosTag::Interj;
    }
    if in_list(COMMON_VERBS, lower) {
        return PosTag::Verb;
    }
    if in_list(COMMON_ADVERBS, lower) {
        return PosTag::Adv;
    }
    if in_list(COMMON_ADJECTIVES, lower) {
        return PosTag::Adj;
    }
    // Capitalized unknown word not at sentence start → proper noun.
    let first_upper = original.chars().next().is_some_and(|c| c.is_uppercase());
    let all_upper = original
        .chars()
        .filter(|c| c.is_alphabetic())
        .all(|c| c.is_uppercase())
        && original.chars().any(|c| c.is_alphabetic());
    if all_upper && original.len() >= 2 {
        return PosTag::Propn;
    }
    if first_upper && !sentence_initial {
        return PosTag::Propn;
    }
    // Suffix heuristics.
    if lower.ends_with("ing") || lower.ends_with("ed") || lower.ends_with("ify") {
        return PosTag::Verb;
    }
    if lower.ends_with("ly") {
        return PosTag::Adv;
    }
    if lower.ends_with("ous")
        || lower.ends_with("ful")
        || lower.ends_with("ive")
        || lower.ends_with("al")
        || lower.ends_with("ic")
    {
        return PosTag::Adj;
    }
    if first_upper {
        // Sentence-initial capitalized unknown: could be proper noun or
        // ordinary word; lean noun and let downstream models disambiguate.
        return PosTag::Propn;
    }
    PosTag::Noun
}

/// Tag every token of a sentence.
pub fn tag_sentence(tokens: &[impl AsRef<str>]) -> Vec<PosTag> {
    tokens
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let orig = t.as_ref();
            tag_token(orig, &orig.to_lowercase(), i == 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(words: &[&str]) -> Vec<PosTag> {
        tag_sentence(words)
    }

    #[test]
    fn closed_classes() {
        assert_eq!(tags(&["the"])[0], PosTag::Det);
        assert_eq!(tags(&["x", "they"])[1], PosTag::Pron);
        assert_eq!(tags(&["x", "with"])[1], PosTag::Adp);
        assert_eq!(tags(&["x", "and"])[1], PosTag::Conj);
    }

    #[test]
    fn twitter_specials() {
        let t = tags(&["@user", "#covid", "https://t.co/x", ":D", "!!!"]);
        assert_eq!(
            t,
            vec![
                PosTag::Mention,
                PosTag::Hashtag,
                PosTag::Url,
                PosTag::Emoticon,
                PosTag::Punct
            ]
        );
    }

    #[test]
    fn proper_noun_mid_sentence() {
        let t = tags(&["cases", "in", "Italy", "rise"]);
        assert_eq!(t[2], PosTag::Propn);
    }

    #[test]
    fn all_caps_propn() {
        let t = tags(&["CORONAVIRUS", "cases"]);
        assert_eq!(t[0], PosTag::Propn);
    }

    #[test]
    fn verbs_and_adverbs() {
        let t = tags(&["he", "says", "cases", "rise", "quickly"]);
        assert_eq!(t[1], PosTag::Verb);
        assert_eq!(t[4], PosTag::Adv);
    }

    #[test]
    fn suffix_rules() {
        let t = tags(&["x", "testing", "famous", "slowly"]);
        assert_eq!(t[1], PosTag::Verb);
        assert_eq!(t[2], PosTag::Adj);
        assert_eq!(t[3], PosTag::Adv);
    }

    #[test]
    fn numbers() {
        assert_eq!(tags(&["10,000"])[0], PosTag::Num);
    }

    #[test]
    fn nominal_set() {
        assert!(PosTag::Noun.nominal());
        assert!(PosTag::Propn.nominal());
        assert!(PosTag::Hashtag.nominal());
        assert!(!PosTag::Verb.nominal());
        assert!(!PosTag::Det.nominal());
    }

    #[test]
    fn unknown_lowercase_is_noun() {
        let t = tags(&["the", "blorf"]);
        assert_eq!(t[1], PosTag::Noun);
    }
}
