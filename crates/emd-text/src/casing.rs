//! Capitalization analysis.
//!
//! Two levels of analysis live here:
//!
//! * [`CapShape`] — the orthographic shape of a single token, used as a
//!   feature by the CRF tagger and the neural encoders.
//! * [`SyntacticClass`] — the six syntactic context classes of §V-B1 of the
//!   paper, describing *how a candidate mention is capitalized relative to
//!   its sentence*. For non-deep Local EMD systems these six classes are the
//!   entire local candidate embedding (a 6-dimensional one-hot that is then
//!   pooled over all mentions of the candidate).

use crate::token::{Sentence, Span};
use serde::{Deserialize, Serialize};

/// Orthographic shape of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapShape {
    /// `Coronavirus` — first char uppercase, rest lowercase.
    Init,
    /// `CORONAVIRUS`, `UK` — every alphabetic char uppercase (≥1 char).
    AllUpper,
    /// `coronavirus` — every alphabetic char lowercase.
    AllLower,
    /// `iPhone`, `McDonald` — mixed case not covered above.
    Mixed,
    /// `#covid`, `123`, `!!!` — no alphabetic characters at all.
    NonAlpha,
}

impl CapShape {
    /// Classify a token's shape.
    pub fn of(token: &str) -> CapShape {
        let mut has_alpha = false;
        let mut all_upper = true;
        let mut all_lower = true;
        let mut first_alpha_upper = false;
        let mut rest_lower = true;
        let mut seen_first = false;
        for c in token.chars() {
            if c.is_alphabetic() {
                has_alpha = true;
                if c.is_uppercase() {
                    all_lower = false;
                    if !seen_first {
                        first_alpha_upper = true;
                    } else {
                        rest_lower = false;
                    }
                } else {
                    all_upper = false;
                }
                seen_first = true;
            }
        }
        if !has_alpha {
            CapShape::NonAlpha
        } else if all_upper {
            CapShape::AllUpper
        } else if all_lower {
            CapShape::AllLower
        } else if first_alpha_upper && rest_lower {
            CapShape::Init
        } else {
            CapShape::Mixed
        }
    }

    /// Dense feature index (stable across the workspace).
    pub fn index(self) -> usize {
        match self {
            CapShape::Init => 0,
            CapShape::AllUpper => 1,
            CapShape::AllLower => 2,
            CapShape::Mixed => 3,
            CapShape::NonAlpha => 4,
        }
    }

    /// Number of shapes.
    pub const COUNT: usize = 5;
}

/// The six syntactic possibilities in which a candidate mention can be
/// presented (§V-B1). The one-hot over these classes is the *local
/// syntactic embedding* used when the Local EMD system is non-deep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntacticClass {
    /// (1) First character of every candidate token capitalized, and the
    /// evidence is discriminative (not start-of-sentence, sentence not
    /// uniformly cased).
    ProperCapitalization,
    /// (2) A unigram candidate capitalized at the start of the sentence —
    /// capitalization could be merely sentence-initial convention.
    StartOfSentenceCap,
    /// (3) Only a proper substring of a multi-gram candidate is capitalized.
    SubstringCapitalization,
    /// (4) Entire string uppercase — abbreviations like `UN`, `UK`.
    FullCapitalization,
    /// (5) Entire string lowercase.
    NoCapitalization,
    /// (6) The enclosing sentence is uniformly upper/lower/title-cased, so
    /// the mention's casing carries no signal.
    NonDiscriminative,
}

impl SyntacticClass {
    /// Dense index, stable ordering (matches the paper's enumeration 1–6).
    pub fn index(self) -> usize {
        match self {
            SyntacticClass::ProperCapitalization => 0,
            SyntacticClass::StartOfSentenceCap => 1,
            SyntacticClass::SubstringCapitalization => 2,
            SyntacticClass::FullCapitalization => 3,
            SyntacticClass::NoCapitalization => 4,
            SyntacticClass::NonDiscriminative => 5,
        }
    }

    /// Number of classes — the dimensionality of the syntactic embedding.
    pub const COUNT: usize = 6;

    /// One-hot vector for this class.
    pub fn one_hot(self) -> [f32; Self::COUNT] {
        let mut v = [0.0; Self::COUNT];
        v[self.index()] = 1.0;
        v
    }
}

/// Is the sentence's casing uninformative? True when every alphabetic token
/// shares the same shape: all lowercase, all uppercase, or all title-cased
/// (first char capitalized on every word).
pub fn sentence_casing_uninformative(sentence: &Sentence) -> bool {
    let mut shapes = Vec::new();
    for t in sentence.texts() {
        let sh = CapShape::of(t);
        if sh != CapShape::NonAlpha {
            shapes.push(sh);
        }
    }
    if shapes.len() < 2 {
        // Single-word (or empty) sentences cannot establish a convention.
        return false;
    }
    shapes.iter().all(|s| *s == CapShape::AllLower)
        || shapes.iter().all(|s| *s == CapShape::AllUpper)
        || shapes
            .iter()
            .all(|s| *s == CapShape::Init || *s == CapShape::AllUpper)
}

/// Classify the syntactic context of a candidate mention `span` within
/// `sentence` into one of the six classes of §V-B1.
pub fn syntactic_class(sentence: &Sentence, span: &Span) -> SyntacticClass {
    debug_assert!(span.end <= sentence.len());
    if sentence_casing_uninformative(sentence) {
        return SyntacticClass::NonDiscriminative;
    }
    let shapes: Vec<CapShape> = (span.start..span.end)
        .map(|i| CapShape::of(&sentence.tokens[i].text))
        .collect();
    let alpha: Vec<CapShape> = shapes
        .iter()
        .copied()
        .filter(|s| *s != CapShape::NonAlpha)
        .collect();
    if alpha.is_empty() {
        return SyntacticClass::NonDiscriminative;
    }
    let all_upper = alpha.iter().all(|s| *s == CapShape::AllUpper);
    // Multi-char full caps = abbreviation-style. Single letters like "I"
    // also land here; acceptable.
    if all_upper {
        return SyntacticClass::FullCapitalization;
    }
    let all_lower = alpha.iter().all(|s| *s == CapShape::AllLower);
    if all_lower {
        return SyntacticClass::NoCapitalization;
    }
    let all_capitalized = alpha
        .iter()
        .all(|s| matches!(s, CapShape::Init | CapShape::AllUpper | CapShape::Mixed));
    if all_capitalized {
        if span.len() == 1 && span.start == 0 {
            return SyntacticClass::StartOfSentenceCap;
        }
        return SyntacticClass::ProperCapitalization;
    }
    // Some tokens capitalized, some not → substring capitalization.
    SyntacticClass::SubstringCapitalization
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::SentenceId;

    fn sent(words: &[&str]) -> Sentence {
        Sentence::from_tokens(SentenceId::new(0, 0), words.iter().copied())
    }

    #[test]
    fn cap_shapes() {
        assert_eq!(CapShape::of("Coronavirus"), CapShape::Init);
        assert_eq!(CapShape::of("CORONAVIRUS"), CapShape::AllUpper);
        assert_eq!(CapShape::of("coronavirus"), CapShape::AllLower);
        assert_eq!(CapShape::of("iPhone"), CapShape::Mixed);
        assert_eq!(CapShape::of("McDonald"), CapShape::Mixed);
        assert_eq!(CapShape::of("123"), CapShape::NonAlpha);
        assert_eq!(CapShape::of("UK"), CapShape::AllUpper);
        assert_eq!(CapShape::of("#tag"), CapShape::AllLower); // 'tag' chars decide
    }

    #[test]
    fn proper_capitalization() {
        let s = sent(&["Trump", "to", "rank", "US", "counties"]);
        assert_eq!(
            syntactic_class(&s, &Span::new(0, 1)),
            SyntacticClass::StartOfSentenceCap // unigram at sentence start
        );
        assert_eq!(
            syntactic_class(&s, &Span::new(3, 4)),
            SyntacticClass::FullCapitalization
        );
    }

    #[test]
    fn proper_cap_multi_token() {
        let s = sent(&["Andy", "Beshear", "says", "things"]);
        assert_eq!(
            syntactic_class(&s, &Span::new(0, 2)),
            SyntacticClass::ProperCapitalization
        );
    }

    #[test]
    fn proper_cap_mid_sentence() {
        let s = sent(&["the", "governor", "Beshear", "spoke"]);
        assert_eq!(
            syntactic_class(&s, &Span::new(2, 3)),
            SyntacticClass::ProperCapitalization
        );
    }

    #[test]
    fn substring_capitalization() {
        let s = sent(&["watch", "Andy", "beshear", "tonight"]);
        assert_eq!(
            syntactic_class(&s, &Span::new(1, 3)),
            SyntacticClass::SubstringCapitalization
        );
    }

    #[test]
    fn no_capitalization() {
        let s = sent(&["the", "coronavirus", "Spreads", "fast"]);
        assert_eq!(
            syntactic_class(&s, &Span::new(1, 2)),
            SyntacticClass::NoCapitalization
        );
    }

    #[test]
    fn non_discriminative_all_caps_sentence() {
        let s = sent(&[
            "WE",
            "JUST",
            "BYPASS",
            "ITALY",
            "WITH",
            "CORONAVIRUS",
            "CASES",
        ]);
        assert_eq!(
            syntactic_class(&s, &Span::new(3, 4)),
            SyntacticClass::NonDiscriminative
        );
        assert!(sentence_casing_uninformative(&s));
    }

    #[test]
    fn non_discriminative_all_lower_sentence() {
        let s = sent(&["italy", "is", "rising", "fast"]);
        assert!(sentence_casing_uninformative(&s));
        assert_eq!(
            syntactic_class(&s, &Span::new(0, 1)),
            SyntacticClass::NonDiscriminative
        );
    }

    #[test]
    fn title_case_sentence_uninformative() {
        let s = sent(&["Every", "Word", "Here", "Is", "Capitalized"]);
        assert!(sentence_casing_uninformative(&s));
    }

    #[test]
    fn informative_mixed_sentence() {
        let s = sent(&["Canada", "is", "rising", "at", "a", "rate"]);
        assert!(!sentence_casing_uninformative(&s));
        assert_eq!(
            syntactic_class(&s, &Span::new(0, 1)),
            SyntacticClass::StartOfSentenceCap
        );
    }

    #[test]
    fn one_hot_shape() {
        let v = SyntacticClass::FullCapitalization.one_hot();
        assert_eq!(v, [0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }
}
