//! # emd-text
//!
//! Text-processing substrate for the EMD Globalizer reproduction.
//!
//! This crate owns everything the rest of the workspace needs to turn raw
//! microblog messages into model-ready inputs:
//!
//! * a Twitter-aware [`tokenizer`] (hashtags, @-mentions, URLs, emoticons,
//!   elongations, contractions),
//! * the corpus data model ([`token::Sentence`], [`token::Span`],
//!   [`token::Dataset`], BIO conversions),
//! * capitalization-shape analysis ([`casing`]) including the six syntactic
//!   context classes of §V-B1 of the paper,
//! * a frequency-aware interning [`vocab::Vocab`],
//! * a from-scratch byte-pair-encoding learner/encoder ([`bpe`]) used by the
//!   MiniBERT local EMD system,
//! * a lexicon + rule part-of-speech tagger ([`pos`]) standing in for
//!   TweeboParser / T-POS,
//! * [`gazetteer`] lookups producing Aguilar-style 6-dimensional lexical
//!   vectors,
//! * light text [`normalize`] utilities.
//!
//! Everything here is deterministic and allocation-conscious: hot paths
//! operate on interned `u32` token ids and borrowed `&str` slices.

pub mod bpe;
pub mod casing;
pub mod gazetteer;
pub mod intern;
pub mod normalize;
pub mod pos;
pub mod token;
pub mod tokenizer;
pub mod vocab;

pub use casing::{CapShape, SyntacticClass};
pub use intern::{Interner, Sym};
pub use token::{AnnotatedSentence, Bio, Dataset, Sentence, SentenceId, Span, Token};
pub use tokenizer::tokenize;
pub use vocab::Vocab;
