//! Twitter-aware tokenizer.
//!
//! Splits raw microblog text into [`Token`]s while keeping the platform's
//! idiosyncratic units intact: `#hashtags`, `@mentions`, URLs, emoticons and
//! common contractions. The tokenizer is the first stage of both the Local
//! EMD systems and the Global EMD rescan, so its behaviour must be identical
//! everywhere — all crates call into this single implementation.

use crate::token::{Sentence, SentenceId, Token};

/// Character classes the scanner distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Alpha,
    Digit,
    Space,
    Punct,
}

fn classify(c: char) -> Class {
    if c.is_whitespace() {
        Class::Space
    } else if c.is_alphabetic() || c == '\'' {
        Class::Alpha
    } else if c.is_ascii_digit() {
        Class::Digit
    } else {
        Class::Punct
    }
}

/// A small set of western emoticons recognized as single tokens.
const EMOTICONS: &[&str] = &[
    ":)", ":(", ":D", ":P", ":p", ";)", ":-)", ":-(", ":-D", ":'(", ":o", ":O", "<3", "xD", "XD",
    ":/", ":|",
];

fn starts_with_emoticon(rest: &str) -> Option<usize> {
    EMOTICONS
        .iter()
        .filter(|e| rest.starts_with(**e))
        .map(|e| e.len())
        .max()
}

fn is_url_start(rest: &str) -> bool {
    rest.starts_with("http://") || rest.starts_with("https://") || rest.starts_with("www.")
}

/// Tokenize one message into a [`Sentence`].
///
/// Rules, in priority order at each scan position:
/// 1. URLs (`http://…`, `https://…`, `www.…`) are one token up to the next
///    whitespace.
/// 2. `@mention` and `#hashtag` are one token (`@`/`#` + alphanumerics,
///    underscores).
/// 3. Emoticons from a fixed inventory are one token.
/// 4. Maximal runs of alphabetic characters (apostrophes allowed inside, so
///    `don't` and `Beshear's` stay whole) form a word token.
/// 5. Maximal digit runs (with internal `.`/`,`/`:` so `3.5`, `10,000` and
///    `19:30` stay whole) form a number token.
/// 6. Every other non-space character is a single punctuation token.
pub fn tokenize(id: SentenceId, text: &str) -> Sentence {
    let mut tokens = Vec::new();
    let bytes_len = text.len();
    let mut char_iter = text.char_indices().peekable();

    while let Some(&(i, c)) = char_iter.peek() {
        let rest = &text[i..];
        if c.is_whitespace() {
            char_iter.next();
            continue;
        }
        // URL
        if is_url_start(rest) {
            let mut end = bytes_len;
            for (j, cj) in rest.char_indices() {
                if cj.is_whitespace() {
                    end = i + j;
                    break;
                }
            }
            push(&mut tokens, text, i, end);
            advance_to(&mut char_iter, end);
            continue;
        }
        // @mention / #hashtag
        if (c == '@' || c == '#') && rest.len() > c.len_utf8() {
            let tag_body = &rest[c.len_utf8()..];
            let mut blen = 0;
            for ch in tag_body.chars() {
                if ch.is_alphanumeric() || ch == '_' {
                    blen += ch.len_utf8();
                } else {
                    break;
                }
            }
            if blen > 0 {
                let end = i + c.len_utf8() + blen;
                push(&mut tokens, text, i, end);
                advance_to(&mut char_iter, end);
                continue;
            }
        }
        // Emoticon
        if let Some(elen) = starts_with_emoticon(rest) {
            push(&mut tokens, text, i, i + elen);
            advance_to(&mut char_iter, i + elen);
            continue;
        }
        match classify(c) {
            Class::Alpha => {
                let mut end = i;
                for (j, cj) in rest.char_indices() {
                    if classify(cj) == Class::Alpha {
                        end = i + j + cj.len_utf8();
                    } else {
                        break;
                    }
                }
                // Trim trailing apostrophes ("rockin'" keeps it, "'hello'" edge
                // cases strip the closing quote).
                let mut tok = &text[i..end];
                while tok.ends_with('\'') && tok.len() > 1 && !tok[..tok.len() - 1].ends_with('n') {
                    tok = &tok[..tok.len() - 1];
                }
                // Leading apostrophe is punctuation.
                if tok.starts_with('\'') && tok.len() > 1 {
                    push(&mut tokens, text, i, i + 1);
                    push(&mut tokens, text, i + 1, i + tok.len());
                } else {
                    push(&mut tokens, text, i, i + tok.len());
                }
                advance_to(&mut char_iter, end);
                // If we trimmed a trailing quote, emit it as punctuation.
                let trimmed = end - (i + tok.len());
                if trimmed > 0 {
                    push(&mut tokens, text, i + tok.len(), end);
                }
            }
            Class::Digit => {
                let mut end = i;
                let mut prev_digit = false;
                for (j, cj) in rest.char_indices() {
                    let pos = i + j;
                    if cj.is_ascii_digit() {
                        end = pos + 1;
                        prev_digit = true;
                    } else if prev_digit
                        && (cj == '.' || cj == ',' || cj == ':')
                        && rest[j + 1..]
                            .chars()
                            .next()
                            .is_some_and(|n| n.is_ascii_digit())
                    {
                        prev_digit = false;
                        end = pos + 1;
                    } else {
                        break;
                    }
                }
                push(&mut tokens, text, i, end);
                advance_to(&mut char_iter, end);
            }
            Class::Punct => {
                // Collapse runs of the same punctuation char ("!!!" → one token)
                let mut end = i + c.len_utf8();
                for (j, cj) in rest.char_indices().skip(1) {
                    if cj == c {
                        end = i + j + cj.len_utf8();
                    } else {
                        break;
                    }
                }
                push(&mut tokens, text, i, end);
                advance_to(&mut char_iter, end);
            }
            Class::Space => unreachable!("whitespace handled above"),
        }
    }
    Sentence { id, tokens }
}

fn push(tokens: &mut Vec<Token>, text: &str, start: usize, end: usize) {
    if end > start {
        tokens.push(Token {
            text: text[start..end].to_string(),
            start,
            end,
        });
    }
}

fn advance_to(iter: &mut std::iter::Peekable<std::str::CharIndices<'_>>, end: usize) {
    while let Some(&(i, _)) = iter.peek() {
        if i >= end {
            break;
        }
        iter.next();
    }
}

/// Split a message into sentences on hard terminators (`.`, `!`, `?`,
/// newline) and tokenize each, numbering `sent_id` from 0.
///
/// Terminators are kept with the sentence they end. Abbreviation handling is
/// deliberately minimal — tweets rarely contain formal abbreviations, and
/// the paper treats each tweet-sentence independently anyway.
pub fn tokenize_message(tweet_id: u64, text: &str) -> Vec<Sentence> {
    let mut sentences = Vec::new();
    let mut start = 0usize;
    let mut sent_id = 0u32;
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        let hard = c == '\n'
            || ((c == '.' || c == '!' || c == '?')
                && chars
                    .peek()
                    .map(|&(_, n)| n.is_whitespace())
                    .unwrap_or(true));
        if hard {
            let end = i + c.len_utf8();
            let piece = &text[start..end];
            if !piece.trim().is_empty() {
                let s = tokenize(SentenceId::new(tweet_id, sent_id), piece_offset(piece));
                if !s.is_empty() {
                    sentences.push(reoffset(s, start, text));
                    sent_id += 1;
                }
            }
            start = end;
        }
    }
    let piece = &text[start..];
    if !piece.trim().is_empty() {
        let s = tokenize(SentenceId::new(tweet_id, sent_id), piece_offset(piece));
        if !s.is_empty() {
            sentences.push(reoffset(s, start, text));
        }
    }
    sentences
}

fn piece_offset(piece: &str) -> &str {
    piece
}

/// Shift token offsets of a sentence tokenized from a slice back into the
/// coordinate space of the full message.
fn reoffset(mut s: Sentence, base: usize, _full: &str) -> Sentence {
    for t in &mut s.tokens {
        t.start += base;
        t.end += base;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<String> {
        tokenize(SentenceId::new(0, 0), text)
            .tokens
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_words_and_punct() {
        assert_eq!(
            toks("Social distancing is not social isolation."),
            vec![
                "Social",
                "distancing",
                "is",
                "not",
                "social",
                "isolation",
                "."
            ]
        );
    }

    #[test]
    fn hashtags_and_mentions() {
        assert_eq!(
            toks("@realDonaldTrump wants #CovidRelief now"),
            vec!["@realDonaldTrump", "wants", "#CovidRelief", "now"]
        );
    }

    #[test]
    fn urls_kept_whole() {
        assert_eq!(
            toks("see https://t.co/Ab12?x=1 now"),
            vec!["see", "https://t.co/Ab12?x=1", "now"]
        );
        assert_eq!(
            toks("www.example.com rocks"),
            vec!["www.example.com", "rocks"]
        );
    }

    #[test]
    fn emoticons() {
        assert_eq!(toks("great news :D <3"), vec!["great", "news", ":D", "<3"]);
    }

    #[test]
    fn contractions_stay_whole() {
        assert_eq!(
            toks("he's asking don't panic"),
            vec!["he's", "asking", "don't", "panic"]
        );
    }

    #[test]
    fn numbers_with_separators() {
        assert_eq!(
            toks("10,000 cases at 19:30 rate 3.5"),
            vec!["10,000", "cases", "at", "19:30", "rate", "3.5"]
        );
    }

    #[test]
    fn punct_runs_collapse() {
        assert_eq!(toks("WHAT!!! ...ok"), vec!["WHAT", "!!!", "...", "ok"]);
    }

    #[test]
    fn offsets_are_correct() {
        let text = "Italy #covid";
        let s = tokenize(SentenceId::new(0, 0), text);
        for t in &s.tokens {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn message_split_into_sentences() {
        let sents = tokenize_message(7, "Beshear speaks. Italy locks down! why?");
        assert_eq!(sents.len(), 3);
        assert_eq!(sents[0].id, SentenceId::new(7, 0));
        assert_eq!(sents[1].id, SentenceId::new(7, 1));
        assert_eq!(sents[2].joined(), "why ?");
    }

    #[test]
    fn message_offsets_survive_split() {
        let text = "Beshear speaks. Italy locks down!";
        for s in tokenize_message(1, text) {
            for t in &s.tokens {
                assert_eq!(&text[t.start..t.end], t.text, "offset mismatch for {:?}", t);
            }
        }
    }

    #[test]
    fn decimal_point_not_sentence_break() {
        let sents = tokenize_message(1, "rate is 3.5 today");
        assert_eq!(sents.len(), 1);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(toks("").is_empty());
        assert!(toks("   \t ").is_empty());
        assert!(tokenize_message(0, "  \n ").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(toks("café olé"), vec!["café", "olé"]);
    }
}
