//! Cross-module tests of the text pipeline: tokenizer → POS → casing →
//! BPE working together on realistic tweets (the unit tests cover each
//! module alone).

use emd_text::bpe::Bpe;
use emd_text::casing::{sentence_casing_uninformative, syntactic_class, SyntacticClass};
use emd_text::normalize::normalize_token;
use emd_text::pos::{tag_sentence, PosTag};
use emd_text::token::{SentenceId, Span};
use emd_text::tokenizer::{tokenize, tokenize_message};

const TWEETS: &[&str] = &[
    "Beshear : Social distancing is not social isolation.",
    "WE JUST BY-PASS Italy WITH CORONAVIRUS CASES. But @realDonaldTrump wants to relax social distancing.",
    "Not a bad video to explain how the Coronavirus works as well as the reasoning for social distancing.",
    "Trump to rank US counties by coronavirus risk, may 'relax' social distancing.",
    "Canada is rising at a rate similar to the early days in ITALY",
    "soooo excited!!! new #CovidRelief bill dropping https://t.co/Ab12 :D",
];

/// The full paper Figure-1 tweet set survives the pipeline without panics
/// and with sane structure.
#[test]
fn figure1_tweets_tokenize_cleanly() {
    for (i, t) in TWEETS.iter().enumerate() {
        let sents = tokenize_message(i as u64, t);
        assert!(!sents.is_empty(), "tweet {i} produced no sentences");
        for s in &sents {
            assert!(!s.is_empty());
            let texts: Vec<&str> = s.texts().collect();
            let tags = tag_sentence(&texts);
            assert_eq!(tags.len(), texts.len());
        }
    }
}

/// The ALL-CAPS tweet of the case study is flagged non-discriminative,
/// the mixed-case ones are not.
#[test]
fn case_study_casing_classification() {
    let shouty = tokenize(
        SentenceId::new(0, 0),
        "WE JUST BY-PASS Italy WITH CORONAVIRUS CASES",
    );
    // Note: 'Italy' is Init-cased amid ALL-CAPS, so the sentence is not
    // perfectly uniform — but a mention of CORONAVIRUS inside it is still
    // syntactically weak evidence. Verify at minimum that an actually
    // uniform sentence is flagged.
    let uniform = tokenize(SentenceId::new(1, 0), "THE CASES KEEP RISING FAST");
    assert!(sentence_casing_uninformative(&uniform));
    let normal = tokenize(
        SentenceId::new(2, 0),
        "Canada is rising at a rate similar to the early days",
    );
    assert!(!sentence_casing_uninformative(&normal));
    // Mention-level class for "Italy" in the shouty tweet.
    let idx = shouty.texts().position(|t| t == "Italy").unwrap();
    let class = syntactic_class(&shouty, &Span::new(idx, idx + 1));
    assert!(
        matches!(
            class,
            SyntacticClass::ProperCapitalization | SyntacticClass::NonDiscriminative
        ),
        "{class:?}"
    );
}

/// Twitter specials route to their POS tags through the whole pipeline.
#[test]
fn specials_pipeline() {
    let s = tokenize(SentenceId::new(0, 0), TWEETS[5]);
    let texts: Vec<&str> = s.texts().collect();
    let tags = tag_sentence(&texts);
    let mut seen = std::collections::HashSet::new();
    for (t, tag) in texts.iter().zip(tags.iter()) {
        if t.starts_with('#') {
            assert_eq!(*tag, PosTag::Hashtag);
            seen.insert("hashtag");
        }
        if t.starts_with("https://") {
            assert_eq!(*tag, PosTag::Url);
            seen.insert("url");
        }
        if *t == ":D" {
            assert_eq!(*tag, PosTag::Emoticon);
            seen.insert("emoticon");
        }
    }
    assert_eq!(
        seen.len(),
        3,
        "tweet should exercise hashtag, url, emoticon: {texts:?}"
    );
}

/// Normalization + BPE: every normalized token of the tweet set segments
/// and reconstructs.
#[test]
fn bpe_covers_normalized_tweets() {
    let mut words: Vec<(String, u64)> = Vec::new();
    for t in TWEETS {
        for s in tokenize_message(0, t) {
            for tok in s.texts() {
                words.push((normalize_token(tok), 1));
            }
        }
    }
    words.sort();
    words.dedup_by(|a, b| a.0 == b.0);
    let bpe = Bpe::learn(words.iter().map(|(w, c)| (w.as_str(), *c)), 100);
    for (w, _) in &words {
        if w.is_empty() {
            continue;
        }
        let joined: String = bpe.segment(w).join("").replace("</w>", "");
        assert_eq!(&joined, w);
        assert!(!bpe.encode_word(w).is_empty());
    }
}

/// Elongation normalization feeds the same vocabulary slot.
#[test]
fn elongation_folds_to_common_form() {
    assert_eq!(normalize_token("soooo"), normalize_token("soo"));
    assert_ne!(normalize_token("soooo"), normalize_token("so"));
}
