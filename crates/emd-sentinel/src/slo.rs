//! Declarative SLOs evaluated as multi-window burn rates.
//!
//! An [`SloSpec`] states an objective over a stream — "p99 batch latency
//! stays under X" or "the quarantine ratio stays under Y" — as a
//! per-batch **bad fraction** in `[0, 1]` and an **error budget**: the
//! objective holds over a window iff `mean(bad) ≤ budget`. The **burn
//! rate** of a window is `mean(bad) / budget` — 1.0 means the stream is
//! spending its budget exactly as fast as the objective allows, 14 means
//! the budget for a month evaporates in two days.
//!
//! Following the SRE multi-window pattern, each SLO watches two windows
//! at once: a **slow** window (default 60 batches) that gives the signal
//! statistical weight, and a **fast** window (default 5 batches) that
//! confirms the problem is *still happening* so an alert never fires on
//! a long-resolved spike. The SLO **fires** on a batch iff *both* burn
//! rates are at or above [`SloSpec::burn_threshold`]. While firing, the
//! sentinel presses the spec's severity into the health machine
//! (alongside the threshold/drift rules) and reports an
//! [`SloBurn`](crate::SloBurn) that the pipeline mirrors as a
//! `TraceEventKind::SloBurn` event — so the full burn interval is
//! replayable from the trace alone.
//!
//! Windows that are not yet full evaluate over the samples they have:
//! a fresh stream with 10 batches of history can already burn — it
//! cannot hide behind an empty denominator.

use crate::health::Severity;
use crate::series::SeriesId;
use crate::BatchObservation;
use std::collections::VecDeque;

/// What an SLO measures per batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObjective {
    /// Bad fraction is the indicator `batch latency > max_ns`; with
    /// budget `1 - q` this encodes "the q-quantile of batch latency
    /// stays under `max_ns`" (e.g. budget 0.01 ⇒ p99).
    LatencyBelow {
        /// Latency objective in nanoseconds.
        max_ns: u64,
    },
    /// Bad fraction is the batch's value of a ratio-valued series (e.g.
    /// [`SeriesId::QuarantineRate`]); the budget is the ratio limit
    /// itself, so burn 1.0 sits exactly at the objective.
    RatioBelow {
        /// The ratio series consumed as budget spend.
        series: SeriesId,
    },
}

/// One declarative objective plus its burn-rate alerting knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable lowercase identifier (`[a-z0-9_]+`), used in metric names
    /// and trace events.
    pub name: String,
    /// What to measure.
    pub objective: SloObjective,
    /// Error budget: the bad fraction the objective tolerates.
    pub budget: f64,
    /// Fast confirmation window, in batches.
    pub fast_window: usize,
    /// Slow significance window, in batches.
    pub slow_window: usize,
    /// Both windows must burn at ≥ this multiple of budget to fire.
    pub burn_threshold: f64,
    /// Severity pressed into the health machine while firing.
    pub severity: Severity,
}

impl SloSpec {
    /// "p99 batch latency < `max_ns`": budget 1%, page-style burn
    /// threshold 14 (the classic 5m/1h fast-burn pairing scaled to
    /// batches: 5-batch fast / 60-batch slow).
    pub fn p99_latency_below(name: &str, max_ns: u64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective: SloObjective::LatencyBelow { max_ns },
            budget: 0.01,
            fast_window: 5,
            slow_window: 60,
            burn_threshold: 14.0,
            severity: Severity::Critical,
        }
    }

    /// "`series` stays under `limit`" (e.g. quarantine ratio < 5%):
    /// budget is the limit itself, burn threshold 2 — sustained
    /// operation at twice the objective fires, hovering just under the
    /// limit does not.
    pub fn ratio_below(name: &str, series: SeriesId, limit: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective: SloObjective::RatioBelow { series },
            budget: limit,
            fast_window: 5,
            slow_window: 60,
            burn_threshold: 2.0,
            severity: Severity::Degraded,
        }
    }

    /// Override the fast/slow windows.
    pub fn windows(mut self, fast: usize, slow: usize) -> SloSpec {
        self.fast_window = fast.max(1);
        self.slow_window = slow.max(self.fast_window);
        self
    }

    /// Override the burn threshold.
    pub fn burn_threshold(mut self, t: f64) -> SloSpec {
        self.burn_threshold = t;
        self
    }

    /// Override the severity pressed while firing.
    pub fn severity(mut self, s: Severity) -> SloSpec {
        self.severity = s;
        self
    }

    /// The series this SLO is about (for alert routing).
    pub fn series(&self) -> SeriesId {
        match self.objective {
            SloObjective::LatencyBelow { .. } => SeriesId::BatchLatencyNs,
            SloObjective::RatioBelow { series } => series,
        }
    }

    fn assert_valid(&self) {
        assert!(
            !self.name.is_empty()
                && self
                    .name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "SLO name {:?} must be a lowercase [a-z0-9_]+ identifier",
            self.name
        );
        assert!(
            self.budget > 0.0 && self.budget.is_finite(),
            "SLO {:?}: budget must be a positive finite fraction",
            self.name
        );
        assert!(
            self.burn_threshold > 0.0,
            "SLO {:?}: burn threshold must be positive",
            self.name
        );
    }
}

/// Live burn-rate state of one SLO (see [`crate::Sentinel::slo_status`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// Burn rate over the fast window (0 before any sample).
    pub burn_fast: f64,
    /// Burn rate over the slow window (0 before any sample).
    pub burn_slow: f64,
    /// Whether both windows currently burn at ≥ the threshold.
    pub firing: bool,
}

/// Per-spec rolling windows of bad fractions.
#[derive(Debug, Clone)]
pub(crate) struct SloTracker {
    pub(crate) spec: SloSpec,
    window: VecDeque<f64>,
    burn_fast: f64,
    burn_slow: f64,
    firing: bool,
}

impl SloTracker {
    pub(crate) fn new(spec: SloSpec) -> SloTracker {
        spec.assert_valid();
        SloTracker {
            window: VecDeque::with_capacity(spec.slow_window),
            spec,
            burn_fast: 0.0,
            burn_slow: 0.0,
            firing: false,
        }
    }

    /// The bad fraction this batch contributes, or `None` when the
    /// objective's input is absent (no sentences ⇒ no ratio samples).
    fn bad(&self, obs: &BatchObservation, samples: &[(SeriesId, f64)]) -> Option<f64> {
        match self.spec.objective {
            SloObjective::LatencyBelow { max_ns } => {
                (obs.sentences > 0).then_some(if obs.latency_ns > max_ns { 1.0 } else { 0.0 })
            }
            SloObjective::RatioBelow { series } => samples
                .iter()
                .find(|(s, _)| *s == series)
                .map(|&(_, v)| v.clamp(0.0, 1.0)),
        }
    }

    /// Fold one batch in; returns the updated status.
    pub(crate) fn observe(
        &mut self,
        obs: &BatchObservation,
        samples: &[(SeriesId, f64)],
    ) -> SloStatus {
        if let Some(bad) = self.bad(obs, samples) {
            if self.window.len() == self.spec.slow_window {
                self.window.pop_front();
            }
            self.window.push_back(bad);
            let slow_n = self.window.len();
            let slow_mean = self.window.iter().sum::<f64>() / slow_n as f64;
            let fast_n = slow_n.min(self.spec.fast_window);
            let fast_mean = self.window.iter().rev().take(fast_n).sum::<f64>() / fast_n as f64;
            self.burn_fast = fast_mean / self.spec.budget;
            self.burn_slow = slow_mean / self.spec.budget;
            self.firing = self.burn_fast >= self.spec.burn_threshold
                && self.burn_slow >= self.spec.burn_threshold;
        }
        self.status()
    }

    pub(crate) fn status(&self) -> SloStatus {
        SloStatus {
            name: self.spec.name.clone(),
            burn_fast: self.burn_fast,
            burn_slow: self.burn_slow,
            firing: self.firing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_obs(batch: u64, latency_ns: u64) -> BatchObservation {
        BatchObservation {
            batch,
            sentences: 10,
            latency_ns,
            ..Default::default()
        }
    }

    #[test]
    fn healthy_stream_never_fires() {
        let mut t = SloTracker::new(SloSpec::p99_latency_below("lat", 1_000_000));
        for b in 1..=200 {
            let s = t.observe(&latency_obs(b, 100_000), &[]);
            assert!(!s.firing, "batch {b}: {s:?}");
        }
        assert_eq!(t.status().burn_slow, 0.0);
    }

    #[test]
    fn sustained_regression_fires_within_the_fast_window() {
        let mut t = SloTracker::new(SloSpec::p99_latency_below("lat", 1_000_000));
        for b in 1..=30 {
            t.observe(&latency_obs(b, 100_000), &[]);
        }
        let mut fired_after = None;
        for k in 1..=20u64 {
            let s = t.observe(&latency_obs(30 + k, 5_000_000), &[]);
            if s.firing {
                fired_after = Some(k);
                break;
            }
        }
        let k = fired_after.expect("sustained 5x-over-objective latency must fire");
        assert!(
            k <= 5,
            "fired after {k} bad batches; must fire within the 5-batch fast window"
        );
    }

    #[test]
    fn a_single_spike_does_not_fire() {
        let mut t = SloTracker::new(SloSpec::p99_latency_below("lat", 1_000_000));
        for b in 1..=60 {
            t.observe(&latency_obs(b, 100_000), &[]);
        }
        t.observe(&latency_obs(61, 5_000_000), &[]);
        // The spike leaves the fast window; later batches are clean.
        let mut fired = false;
        for b in 62..=80 {
            fired |= t.observe(&latency_obs(b, 100_000), &[]).firing;
        }
        assert!(!fired, "an isolated spike must not page");
    }

    #[test]
    fn ratio_objective_burns_against_its_limit() {
        let spec = SloSpec::ratio_below("quarantine", SeriesId::QuarantineRate, 0.05);
        let mut t = SloTracker::new(spec);
        // Sustained 20% quarantine = 4x budget ≥ threshold 2.
        let mut fired = false;
        for b in 1..=30 {
            let samples = vec![(SeriesId::QuarantineRate, 0.20)];
            let o = BatchObservation {
                batch: b,
                sentences: 10,
                quarantined: 2,
                ..Default::default()
            };
            fired |= t.observe(&o, &samples).firing;
        }
        assert!(fired);
        // Hovering at 80% of the limit never fires.
        let mut t = SloTracker::new(SloSpec::ratio_below(
            "quarantine",
            SeriesId::QuarantineRate,
            0.05,
        ));
        for b in 1..=100 {
            let samples = vec![(SeriesId::QuarantineRate, 0.04)];
            let o = BatchObservation {
                batch: b,
                sentences: 10,
                ..Default::default()
            };
            assert!(!t.observe(&o, &samples).firing, "batch {b}");
        }
    }

    #[test]
    fn empty_batches_are_skipped() {
        let mut t = SloTracker::new(SloSpec::p99_latency_below("lat", 1_000));
        let s = t.observe(&BatchObservation::default(), &[]);
        assert_eq!((s.burn_fast, s.burn_slow), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "lowercase")]
    fn bad_names_are_rejected() {
        SloTracker::new(SloSpec::p99_latency_below("Bad Name", 1));
    }
}
