//! Streaming change detectors: Page–Hinkley and an ADWIN-style
//! adaptive-window test.
//!
//! Both are pure scalar math over one series — no clocks, no allocation
//! beyond the ADWIN window — and both have a brute-force reference
//! implementation ([`reference`]) that recomputes every statistic from
//! the full retained history each step. The streaming structs are
//! proptest-checked to fire at *bit-identical* steps with bit-identical
//! statistics, which pins down summation order: every mean here is a
//! left-to-right fold, in both implementations.
//!
//! **Page–Hinkley** tracks the cumulative deviation of samples from their
//! running mean, `m_t = Σ (x_i − x̄_i − δ)`, and fires when `m_t` climbs
//! more than `λ` above its historical minimum (an upward level shift);
//! the downward side is symmetric. `δ` absorbs small wander, `λ` sets
//! the magnitude×duration of shift that counts as drift, and a warm-up
//! of `warmup` samples feeds only the running mean so the detector does
//! not fire on its own cold start.
//!
//! **ADWIN** keeps an adaptive window of recent samples and, on every
//! insert, tests all split points: if some prefix/suffix pair has means
//! further apart than the Hoeffding-style bound
//! `ε_cut = √(ln(4n/δ) / 2m)` (with `m` the harmonic mean of the two
//! halves' sizes), the distribution has changed — the stale prefix is
//! dropped one sample at a time until no split violates the bound. The
//! window is capped so memory and per-insert cost stay bounded.

use std::collections::VecDeque;

/// What a detector reports at the step it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Detector statistic at fire time (Page–Hinkley cumulative
    /// deviation, ADWIN `|μ_prefix − μ_suffix|`).
    pub stat: f64,
    /// The threshold that was exceeded (`λ` / `ε_cut`).
    pub threshold: f64,
    /// Mean of the pre-change regime (Page–Hinkley running mean; ADWIN
    /// mean of the dropped prefix).
    pub mean_before: f64,
    /// Post-change level (Page–Hinkley: the triggering sample; ADWIN:
    /// mean of the retained suffix).
    pub mean_after: f64,
}

/// Which direction(s) of level shift Page–Hinkley watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhDirection {
    /// Fire only on upward shifts.
    Up,
    /// Fire only on downward shifts.
    Down,
    /// Fire on either.
    Both,
}

/// Page–Hinkley parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhConfig {
    /// Tolerated wander around the mean; deviations smaller than this
    /// never accumulate.
    pub delta: f64,
    /// Fire when the cumulative deviation exceeds its running minimum by
    /// this much.
    pub lambda: f64,
    /// Samples that feed only the running mean before cumulative stats
    /// start — prevents cold-start false fires.
    pub warmup: usize,
    /// Shift direction(s) to watch.
    pub direction: PhDirection,
}

impl Default for PhConfig {
    fn default() -> Self {
        PhConfig {
            delta: 0.005,
            lambda: 0.5,
            warmup: 10,
            direction: PhDirection::Both,
        }
    }
}

/// Streaming Page–Hinkley detector. Fully resets after each detection
/// (mean and cumulative stats restart from the next sample).
#[derive(Debug, Clone)]
pub struct PageHinkley {
    cfg: PhConfig,
    n: u64,
    sum: f64,
    m_up: f64,
    min_up: f64,
    m_dn: f64,
    min_dn: f64,
}

impl PageHinkley {
    /// A fresh detector with the given parameters.
    pub fn new(cfg: PhConfig) -> Self {
        PageHinkley {
            cfg,
            n: 0,
            sum: 0.0,
            m_up: 0.0,
            min_up: 0.0,
            m_dn: 0.0,
            min_dn: 0.0,
        }
    }

    /// Restart from an empty state (as after a detection).
    pub fn reset(&mut self) {
        self.n = 0;
        self.sum = 0.0;
        self.m_up = 0.0;
        self.min_up = 0.0;
        self.m_dn = 0.0;
        self.min_dn = 0.0;
    }

    /// Feed one sample; `Some` when drift fires (the detector resets
    /// before returning).
    pub fn push(&mut self, x: f64) -> Option<Detection> {
        self.n += 1;
        self.sum += x;
        let mean = self.sum / self.n as f64;
        if self.n <= self.cfg.warmup as u64 {
            return None;
        }
        self.m_up += x - mean - self.cfg.delta;
        self.min_up = self.min_up.min(self.m_up);
        self.m_dn += mean - x - self.cfg.delta;
        self.min_dn = self.min_dn.min(self.m_dn);
        let ph_up = self.m_up - self.min_up;
        let ph_dn = self.m_dn - self.min_dn;
        let up_fired = matches!(self.cfg.direction, PhDirection::Up | PhDirection::Both)
            && ph_up > self.cfg.lambda;
        let dn_fired = matches!(self.cfg.direction, PhDirection::Down | PhDirection::Both)
            && ph_dn > self.cfg.lambda;
        if !up_fired && !dn_fired {
            return None;
        }
        let stat = match (up_fired, dn_fired) {
            (true, false) => ph_up,
            (false, true) => ph_dn,
            _ => ph_up.max(ph_dn),
        };
        let det = Detection {
            stat,
            threshold: self.cfg.lambda,
            mean_before: mean,
            mean_after: x,
        };
        self.reset();
        Some(det)
    }
}

/// ADWIN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdwinConfig {
    /// Confidence parameter `δ ∈ (0, 1)`: smaller is more conservative.
    pub delta: f64,
    /// Hard cap on retained samples (bounds memory and per-insert cost).
    pub max_window: usize,
    /// Minimum window size before any split is tested.
    pub min_window: usize,
}

impl Default for AdwinConfig {
    fn default() -> Self {
        AdwinConfig {
            delta: 0.02,
            max_window: 256,
            min_window: 16,
        }
    }
}

/// Streaming ADWIN-style detector over a capped adaptive window.
#[derive(Debug, Clone)]
pub struct Adwin {
    cfg: AdwinConfig,
    window: VecDeque<f64>,
}

impl Adwin {
    /// A fresh detector with the given parameters.
    pub fn new(cfg: AdwinConfig) -> Self {
        Adwin {
            cfg,
            window: VecDeque::new(),
        }
    }

    /// Samples currently retained.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Feed one sample; `Some` when a change point is found. The stale
    /// prefix is dropped (one sample at a time, retesting) until no
    /// split violates the bound; the returned stats come from the first
    /// violating split.
    pub fn push(&mut self, x: f64) -> Option<Detection> {
        self.window.push_back(x);
        if self.window.len() > self.cfg.max_window.max(2) {
            self.window.pop_front();
        }
        let mut first: Option<Detection> = None;
        while let Some(det) = find_cut(
            &self.window.iter().copied().collect::<Vec<_>>(),
            self.cfg.delta,
            self.cfg.min_window,
        ) {
            self.window.pop_front();
            first = first.or(Some(det));
        }
        first
    }
}

/// Test every split of `items` against the Hoeffding-style bound; the
/// first violating split (leftmost) is returned. Means are left-to-right
/// folds so the streaming and reference implementations agree bitwise.
fn find_cut(items: &[f64], delta: f64, min_window: usize) -> Option<Detection> {
    let n = items.len();
    if n < min_window.max(2) {
        return None;
    }
    for k in 1..n {
        let nl = k as f64;
        let nr = (n - k) as f64;
        let mu_l = items[..k].iter().fold(0.0, |a, &b| a + b) / nl;
        let mu_r = items[k..].iter().fold(0.0, |a, &b| a + b) / nr;
        let m = 1.0 / (1.0 / nl + 1.0 / nr);
        let eps = ((4.0 * n as f64 / delta).ln() / (2.0 * m)).sqrt();
        let diff = (mu_l - mu_r).abs();
        if diff > eps {
            return Some(Detection {
                stat: diff,
                threshold: eps,
                mean_before: mu_l,
                mean_after: mu_r,
            });
        }
    }
    None
}

pub mod reference {
    //! Brute-force reference implementations: replay the *entire* series
    //! from scratch at every step, recomputing all statistics naively.
    //! Obviously correct, quadratic (or worse), and used by proptests to
    //! pin the streaming detectors' behaviour exactly.

    use super::{AdwinConfig, Detection, PhConfig, PhDirection};

    /// Every (0-based sample index, detection) Page–Hinkley fires at on
    /// `xs`, restarting after each detection, with all statistics
    /// recomputed from the segment start each step.
    pub fn page_hinkley(xs: &[f64], cfg: &PhConfig) -> Vec<(usize, Detection)> {
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut t = 0usize;
        while t < xs.len() {
            // Recompute the whole segment's statistics up to t, naively.
            let seg = &xs[start..=t];
            let mut sum = 0.0f64;
            let mut m_up = 0.0f64;
            let mut min_up = 0.0f64;
            let mut m_dn = 0.0f64;
            let mut min_dn = 0.0f64;
            let mut fired: Option<Detection> = None;
            for (i, &x) in seg.iter().enumerate() {
                sum += x;
                let mean = sum / (i + 1) as f64;
                if i < cfg.warmup {
                    continue;
                }
                m_up += x - mean - cfg.delta;
                min_up = min_up.min(m_up);
                m_dn += mean - x - cfg.delta;
                min_dn = min_dn.min(m_dn);
                // Only the final step of the replay can be a *new* fire:
                // earlier fires would have reset the segment already.
                if i + 1 == seg.len() {
                    let ph_up = m_up - min_up;
                    let ph_dn = m_dn - min_dn;
                    let up = matches!(cfg.direction, PhDirection::Up | PhDirection::Both)
                        && ph_up > cfg.lambda;
                    let dn = matches!(cfg.direction, PhDirection::Down | PhDirection::Both)
                        && ph_dn > cfg.lambda;
                    if up || dn {
                        let stat = match (up, dn) {
                            (true, false) => ph_up,
                            (false, true) => ph_dn,
                            _ => ph_up.max(ph_dn),
                        };
                        fired = Some(Detection {
                            stat,
                            threshold: cfg.lambda,
                            mean_before: mean,
                            mean_after: x,
                        });
                    }
                }
            }
            if let Some(d) = fired {
                out.push((t, d));
                start = t + 1;
            }
            t += 1;
        }
        out
    }

    /// Every (0-based sample index, detection) the ADWIN-style detector
    /// fires at on `xs`, maintaining the window as a plain `Vec` and
    /// rescanning every split naively after each insert and each drop.
    pub fn adwin(xs: &[f64], cfg: &AdwinConfig) -> Vec<(usize, Detection)> {
        let mut out = Vec::new();
        let mut window: Vec<f64> = Vec::new();
        for (t, &x) in xs.iter().enumerate() {
            window.push(x);
            if window.len() > cfg.max_window.max(2) {
                window.remove(0);
            }
            let mut first: Option<Detection> = None;
            while let Some(det) = super::find_cut(&window, cfg.delta, cfg.min_window) {
                window.remove(0);
                first = first.or(Some(det));
            }
            if let Some(d) = first {
                out.push((t, d));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_hinkley_fires_on_upward_shift() {
        let mut ph = PageHinkley::new(PhConfig {
            delta: 0.01,
            lambda: 1.0,
            warmup: 10,
            direction: PhDirection::Up,
        });
        let mut fired_at = None;
        for t in 0..200 {
            let x = if t < 100 { 1.0 } else { 2.0 };
            if ph.push(x).is_some() && fired_at.is_none() {
                fired_at = Some(t);
            }
        }
        let at = fired_at.expect("a unit level shift must fire");
        assert!(at >= 100, "fired before the shift: {at}");
        assert!(at < 120, "fired too late: {at}");
    }

    #[test]
    fn page_hinkley_stays_quiet_on_constant_series() {
        let mut ph = PageHinkley::new(PhConfig::default());
        for _ in 0..1000 {
            assert_eq!(ph.push(3.5), None);
        }
    }

    #[test]
    fn page_hinkley_direction_down_ignores_up_shift() {
        let cfg = PhConfig {
            delta: 0.01,
            lambda: 1.0,
            warmup: 5,
            direction: PhDirection::Down,
        };
        let mut ph = PageHinkley::new(cfg);
        for t in 0..200 {
            let x = if t < 100 { 1.0 } else { 3.0 };
            assert_eq!(ph.push(x), None, "up-shift must not fire a Down detector");
        }
        let mut ph = PageHinkley::new(cfg);
        let mut fired = false;
        for t in 0..200 {
            let x = if t < 100 { 3.0 } else { 1.0 };
            fired |= ph.push(x).is_some();
        }
        assert!(fired, "down-shift must fire a Down detector");
    }

    #[test]
    fn adwin_fires_and_shrinks_on_shift() {
        let mut ad = Adwin::new(AdwinConfig {
            delta: 0.05,
            max_window: 128,
            min_window: 8,
        });
        let mut fired_at = None;
        for t in 0..160 {
            let x = if t < 80 { 0.0 } else { 5.0 };
            if ad.push(x).is_some() && fired_at.is_none() {
                fired_at = Some(t);
            }
        }
        let at = fired_at.expect("a large level shift must fire ADWIN");
        assert!((80..100).contains(&at), "fired at {at}");
        // After the shift settles the window holds mostly new-regime data.
        assert!(ad.window_len() < 120, "stale prefix was not dropped");
    }

    #[test]
    fn adwin_stays_quiet_on_constant_series() {
        let mut ad = Adwin::new(AdwinConfig::default());
        for _ in 0..500 {
            assert_eq!(ad.push(2.0), None);
        }
        assert_eq!(ad.window_len(), 256);
    }

    #[test]
    fn streaming_matches_reference_on_a_shifted_series() {
        // A deterministic wavy series with a level shift in the middle.
        let xs: Vec<f64> = (0..300)
            .map(|t| {
                let base = if t < 150 { 1.0 } else { 1.8 };
                base + 0.1 * ((t % 7) as f64 - 3.0)
            })
            .collect();
        let ph_cfg = PhConfig {
            delta: 0.02,
            lambda: 2.0,
            warmup: 8,
            direction: PhDirection::Both,
        };
        let mut ph = PageHinkley::new(ph_cfg);
        let got: Vec<(usize, Detection)> = xs
            .iter()
            .enumerate()
            .filter_map(|(t, &x)| ph.push(x).map(|d| (t, d)))
            .collect();
        assert_eq!(got, reference::page_hinkley(&xs, &ph_cfg));
        assert!(!got.is_empty(), "the shift must be detected");

        let ad_cfg = AdwinConfig {
            delta: 0.05,
            max_window: 64,
            min_window: 8,
        };
        let mut ad = Adwin::new(ad_cfg);
        let got: Vec<(usize, Detection)> = xs
            .iter()
            .enumerate()
            .filter_map(|(t, &x)| ad.push(x).map(|d| (t, d)))
            .collect();
        assert_eq!(got, reference::adwin(&xs, &ad_cfg));
        assert!(!got.is_empty(), "the shift must be detected");
    }
}
