//! Per-stream health: a three-state machine (Healthy → Degraded →
//! Critical) driven by declarative rules, with hysteresis and flap
//! suppression.
//!
//! Every batch the sentinel evaluates its rules and reduces them to a
//! *target severity* (the worst violated rule, or none). The machine
//! then applies:
//!
//! * **hysteresis** — escalation requires `trip_after` consecutive
//!   batches at (or above) the target severity; de-escalation requires
//!   `clear_after` consecutive batches strictly below the current level,
//!   and steps down one level at a time (Critical never snaps straight
//!   to Healthy);
//! * **flap suppression** — after any transition the state must dwell
//!   `min_dwell` batches before the next transition, so a series
//!   oscillating around a threshold cannot thrash the health signal
//!   (alerts still fire; only the *state* is damped).

use crate::series::SeriesId;
use serde::{Deserialize, Serialize};

/// The per-stream health level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthState {
    /// All rules quiet.
    Healthy,
    /// A Degraded-severity rule is tripping.
    Degraded,
    /// A Critical-severity rule is tripping.
    Critical,
}

impl HealthState {
    /// Stable lowercase name for exports and trace events.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }

    /// Numeric level for the `emd_sentinel_health` gauge (0/1/2).
    pub fn level(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Critical => 2,
        }
    }

    fn step_down(&self) -> HealthState {
        match self {
            HealthState::Critical => HealthState::Degraded,
            _ => HealthState::Healthy,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a violated rule is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Drives the machine toward [`HealthState::Degraded`].
    Degraded,
    /// Drives the machine toward [`HealthState::Critical`].
    Critical,
}

impl Severity {
    /// The health state this severity escalates toward.
    pub fn target_state(&self) -> HealthState {
        match self {
            Severity::Degraded => HealthState::Degraded,
            Severity::Critical => HealthState::Critical,
        }
    }
}

/// What a rule tests each batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Windowed mean of the series above this limit.
    Above(f64),
    /// Windowed mean of the series below this limit.
    Below(f64),
    /// A drift detector attached to the series fired this batch.
    Drift,
}

/// One declarative health rule: *if `series` satisfies `condition`,
/// press toward `severity`*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// The series the rule watches.
    pub series: SeriesId,
    /// The test applied each batch.
    pub condition: Condition,
    /// How hard a violation presses on the health state.
    pub severity: Severity,
}

impl Rule {
    /// `series mean > limit` → severity.
    pub fn above(series: SeriesId, limit: f64, severity: Severity) -> Self {
        Rule {
            series,
            condition: Condition::Above(limit),
            severity,
        }
    }

    /// `series mean < limit` → severity.
    pub fn below(series: SeriesId, limit: f64, severity: Severity) -> Self {
        Rule {
            series,
            condition: Condition::Below(limit),
            severity,
        }
    }

    /// `drift detected on series` → severity.
    pub fn drift(series: SeriesId, severity: Severity) -> Self {
        Rule {
            series,
            condition: Condition::Drift,
            severity,
        }
    }
}

/// The rule set plus the hysteresis / flap-suppression knobs.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Declarative rules evaluated every batch.
    pub rules: Vec<Rule>,
    /// Consecutive violating batches required to escalate.
    pub trip_after: u32,
    /// Consecutive clean batches required to step down one level.
    pub clear_after: u32,
    /// Minimum batches between transitions (flap suppression).
    pub min_dwell: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            rules: Vec::new(),
            trip_after: 2,
            clear_after: 8,
            min_dwell: 4,
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Batch sequence number the transition happened on.
    pub batch: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Human-readable cause (the rule that tripped, or "cleared").
    pub reason: String,
}

/// The state machine itself. Fed one *target severity* per batch (the
/// reduction of all rule evaluations); emits transitions.
#[derive(Debug, Clone)]
pub struct HealthMachine {
    state: HealthState,
    trip_after: u32,
    clear_after: u32,
    min_dwell: u32,
    /// Consecutive batches whose target ≥ the candidate escalation level.
    trip_streak: u32,
    /// The escalation level the streak is building toward.
    trip_target: Option<HealthState>,
    /// Consecutive batches strictly below the current level.
    clear_streak: u32,
    /// Batches since the last transition (saturating).
    dwell: u32,
}

impl HealthMachine {
    /// A machine starting Healthy under the given knobs.
    pub fn new(policy: &HealthPolicy) -> Self {
        HealthMachine {
            state: HealthState::Healthy,
            trip_after: policy.trip_after.max(1),
            clear_after: policy.clear_after.max(1),
            min_dwell: policy.min_dwell,
            trip_streak: 0,
            trip_target: None,
            clear_streak: 0,
            dwell: u32::MAX, // the initial state may transition immediately
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Advance one batch with the worst violated severity (`None` when
    /// all rules were quiet). Returns the transition taken, if any;
    /// `reason` describes the violated rule for escalations.
    pub fn tick(
        &mut self,
        batch: u64,
        target: Option<Severity>,
        reason: &str,
    ) -> Option<Transition> {
        self.dwell = self.dwell.saturating_add(1);
        let target_state = target.map(|s| s.target_state());

        // Track the escalation streak: consecutive batches whose target
        // is at or above some level higher than the current state.
        match target_state {
            Some(t) if t > self.state => {
                match self.trip_target {
                    // Keep building the streak at the lowest level seen,
                    // so an oscillating Degraded/Critical target still
                    // escalates (to the conservative lower level).
                    Some(prev) => {
                        self.trip_target = Some(prev.min(t));
                        self.trip_streak += 1;
                    }
                    None => {
                        self.trip_target = Some(t);
                        self.trip_streak = 1;
                    }
                }
            }
            _ => {
                self.trip_target = None;
                self.trip_streak = 0;
            }
        }

        // Track the clear streak: consecutive batches strictly below the
        // current state's level.
        if target_state.is_none_or(|t| t < self.state) && self.state != HealthState::Healthy {
            self.clear_streak += 1;
        } else {
            self.clear_streak = 0;
        }

        if self.dwell < self.min_dwell {
            return None;
        }

        if let Some(t) = self.trip_target {
            if self.trip_streak >= self.trip_after {
                return Some(self.transition(batch, t, reason));
            }
        }
        if self.clear_streak >= self.clear_after && self.state != HealthState::Healthy {
            let down = self.state.step_down();
            return Some(self.transition(batch, down, "cleared"));
        }
        None
    }

    fn transition(&mut self, batch: u64, to: HealthState, reason: &str) -> Transition {
        let t = Transition {
            batch,
            from: self.state,
            to,
            reason: reason.to_string(),
        };
        self.state = to;
        self.trip_streak = 0;
        self.trip_target = None;
        self.clear_streak = 0;
        self.dwell = 0;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(trip: u32, clear: u32, dwell: u32) -> HealthMachine {
        HealthMachine::new(&HealthPolicy {
            rules: Vec::new(),
            trip_after: trip,
            clear_after: clear,
            min_dwell: dwell,
        })
    }

    #[test]
    fn escalates_after_trip_streak() {
        let mut m = machine(3, 4, 0);
        assert_eq!(m.tick(1, Some(Severity::Degraded), "r"), None);
        assert_eq!(m.tick(2, Some(Severity::Degraded), "r"), None);
        let t = m
            .tick(3, Some(Severity::Degraded), "r")
            .expect("trips on 3rd");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Healthy, HealthState::Degraded)
        );
        assert_eq!(m.state(), HealthState::Degraded);
    }

    #[test]
    fn single_spike_does_not_trip() {
        let mut m = machine(2, 4, 0);
        assert_eq!(m.tick(1, Some(Severity::Critical), "r"), None);
        assert_eq!(m.tick(2, None, ""), None);
        assert_eq!(m.tick(3, Some(Severity::Critical), "r"), None);
        assert_eq!(m.state(), HealthState::Healthy);
    }

    #[test]
    fn clears_one_level_at_a_time() {
        let mut m = machine(1, 2, 0);
        m.tick(1, Some(Severity::Critical), "r").expect("escalate");
        assert_eq!(m.state(), HealthState::Critical);
        assert_eq!(m.tick(2, None, ""), None);
        let t = m.tick(3, None, "").expect("clears after 2");
        assert_eq!(t.to, HealthState::Degraded);
        assert_eq!(m.tick(4, None, ""), None);
        let t = m.tick(5, None, "").expect("clears again");
        assert_eq!(t.to, HealthState::Healthy);
    }

    #[test]
    fn min_dwell_suppresses_flapping() {
        let mut m = machine(1, 1, 3);
        m.tick(1, Some(Severity::Degraded), "r")
            .expect("first trip is free");
        // A clear signal arrives immediately, but the state must dwell.
        assert_eq!(m.tick(2, None, ""), None);
        assert_eq!(m.tick(3, None, ""), None);
        assert!(m.tick(4, None, "").is_some(), "dwell served, now clears");
    }

    #[test]
    fn oscillating_target_escalates_to_lower_level() {
        let mut m = machine(3, 4, 0);
        m.tick(1, Some(Severity::Critical), "r");
        m.tick(2, Some(Severity::Degraded), "r");
        let t = m.tick(3, Some(Severity::Critical), "r").expect("trips");
        assert_eq!(t.to, HealthState::Degraded, "conservative lower level");
    }

    #[test]
    fn degraded_target_while_critical_counts_toward_clear() {
        let mut m = machine(1, 2, 0);
        m.tick(1, Some(Severity::Critical), "r").expect("escalate");
        assert_eq!(m.tick(2, Some(Severity::Degraded), "r"), None);
        let t = m
            .tick(3, Some(Severity::Degraded), "r")
            .expect("steps down: target strictly below current");
        assert_eq!(t.to, HealthState::Degraded);
    }
}
