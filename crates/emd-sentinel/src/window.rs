//! Ring-buffered sliding-window aggregators for scalar time series.
//!
//! A [`SeriesWindow`] keeps the last `capacity` samples of one series and
//! answers windowed questions — mean, min/max, arbitrary quantiles — from
//! exactly those samples, unlike the cumulative histograms in `emd-obs`
//! which never forget. An [`Ewma`] tracks an exponentially weighted moving
//! average alongside, for a cheap smoothed "current level" that reacts
//! faster than the window mean.

/// A fixed-capacity ring buffer over `f64` samples with windowed
/// aggregate queries. Pushing beyond capacity overwrites the oldest
/// sample.
#[derive(Debug, Clone)]
pub struct SeriesWindow {
    buf: Vec<f64>,
    capacity: usize,
    /// Next write position when the ring is full.
    head: usize,
    /// Total samples ever pushed (saturating at `u64::MAX`).
    pushed: u64,
}

impl SeriesWindow {
    /// A window holding the most recent `capacity` samples
    /// (`capacity >= 1` is enforced).
    pub fn new(capacity: usize) -> Self {
        SeriesWindow {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            pushed: 0,
        }
    }

    /// Append one sample, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() < self.capacity {
            self.buf.push(x);
        } else {
            self.buf[self.head] = x;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed = self.pushed.saturating_add(1);
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the ring has wrapped at least once.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Total samples ever pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.capacity {
            self.buf.last().copied()
        } else {
            // `head` points at the oldest slot; the newest is just before.
            Some(self.buf[(self.head + self.capacity - 1) % self.capacity])
        }
    }

    /// Windowed arithmetic mean (`None` when empty). Summation is
    /// insertion-order independent here — only the sample *set* matters.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
        }
    }

    /// Smallest sample in the window.
    pub fn min(&self) -> Option<f64> {
        self.buf.iter().copied().reduce(f64::min)
    }

    /// Largest sample in the window.
    pub fn max(&self) -> Option<f64> {
        self.buf.iter().copied().reduce(f64::max)
    }

    /// Windowed quantile via nearest-rank on a sorted copy of the window
    /// (`q` clamped to `[0, 1]`; `None` when empty). Exact for the
    /// samples held — no bucketing error — at O(n log n) per call, which
    /// is fine at per-batch cadence over windows of tens of samples.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = q.clamp(0.0, 1.0);
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// The window contents oldest-first (allocates; used by exports and
    /// tests, not per-batch hot paths).
    pub fn iter_ordered(&self) -> Vec<f64> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

/// Exponentially weighted moving average: `v ← α·x + (1-α)·v`, seeded
/// with the first sample. Higher `α` reacts faster.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A new EWMA with smoothing factor `alpha ∈ (0, 1]` (clamped).
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// Fold one sample in and return the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(v);
        v
    }

    /// Current average (`None` before the first push).
    pub fn get(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest() {
        let mut w = SeriesWindow::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert_eq!(w.len(), 3);
        assert!(w.is_full());
        assert_eq!(w.pushed(), 5);
        assert_eq!(w.iter_ordered(), vec![3.0, 4.0, 5.0]);
        assert_eq!(w.last(), Some(5.0));
        assert_eq!(w.mean(), Some(4.0));
        assert_eq!(w.min(), Some(3.0));
        assert_eq!(w.max(), Some(5.0));
    }

    #[test]
    fn partial_window_aggregates() {
        let mut w = SeriesWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
        assert_eq!(w.quantile(0.5), None);
        w.push(2.0);
        w.push(6.0);
        assert_eq!(w.last(), Some(6.0));
        assert_eq!(w.mean(), Some(4.0));
        assert!(!w.is_full());
    }

    #[test]
    fn quantiles_are_exact_on_window_contents() {
        let mut w = SeriesWindow::new(5);
        for x in [9.0, 1.0, 5.0, 3.0, 7.0] {
            w.push(x);
        }
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.quantile(0.5), Some(5.0));
        assert_eq!(w.quantile(1.0), Some(9.0));
        // Push two more: window is now [5,3,7,2,8].
        w.push(2.0);
        w.push(8.0);
        assert_eq!(w.quantile(0.0), Some(2.0));
        assert_eq!(w.quantile(1.0), Some(8.0));
    }

    #[test]
    fn ewma_seeds_and_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        assert_eq!(e.push(4.0), 4.0);
        assert_eq!(e.push(8.0), 6.0);
        assert_eq!(e.push(6.0), 6.0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut w = SeriesWindow::new(0);
        w.push(1.0);
        w.push(2.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.last(), Some(2.0));
    }
}
