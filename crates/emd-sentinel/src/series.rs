//! The catalog of decision-quality series the sentinel tracks.
//!
//! Each series is one scalar per pipeline batch, derived from the batch's
//! [`crate::BatchObservation`] counts. Rates are normalized per sentence
//! so they are batch-size invariant; ratios are normalized by the number
//! of scored candidates. A series whose denominator is zero for a batch
//! simply contributes no sample that batch (rather than a misleading 0).

use serde::{Deserialize, Serialize};

/// Identifies one windowed time series. `name()` doubles as the metric /
/// export / rule-syntax name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeriesId {
    /// Wall-clock nanoseconds spent on the batch.
    BatchLatencyNs,
    /// Local-EMD spans ingested per sentence.
    LocalSpanRate,
    /// Candidate-occurrence mentions found by the scan, per sentence.
    MentionRate,
    /// Brand-new candidate phrases registered in the trie, per sentence
    /// (candidate churn).
    NewCandidateRate,
    /// Mean classifier score over the batch's scored candidates.
    ScoreMean,
    /// Fraction of scored candidates labelled Entity.
    AcceptRatio,
    /// Fraction of scored candidates labelled NonEntity.
    RejectRatio,
    /// Sentences quarantined per sentence processed.
    QuarantineRate,
    /// Candidates falling back to degraded (local-only) handling, per
    /// scored candidate.
    DegradedRate,
    /// Window evictions per sentence (eviction pressure).
    EvictionRate,
    /// Cold candidates pruned per sentence.
    PruneRate,
    /// Adjacent-fragment promotions per sentence (nonzero only on the
    /// closing observation emitted at finalize).
    PromotionRate,
    /// Sentences shed by the admission gate per sentence offered
    /// (overload pressure — feeds back into the guard runtime's
    /// breakers via Critical health transitions).
    ShedRate,
}

impl SeriesId {
    /// Every series, in catalog order.
    pub const ALL: [SeriesId; 13] = [
        SeriesId::BatchLatencyNs,
        SeriesId::LocalSpanRate,
        SeriesId::MentionRate,
        SeriesId::NewCandidateRate,
        SeriesId::ScoreMean,
        SeriesId::AcceptRatio,
        SeriesId::RejectRatio,
        SeriesId::QuarantineRate,
        SeriesId::DegradedRate,
        SeriesId::EvictionRate,
        SeriesId::PruneRate,
        SeriesId::PromotionRate,
        SeriesId::ShedRate,
    ];

    /// Stable snake_case name used in exports, trace events, and docs.
    pub fn name(&self) -> &'static str {
        match self {
            SeriesId::BatchLatencyNs => "batch_latency_ns",
            SeriesId::LocalSpanRate => "local_span_rate",
            SeriesId::MentionRate => "mention_rate",
            SeriesId::NewCandidateRate => "new_candidate_rate",
            SeriesId::ScoreMean => "score_mean",
            SeriesId::AcceptRatio => "accept_ratio",
            SeriesId::RejectRatio => "reject_ratio",
            SeriesId::QuarantineRate => "quarantine_rate",
            SeriesId::DegradedRate => "degraded_rate",
            SeriesId::EvictionRate => "eviction_rate",
            SeriesId::PruneRate => "prune_rate",
            SeriesId::PromotionRate => "promotion_rate",
            SeriesId::ShedRate => "shed_rate",
        }
    }
}

impl std::fmt::Display for SeriesId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_and_catalog_is_complete() {
        let names: HashSet<&str> = SeriesId::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SeriesId::ALL.len());
    }

    #[test]
    fn series_id_serde_round_trips() {
        for s in SeriesId::ALL {
            let json = serde_json::to_string(&s).unwrap();
            let back: SeriesId = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }
}
