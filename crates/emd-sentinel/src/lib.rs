//! # emd-sentinel
//!
//! Windowed quality telemetry, streaming drift detection, and per-stream
//! health for the EMD Globalizer pipeline — the "is this stream getting
//! worse *right now*?" layer that cumulative `emd-obs` counters and
//! after-the-fact `emd-trace` provenance cannot answer.
//!
//! Three pieces, layered:
//!
//! * **Windowed series** ([`window`], [`series`]) — every pipeline batch
//!   contributes one [`BatchObservation`] of raw counts, which derives a
//!   catalog of decision-quality series ([`SeriesId`]): promotion rate,
//!   classifier score mean, accept/reject ratios, quarantine + degraded
//!   fallback rates, candidate churn, eviction pressure, per-batch
//!   latency. Each series keeps a ring-buffered sliding window (mean,
//!   min/max, exact quantiles) plus an EWMA.
//! * **Change detectors** ([`detect`]) — Page–Hinkley and an ADWIN-style
//!   adaptive-window detector watch configured series and flag
//!   distribution shifts; both are proptest-pinned to brute-force
//!   reference implementations.
//! * **Health state machine** ([`health`]) — declarative threshold /
//!   drift rules reduce to a per-batch severity that drives a
//!   Healthy → Degraded → Critical machine with hysteresis and flap
//!   suppression.
//! * **SLO burn-rate engine** ([`slo`]) — declarative objectives ("p99
//!   batch latency < X", "quarantine ratio < Y") evaluated as
//!   multi-window burn rates (fast 5-batch confirmation / slow 60-batch
//!   significance) that press the health machine and surface as
//!   [`SloBurn`] events the pipeline mirrors into the trace.
//!
//! The [`Sentinel`] owns all three. It is deliberately *passive*: it
//! never touches pipeline state, so monitored and unmonitored runs are
//! bit-identical (proptest-enforced from the pipeline side), and it is
//! pure scalar math — no clocks, no I/O, no global state. Exports reuse
//! the `emd-obs` [`Snapshot`](emd_obs::Snapshot) type, so windowed
//! series ride the same Prometheus/JSON exporters as the cumulative
//! metrics.

pub mod detect;
pub mod health;
pub mod series;
pub mod slo;
pub mod window;

pub use detect::{Adwin, AdwinConfig, Detection, PageHinkley, PhConfig, PhDirection};
pub use health::{Condition, HealthMachine, HealthPolicy, HealthState, Rule, Severity, Transition};
pub use series::SeriesId;
pub use slo::{SloObjective, SloSpec, SloStatus};
pub use window::{Ewma, SeriesWindow};

use slo::SloTracker;

use serde::{Deserialize, Serialize};

/// Raw counts from one pipeline batch (or the closing finalize pass).
/// All fields are plain accumulators the pipeline increments in its
/// sequential apply sections; the sentinel derives per-sentence rates
/// and ratios from them (see [`SeriesId`] for the normalization rules).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchObservation {
    /// Causal batch sequence number (finalize reuses the last batch's).
    pub batch: u64,
    /// Sentences processed this batch.
    pub sentences: u64,
    /// Local-EMD spans ingested.
    pub local_spans: u64,
    /// Brand-new candidate phrases registered in the trie.
    pub trie_inserts: u64,
    /// Candidate-occurrence mentions found by the scan.
    pub scan_mentions: u64,
    /// Mentions pooled into candidate embeddings.
    pub pooled: u64,
    /// Candidates scored by the entity classifier.
    pub scored: u64,
    /// Scored candidates labelled Entity.
    pub accepted: u64,
    /// Scored candidates labelled NonEntity.
    pub rejected: u64,
    /// Scored candidates labelled Ambiguous.
    pub ambiguous: u64,
    /// Sum of classifier scores over scored candidates.
    pub score_sum: f64,
    /// Sentences quarantined.
    pub quarantined: u64,
    /// Candidates that fell back to degraded (local-only) handling.
    pub degraded: u64,
    /// Sentences evicted by window enforcement.
    pub evicted: u64,
    /// Cold candidates pruned.
    pub pruned: u64,
    /// Adjacent-fragment promotions (finalize only).
    pub promoted: u64,
    /// Sentences shed by the admission gate before this batch ran
    /// (overload pressure; zero in unguarded runs).
    pub shed: u64,
    /// Wall-clock nanoseconds spent on the batch.
    pub latency_ns: u64,
}

impl BatchObservation {
    /// Derive the series samples this observation contributes. Series
    /// whose denominator is zero contribute nothing (no misleading 0s).
    pub fn samples(&self) -> Vec<(SeriesId, f64)> {
        let mut out = Vec::with_capacity(SeriesId::ALL.len());
        if self.sentences == 0 {
            return out;
        }
        let n = self.sentences as f64;
        out.push((SeriesId::BatchLatencyNs, self.latency_ns as f64));
        out.push((SeriesId::LocalSpanRate, self.local_spans as f64 / n));
        out.push((SeriesId::MentionRate, self.scan_mentions as f64 / n));
        out.push((SeriesId::NewCandidateRate, self.trie_inserts as f64 / n));
        out.push((SeriesId::QuarantineRate, self.quarantined as f64 / n));
        out.push((SeriesId::EvictionRate, self.evicted as f64 / n));
        out.push((SeriesId::PruneRate, self.pruned as f64 / n));
        out.push((SeriesId::PromotionRate, self.promoted as f64 / n));
        out.push((SeriesId::ShedRate, self.shed as f64 / n));
        if self.scored > 0 {
            let s = self.scored as f64;
            out.push((SeriesId::ScoreMean, self.score_sum / s));
            out.push((SeriesId::AcceptRatio, self.accepted as f64 / s));
            out.push((SeriesId::RejectRatio, self.rejected as f64 / s));
            out.push((SeriesId::DegradedRate, self.degraded as f64 / s));
        }
        out
    }
}

/// A change detector attached to one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// Page–Hinkley with the given parameters.
    PageHinkley(PhConfig),
    /// ADWIN-style adaptive window with the given parameters.
    Adwin(AdwinConfig),
}

/// Binds a [`DetectorKind`] to the [`SeriesId`] it watches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorSpec {
    /// The series fed to the detector.
    pub series: SeriesId,
    /// The detector and its parameters.
    pub detector: DetectorKind,
}

/// Sentinel construction parameters.
#[derive(Debug, Clone)]
pub struct SentinelConfig {
    /// Sliding-window capacity per series (batches).
    pub window: usize,
    /// EWMA smoothing factor.
    pub ewma_alpha: f64,
    /// Batches a drift detection keeps its rule "pressed" after firing.
    /// Detections are impulsive (the detector resets), but escalation
    /// needs `trip_after` consecutive pressure — the hold bridges the
    /// two. Must be ≥ `policy.trip_after` for drift rules to escalate.
    pub drift_hold: u32,
    /// Change detectors to run.
    pub detectors: Vec<DetectorSpec>,
    /// Health rules + hysteresis knobs.
    pub policy: HealthPolicy,
    /// Declarative SLOs evaluated as multi-window burn rates (see
    /// [`slo`]). Firing SLOs press their severity into the health
    /// machine alongside the rules.
    pub slos: Vec<SloSpec>,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            window: 64,
            ewma_alpha: 0.3,
            drift_hold: 4,
            detectors: vec![
                DetectorSpec {
                    series: SeriesId::ScoreMean,
                    detector: DetectorKind::PageHinkley(PhConfig {
                        delta: 0.01,
                        lambda: 0.5,
                        warmup: 16,
                        direction: PhDirection::Both,
                    }),
                },
                DetectorSpec {
                    series: SeriesId::NewCandidateRate,
                    detector: DetectorKind::Adwin(AdwinConfig::default()),
                },
            ],
            policy: HealthPolicy {
                rules: vec![
                    Rule::drift(SeriesId::ScoreMean, Severity::Degraded),
                    Rule::drift(SeriesId::NewCandidateRate, Severity::Degraded),
                    Rule::above(SeriesId::QuarantineRate, 0.5, Severity::Critical),
                ],
                ..HealthPolicy::default()
            },
            slos: Vec::new(),
        }
    }
}

/// Why an alert fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// A change detector fired.
    Drift,
    /// A threshold rule's windowed mean rose above its limit.
    Above,
    /// A threshold rule's windowed mean fell below its limit.
    Below,
    /// An SLO's fast and slow burn rates both crossed the threshold.
    SloBurn,
}

/// One alert raised by the sentinel. Drift alerts fire on every
/// detection; threshold alerts fire only on the violation's rising edge
/// (so a sustained breach is one alert, not one per batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Batch sequence number the alert fired on.
    pub batch: u64,
    /// The offending series.
    pub series: SeriesId,
    /// Severity the alert presses toward.
    pub severity: Severity,
    /// Drift / Above / Below.
    pub kind: AlertKind,
    /// Observed statistic (detector stat, or the windowed mean).
    pub value: f64,
    /// Threshold it crossed (detector threshold, or the rule limit).
    pub threshold: f64,
    /// Human-readable window stats / rule description.
    pub detail: String,
}

/// One batch of a firing SLO: both burn rates are at or above the
/// spec's threshold. Emitted for *every* firing batch (not just the
/// rising edge) so the trace mirror reconstructs the full burn interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloBurn {
    /// Batch sequence number.
    pub batch: u64,
    /// The SLO's name.
    pub name: String,
    /// Burn rate over the fast window.
    pub burn_fast: f64,
    /// Burn rate over the slow window.
    pub burn_slow: f64,
    /// The threshold both rates crossed.
    pub threshold: f64,
    /// Severity pressed into the health machine.
    pub severity: Severity,
}

/// What one [`Sentinel::observe`] call produced.
#[derive(Debug, Clone, Default)]
pub struct Observed {
    /// Alerts raised this batch (drift + threshold/SLO rising edges).
    pub alerts: Vec<Alert>,
    /// Health transition taken this batch, if any.
    pub transition: Option<Transition>,
    /// SLOs firing this batch (one entry per firing SLO, every batch).
    pub slo_burns: Vec<SloBurn>,
}

/// End-of-run health summary (surfaced on `RunReport::health`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Final health state.
    pub state: HealthState,
    /// Observations folded in.
    pub batches: u64,
    /// Total alerts raised.
    pub alerts_total: u64,
    /// Total drift detections.
    pub drift_total: u64,
    /// Total firing SLO batch-events (see [`SloBurn`]).
    pub slo_burn_total: u64,
    /// Every state change, in order.
    pub transitions: Vec<Transition>,
}

enum DetectorImpl {
    Ph(PageHinkley),
    Adwin(Adwin),
}

impl DetectorImpl {
    fn push(&mut self, x: f64) -> Option<Detection> {
        match self {
            DetectorImpl::Ph(d) => d.push(x),
            DetectorImpl::Adwin(d) => d.push(x),
        }
    }
}

/// The live monitor for one stream: windowed series + detectors + health
/// machine. Feed it one [`BatchObservation`] per batch via
/// [`observe`](Sentinel::observe); read the verdict from
/// [`report`](Sentinel::report) or export windowed series with
/// [`snapshot`](Sentinel::snapshot).
pub struct Sentinel {
    window_cap: usize,
    ewma_alpha: f64,
    drift_hold: u32,
    windows: Vec<SeriesWindow>,
    ewmas: Vec<Ewma>,
    detectors: Vec<(SeriesId, DetectorImpl)>,
    rules: Vec<Rule>,
    rule_violated: Vec<bool>,
    /// Remaining "pressed" batches per series after a drift detection.
    drift_pressed: Vec<u32>,
    machine: HealthMachine,
    slo_trackers: Vec<SloTracker>,
    slo_burned: Vec<bool>,
    batches: u64,
    alerts_total: u64,
    drift_total: u64,
    slo_burn_total: u64,
    transitions: Vec<Transition>,
}

impl Sentinel {
    /// Build a sentinel from its config.
    pub fn new(cfg: SentinelConfig) -> Self {
        let detectors = cfg
            .detectors
            .iter()
            .map(|spec| {
                let imp = match spec.detector {
                    DetectorKind::PageHinkley(c) => DetectorImpl::Ph(PageHinkley::new(c)),
                    DetectorKind::Adwin(c) => DetectorImpl::Adwin(Adwin::new(c)),
                };
                (spec.series, imp)
            })
            .collect();
        Sentinel {
            window_cap: cfg.window.max(1),
            ewma_alpha: cfg.ewma_alpha,
            drift_hold: cfg.drift_hold.max(1),
            drift_pressed: vec![0; SeriesId::ALL.len()],
            windows: SeriesId::ALL
                .iter()
                .map(|_| SeriesWindow::new(cfg.window.max(1)))
                .collect(),
            ewmas: SeriesId::ALL
                .iter()
                .map(|_| Ewma::new(cfg.ewma_alpha))
                .collect(),
            detectors,
            rule_violated: vec![false; cfg.policy.rules.len()],
            machine: HealthMachine::new(&cfg.policy),
            rules: cfg.policy.rules.clone(),
            slo_burned: vec![false; cfg.slos.len()],
            slo_trackers: cfg.slos.into_iter().map(SloTracker::new).collect(),
            batches: 0,
            alerts_total: 0,
            drift_total: 0,
            slo_burn_total: 0,
            transitions: Vec::new(),
        }
    }

    /// A sentinel with the default catalog, detectors, and policy.
    pub fn with_defaults() -> Self {
        Sentinel::new(SentinelConfig::default())
    }

    fn idx(series: SeriesId) -> usize {
        SeriesId::ALL
            .iter()
            .position(|s| *s == series)
            .expect("SeriesId::ALL is complete")
    }

    /// Fold one batch in: update windows/EWMAs, run detectors, evaluate
    /// rules, advance the health machine. Pure scalar math — safe to
    /// call from a pipeline hot loop at batch cadence.
    pub fn observe(&mut self, obs: &BatchObservation) -> Observed {
        self.batches += 1;
        let samples = obs.samples();
        for &(series, x) in &samples {
            let i = Self::idx(series);
            self.windows[i].push(x);
            self.ewmas[i].push(x);
        }

        // Detectors see only series that produced a sample this batch.
        let mut detections: Vec<(SeriesId, Detection)> = Vec::new();
        for (series, det) in &mut self.detectors {
            if let Some(&(_, x)) = samples.iter().find(|(s, _)| s == series) {
                if let Some(d) = det.push(x) {
                    self.drift_pressed[Self::idx(*series)] = self.drift_hold;
                    detections.push((*series, d));
                }
            }
        }

        let mut alerts: Vec<Alert> = Vec::new();
        let mut target: Option<Severity> = None;
        let mut reason = String::new();

        for (ri, rule) in self.rules.iter().enumerate() {
            let mean = self.windows[Self::idx(rule.series)].mean();
            let (violated, value, threshold, kind) = match rule.condition {
                Condition::Above(limit) => {
                    let v = mean.unwrap_or(0.0);
                    (mean.is_some() && v > limit, v, limit, AlertKind::Above)
                }
                Condition::Below(limit) => {
                    let v = mean.unwrap_or(0.0);
                    (mean.is_some() && v < limit, v, limit, AlertKind::Below)
                }
                Condition::Drift => {
                    let hit = detections.iter().find(|(s, _)| *s == rule.series);
                    match hit {
                        Some((_, d)) => (true, d.stat, d.threshold, AlertKind::Drift),
                        // A recent detection keeps pressing for
                        // `drift_hold` batches so hysteresis can trip.
                        None => (
                            self.drift_pressed[Self::idx(rule.series)] > 0,
                            0.0,
                            0.0,
                            AlertKind::Drift,
                        ),
                    }
                }
            };
            if violated {
                if target.is_none_or(|t| rule.severity > t) {
                    target = Some(rule.severity);
                    reason = format!("{}:{}", kind_name(kind), rule.series.name());
                }
                // Threshold alerts only on the rising edge; drift alerts
                // are handled uniformly below (one per detection).
                if kind != AlertKind::Drift && !self.rule_violated[ri] {
                    alerts.push(Alert {
                        batch: obs.batch,
                        series: rule.series,
                        severity: rule.severity,
                        kind,
                        value,
                        threshold,
                        detail: format!(
                            "window mean {value:.4} crossed limit {threshold:.4} (n={})",
                            self.windows[Self::idx(rule.series)].len()
                        ),
                    });
                }
                self.rule_violated[ri] = true;
            } else {
                self.rule_violated[ri] = false;
            }
        }

        // SLO burn rates: a firing SLO presses its severity exactly like
        // a violated rule, reports one SloBurn per firing batch, and
        // raises a rising-edge alert.
        let mut slo_burns: Vec<SloBurn> = Vec::new();
        for (si, tracker) in self.slo_trackers.iter_mut().enumerate() {
            let status = tracker.observe(obs, &samples);
            if status.firing {
                let spec = &tracker.spec;
                if target.is_none_or(|t| spec.severity > t) {
                    target = Some(spec.severity);
                    reason = format!("slo:{}", spec.name);
                }
                slo_burns.push(SloBurn {
                    batch: obs.batch,
                    name: spec.name.clone(),
                    burn_fast: status.burn_fast,
                    burn_slow: status.burn_slow,
                    threshold: spec.burn_threshold,
                    severity: spec.severity,
                });
                if !self.slo_burned[si] {
                    alerts.push(Alert {
                        batch: obs.batch,
                        series: spec.series(),
                        severity: spec.severity,
                        kind: AlertKind::SloBurn,
                        value: status.burn_fast,
                        threshold: spec.burn_threshold,
                        detail: format!(
                            "slo {}: fast burn {:.1}x / slow burn {:.1}x >= {:.1}x of budget {:.4}",
                            spec.name,
                            status.burn_fast,
                            status.burn_slow,
                            spec.burn_threshold,
                            spec.budget
                        ),
                    });
                }
                self.slo_burned[si] = true;
            } else {
                self.slo_burned[si] = false;
            }
        }
        self.slo_burn_total += slo_burns.len() as u64;

        // Every drift detection is an alert, whether or not a rule
        // routes it into the health machine.
        for (series, d) in &detections {
            let severity = self
                .rules
                .iter()
                .find(|r| r.condition == Condition::Drift && r.series == *series)
                .map(|r| r.severity)
                .unwrap_or(Severity::Degraded);
            alerts.push(Alert {
                batch: obs.batch,
                series: *series,
                severity,
                kind: AlertKind::Drift,
                value: d.stat,
                threshold: d.threshold,
                detail: format!(
                    "stat {:.4} > {:.4}; mean {:.4} -> {:.4}",
                    d.stat, d.threshold, d.mean_before, d.mean_after
                ),
            });
        }

        let transition = self.machine.tick(obs.batch, target, &reason);
        for pressed in &mut self.drift_pressed {
            *pressed = pressed.saturating_sub(1);
        }
        self.drift_total += detections.len() as u64;
        self.alerts_total += alerts.len() as u64;
        if let Some(t) = &transition {
            self.transitions.push(t.clone());
        }
        Observed {
            alerts,
            transition,
            slo_burns,
        }
    }

    /// Current health state.
    pub fn health(&self) -> HealthState {
        self.machine.state()
    }

    /// End-of-run summary for `RunReport::health`.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            state: self.machine.state(),
            batches: self.batches,
            alerts_total: self.alerts_total,
            drift_total: self.drift_total,
            slo_burn_total: self.slo_burn_total,
            transitions: self.transitions.clone(),
        }
    }

    /// Live burn-rate status of every configured SLO, in config order.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        self.slo_trackers.iter().map(|t| t.status()).collect()
    }

    /// The sliding window behind one series (for tests and dashboards).
    pub fn series_window(&self, series: SeriesId) -> &SeriesWindow {
        &self.windows[Self::idx(series)]
    }

    /// Current EWMA of one series.
    pub fn ewma(&self, series: SeriesId) -> Option<f64> {
        self.ewmas[Self::idx(series)].get()
    }

    /// Ring capacity per series.
    pub fn window_capacity(&self) -> usize {
        self.window_cap
    }

    /// EWMA smoothing factor in use.
    pub fn ewma_alpha(&self) -> f64 {
        self.ewma_alpha
    }

    /// Export the windowed state as an `emd-obs` snapshot: per-series
    /// `emd_sentinel_<series>_{last,mean,ewma,p90}` gauges, the health
    /// level gauge, and the alert/drift/transition counters — so the
    /// sentinel rides the existing Prometheus/JSON exporters.
    pub fn snapshot(&self) -> emd_obs::Snapshot {
        let mut snap = emd_obs::Snapshot::default();
        snap.counters.push(emd_obs::CounterSnapshot {
            name: "emd_sentinel_alerts_total".into(),
            value: self.alerts_total,
        });
        snap.counters.push(emd_obs::CounterSnapshot {
            name: "emd_sentinel_drift_total".into(),
            value: self.drift_total,
        });
        snap.counters.push(emd_obs::CounterSnapshot {
            name: "emd_sentinel_transitions_total".into(),
            value: self.transitions.len() as u64,
        });
        snap.counters.push(emd_obs::CounterSnapshot {
            name: "emd_sentinel_slo_burn_total".into(),
            value: self.slo_burn_total,
        });
        snap.gauges.push(emd_obs::GaugeSnapshot {
            name: "emd_sentinel_health".into(),
            value: self.machine.state().level() as f64,
        });
        for t in &self.slo_trackers {
            let s = t.status();
            let base = format!("emd_sentinel_slo_{}", s.name);
            for (suffix, value) in [
                ("burn_fast", s.burn_fast),
                ("burn_slow", s.burn_slow),
                ("firing", if s.firing { 1.0 } else { 0.0 }),
            ] {
                snap.gauges.push(emd_obs::GaugeSnapshot {
                    name: format!("{base}_{suffix}"),
                    value,
                });
            }
        }
        for (i, series) in SeriesId::ALL.iter().enumerate() {
            let w = &self.windows[i];
            if w.is_empty() {
                continue;
            }
            let base = format!("emd_sentinel_{}", series.name());
            for (suffix, value) in [
                ("last", w.last()),
                ("mean", w.mean()),
                ("ewma", self.ewmas[i].get()),
                ("p90", w.quantile(0.9)),
            ] {
                if let Some(v) = value {
                    snap.gauges.push(emd_obs::GaugeSnapshot {
                        name: format!("{base}_{suffix}"),
                        value: v,
                    });
                }
            }
        }
        snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

fn kind_name(kind: AlertKind) -> &'static str {
    match kind {
        AlertKind::Drift => "drift",
        AlertKind::Above => "above",
        AlertKind::Below => "below",
        AlertKind::SloBurn => "slo_burn",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(batch: u64, sentences: u64, scored: u64, score_sum: f64) -> BatchObservation {
        BatchObservation {
            batch,
            sentences,
            scored,
            score_sum,
            accepted: scored / 2,
            rejected: scored - scored / 2,
            ..Default::default()
        }
    }

    #[test]
    fn samples_skip_zero_denominators() {
        let o = BatchObservation {
            batch: 1,
            sentences: 10,
            ..Default::default()
        };
        let s = o.samples();
        assert!(s.iter().any(|(id, _)| *id == SeriesId::MentionRate));
        assert!(
            !s.iter().any(|(id, _)| *id == SeriesId::ScoreMean),
            "score_mean must not report 0 when nothing was scored"
        );
        assert!(BatchObservation::default().samples().is_empty());
    }

    #[test]
    fn stationary_stream_raises_no_alerts() {
        let mut s = Sentinel::with_defaults();
        for b in 1..=200 {
            let got = s.observe(&obs(b, 50, 20, 10.0));
            assert!(got.alerts.is_empty(), "batch {b}: {:?}", got.alerts);
            assert_eq!(got.transition, None);
        }
        assert_eq!(s.health(), HealthState::Healthy);
        assert_eq!(s.report().alerts_total, 0);
    }

    #[test]
    fn score_shift_fires_drift_and_degrades() {
        let mut s = Sentinel::with_defaults();
        let mut fired_at = None;
        for b in 1..=200 {
            // Score mean collapses from 0.5 to 0.1 at batch 100.
            let sum = if b < 100 { 10.0 } else { 2.0 };
            let got = s.observe(&obs(b, 50, 20, sum));
            if fired_at.is_none() && got.alerts.iter().any(|a| a.kind == AlertKind::Drift) {
                fired_at = Some(b);
            }
        }
        let at = fired_at.expect("score collapse must fire drift");
        assert!((100..130).contains(&at), "fired at {at}");
        let rep = s.report();
        assert!(rep.drift_total >= 1);
        // The drift tripped the machine to Degraded; once the new regime
        // settles (detector reset, no further pressure) the machine
        // clears back to Healthy — drift is transient by design.
        assert_eq!(
            rep.transitions.first().map(|t| t.to),
            Some(HealthState::Degraded)
        );
        assert_eq!(s.health(), HealthState::Healthy);
    }

    #[test]
    fn threshold_alerts_fire_on_rising_edge_only() {
        let mut s = Sentinel::new(SentinelConfig {
            window: 4,
            detectors: Vec::new(),
            policy: HealthPolicy {
                rules: vec![Rule::above(
                    SeriesId::QuarantineRate,
                    0.3,
                    Severity::Critical,
                )],
                trip_after: 2,
                clear_after: 2,
                min_dwell: 0,
            },
            ..SentinelConfig::default()
        });
        let mut alerts = 0;
        for b in 1..=10 {
            let o = BatchObservation {
                batch: b,
                sentences: 10,
                quarantined: 8,
                ..Default::default()
            };
            alerts += s.observe(&o).alerts.len();
        }
        assert_eq!(alerts, 1, "sustained breach is one alert, not ten");
        assert_eq!(s.health(), HealthState::Critical);
    }

    #[test]
    fn snapshot_exports_series_and_health() {
        let mut s = Sentinel::with_defaults();
        for b in 1..=20 {
            s.observe(&obs(b, 50, 20, 10.0));
        }
        let snap = s.snapshot();
        assert_eq!(snap.counter("emd_sentinel_alerts_total"), Some(0));
        assert_eq!(snap.gauge("emd_sentinel_health"), Some(0.0));
        let mean = snap.gauge("emd_sentinel_score_mean_mean").unwrap();
        assert!((mean - 0.5).abs() < 1e-9);
        // Exports ride the existing exporters.
        let prom = snap.to_prometheus();
        assert!(prom.contains("emd_sentinel_score_mean_mean"));
        let back = emd_obs::Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // Sorted, as the Snapshot contract requires.
        let names: Vec<_> = snap.gauges.iter().map(|g| g.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn slo_burn_presses_health_and_reports_every_firing_batch() {
        let mut s = Sentinel::new(SentinelConfig {
            detectors: Vec::new(),
            slos: vec![slo::SloSpec::p99_latency_below("batch_latency", 1_000_000)],
            policy: HealthPolicy {
                rules: Vec::new(),
                trip_after: 2,
                clear_after: 8,
                min_dwell: 0,
            },
            ..SentinelConfig::default()
        });
        let mut o = obs(0, 50, 20, 10.0);
        for b in 1..=30 {
            o.batch = b;
            o.latency_ns = 100_000;
            let got = s.observe(&o);
            assert!(got.slo_burns.is_empty(), "batch {b}");
        }
        let mut slo_alerts = 0;
        let mut burn_batches = 0;
        for b in 31..=60 {
            o.batch = b;
            o.latency_ns = 50_000_000;
            let got = s.observe(&o);
            burn_batches += got.slo_burns.len();
            slo_alerts += got
                .alerts
                .iter()
                .filter(|a| a.kind == AlertKind::SloBurn)
                .count();
        }
        assert_eq!(slo_alerts, 1, "sustained burn is one rising-edge alert");
        assert!(
            burn_batches >= 20,
            "every firing batch reports: {burn_batches}"
        );
        assert_eq!(s.health(), HealthState::Critical, "slo pressed the machine");
        assert_eq!(s.report().slo_burn_total, burn_batches as u64);
        let snap = s.snapshot();
        assert_eq!(
            snap.counter("emd_sentinel_slo_burn_total"),
            Some(burn_batches as u64)
        );
        assert_eq!(
            snap.gauge("emd_sentinel_slo_batch_latency_firing"),
            Some(1.0)
        );
    }

    #[test]
    fn report_counts_batches_and_transitions() {
        let mut s = Sentinel::with_defaults();
        for b in 1..=5 {
            s.observe(&obs(b, 10, 4, 2.0));
        }
        let rep = s.report();
        assert_eq!(rep.batches, 5);
        assert_eq!(rep.state, HealthState::Healthy);
        assert!(rep.transitions.is_empty());
        let back: HealthReport =
            serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(back, rep);
    }
}
