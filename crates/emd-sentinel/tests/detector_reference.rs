//! Proptests pinning the streaming change detectors to their brute-force
//! reference implementations: on random series (noise, and noise with an
//! injected level shift), the streaming `PageHinkley` / `Adwin` structs
//! must fire at exactly the same sample indices with bit-identical
//! statistics as the naive full-replay references.

use emd_sentinel::detect::{
    reference, Adwin, AdwinConfig, Detection, PageHinkley, PhConfig, PhDirection,
};
use proptest::prelude::*;

/// Run the streaming detector over `xs`, collecting (index, detection).
fn stream_ph(xs: &[f64], cfg: PhConfig) -> Vec<(usize, Detection)> {
    let mut ph = PageHinkley::new(cfg);
    xs.iter()
        .enumerate()
        .filter_map(|(t, &x)| ph.push(x).map(|d| (t, d)))
        .collect()
}

fn stream_adwin(xs: &[f64], cfg: AdwinConfig) -> Vec<(usize, Detection)> {
    let mut ad = Adwin::new(cfg);
    xs.iter()
        .enumerate()
        .filter_map(|(t, &x)| ad.push(x).map(|d| (t, d)))
        .collect()
}

/// Superimpose a level shift of `jump` starting at fraction `at` of the
/// series, so the generators cover both quiet and firing regimes.
fn with_shift(mut xs: Vec<f64>, at: f64, jump: f64) -> Vec<f64> {
    let onset = ((xs.len() as f64) * at) as usize;
    for x in xs.iter_mut().skip(onset) {
        *x += jump;
    }
    xs
}

proptest! {
    #[test]
    fn page_hinkley_matches_reference(
        xs in proptest::collection::vec(0.0f64..1.0, 20..250),
        at in 0.2f64..0.9,
        jump in -3.0f64..3.0,
        lambda in 0.2f64..2.0,
        warmup in 0usize..16,
    ) {
        let xs = with_shift(xs, at, jump);
        for direction in [PhDirection::Up, PhDirection::Down, PhDirection::Both] {
            let cfg = PhConfig { delta: 0.01, lambda, warmup, direction };
            prop_assert_eq!(stream_ph(&xs, cfg), reference::page_hinkley(&xs, &cfg));
        }
    }

    #[test]
    fn adwin_matches_reference(
        xs in proptest::collection::vec(0.0f64..1.0, 20..200),
        at in 0.2f64..0.9,
        jump in -4.0f64..4.0,
        delta in 0.01f64..0.3,
        max_window in 16usize..96,
        min_window in 4usize..24,
    ) {
        let xs = with_shift(xs, at, jump);
        let cfg = AdwinConfig { delta, max_window, min_window };
        prop_assert_eq!(stream_adwin(&xs, cfg), reference::adwin(&xs, &cfg));
    }

    #[test]
    fn detectors_fire_on_large_shifts_and_not_on_tiny_noise(
        seed_noise in proptest::collection::vec(-0.02f64..0.02, 120..180),
    ) {
        // Quiet: pure small noise around a constant level.
        let quiet: Vec<f64> = seed_noise.iter().map(|n| 0.5 + n).collect();
        let ph_cfg = PhConfig { delta: 0.05, lambda: 1.5, warmup: 10, direction: PhDirection::Both };
        prop_assert!(stream_ph(&quiet, ph_cfg).is_empty(), "PH fired on tiny noise");
        let ad_cfg = AdwinConfig { delta: 0.01, max_window: 128, min_window: 16 };
        prop_assert!(stream_adwin(&quiet, ad_cfg).is_empty(), "ADWIN fired on tiny noise");

        // Loud: the same noise with a big mid-series jump.
        let loud = with_shift(quiet.clone(), 0.5, 4.0);
        prop_assert!(!stream_ph(&loud, ph_cfg).is_empty(), "PH missed a 4.0 jump");
        prop_assert!(!stream_adwin(&loud, ad_cfg).is_empty(), "ADWIN missed a 4.0 jump");
    }
}
