//! Input validation at the Local EMD trust boundary.
//!
//! Third-party local systems are black boxes: they may emit spans past
//! the end of the sentence, overlapping spans, empty or absurdly long
//! tokens, or NaN embedding values. The pipeline validates once at ingest
//! (see the [`LocalEmd` contract](../../emd-core/src/local.rs)) and either
//! repairs (spans) or quarantines (tokens, embeddings) instead of letting
//! the damage propagate into shared state.

use emd_text::token::{Sentence, Span};

/// Upper bound on a single token's byte length. Twitter messages are
/// capped at 280 *characters*; a multi-kilobyte "token" is corrupt input
/// (or an adversarial payload) and quarantining the sentence is safer
/// than letting it into the trie and the inverted index.
pub const MAX_TOKEN_BYTES: usize = 512;

/// Validate sentence shape: every token non-empty and within
/// [`MAX_TOKEN_BYTES`]. Empty sentences are fine (they simply contain
/// nothing to match).
pub fn validate_sentence(sentence: &Sentence) -> Result<(), String> {
    for (i, tok) in sentence.tokens.iter().enumerate() {
        if tok.text.is_empty() {
            return Err(format!("token {i} is empty"));
        }
        if tok.text.len() > MAX_TOKEN_BYTES {
            return Err(format!(
                "token {i} is {} bytes (max {MAX_TOKEN_BYTES})",
                tok.text.len()
            ));
        }
    }
    Ok(())
}

/// Repair a local system's span list: drop empty and out-of-bounds spans,
/// sort by position, and drop any span overlapping an earlier (kept) one.
/// The result is sorted, non-overlapping, and fully in-bounds — the
/// invariants the rest of the pipeline assumes of `local_spans`.
pub fn sanitize_spans(spans: Vec<Span>, n_tokens: usize) -> Vec<Span> {
    let mut kept: Vec<Span> = spans
        .into_iter()
        .filter(|sp| sp.start < sp.end && sp.end <= n_tokens)
        .collect();
    kept.sort();
    let mut out: Vec<Span> = Vec::with_capacity(kept.len());
    for sp in kept {
        if out.last().is_none_or(|prev| prev.end <= sp.start) {
            out.push(sp);
        }
    }
    out
}

/// True when every value is finite (no NaN, no ±∞). NaN embeddings would
/// poison every pooled sum they are added to — one corrupt mention would
/// silently destroy its candidate's global embedding for the whole run.
pub fn all_finite(values: &[f32]) -> bool {
    values.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::{SentenceId, Token};

    fn sent(words: &[&str]) -> Sentence {
        Sentence::from_tokens(SentenceId::new(0, 0), words.iter().copied())
    }

    #[test]
    fn well_formed_sentences_pass() {
        assert!(validate_sentence(&sent(&["Italy", "reports", "cases"])).is_ok());
        assert!(validate_sentence(&sent(&[])).is_ok(), "empty is valid");
    }

    #[test]
    fn empty_token_rejected() {
        let mut s = sent(&["ok"]);
        s.tokens.push(Token::synthetic(""));
        let err = validate_sentence(&s).unwrap_err();
        assert!(err.contains("token 1 is empty"), "{err}");
    }

    #[test]
    fn oversized_token_rejected() {
        let mut s = sent(&["ok"]);
        s.tokens
            .push(Token::synthetic("x".repeat(MAX_TOKEN_BYTES + 1)));
        let err = validate_sentence(&s).unwrap_err();
        assert!(err.contains("bytes"), "{err}");
        // Exactly at the limit is fine.
        let mut s2 = sent(&[]);
        s2.tokens
            .push(Token::synthetic("y".repeat(MAX_TOKEN_BYTES)));
        assert!(validate_sentence(&s2).is_ok());
    }

    #[test]
    fn sanitize_drops_oob_and_empty() {
        let spans = vec![
            Span { start: 0, end: 1 },
            Span { start: 2, end: 2 },  // empty
            Span { start: 5, end: 4 },  // inverted
            Span { start: 1, end: 99 }, // out of bounds
        ];
        assert_eq!(sanitize_spans(spans, 3), vec![Span { start: 0, end: 1 }]);
    }

    #[test]
    fn sanitize_sorts_and_drops_overlaps() {
        let spans = vec![
            Span { start: 3, end: 5 },
            Span { start: 0, end: 2 },
            Span { start: 1, end: 4 }, // overlaps both; later in sort order than (0,2)
            Span { start: 5, end: 6 }, // adjacent to (3,5): kept
        ];
        assert_eq!(
            sanitize_spans(spans, 10),
            vec![
                Span { start: 0, end: 2 },
                Span { start: 3, end: 5 },
                Span { start: 5, end: 6 },
            ]
        );
    }

    #[test]
    fn finite_check() {
        assert!(all_finite(&[0.0, -1.5, f32::MAX]));
        assert!(!all_finite(&[0.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
        assert!(!all_finite(&[f32::NEG_INFINITY, 1.0]));
        assert!(all_finite(&[]));
    }
}
