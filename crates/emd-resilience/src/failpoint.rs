//! Deterministic fail points.
//!
//! A *fail point* is a named site in the pipeline — `fire("scan")` — that
//! normally does nothing. Tests and chaos drivers *arm* a site with a
//! [`Schedule`] and the next matching [`fire`] call panics with an
//! [`InjectedFault`] payload, which the surrounding isolation layer
//! ([`crate::isolate`]) catches and routes through the same recovery paths
//! a real fault would take.
//!
//! Cost model: with the `failpoints` cargo feature **disabled** (the
//! default, and always the case in release binaries) [`fire`] is an empty
//! `#[inline(always)]` function — the call sites compile to nothing.
//! With the feature enabled, the fast path is one relaxed atomic load;
//! the registry mutex is only touched while at least one site is armed.
//!
//! Schedules are deterministic, so a chaos run with a fixed arming plan
//! is exactly reproducible: `Once` fires on the first hit, `EveryK(k)`
//! on every k-th hit, `AfterN(n)` exactly once after `n` clean passes.

/// Panic payload carried by an injected fault, so isolation layers can
/// distinguish injected faults from organic panics (and the quiet panic
/// hook can suppress their stderr noise).
#[derive(Debug)]
pub struct InjectedFault {
    /// Name of the fail point that fired.
    pub name: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at fail point `{}`", self.name)
    }
}

/// Deterministic trigger schedule for an armed fail point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Fire on the first hit, then disarm.
    Once,
    /// Fire on every k-th hit (`k ≥ 1`), indefinitely (persistent fault).
    EveryK(u64),
    /// Pass `n` hits, fire on hit `n + 1`, then disarm (crash-after-n).
    AfterN(u64),
}

/// Panic with an [`InjectedFault`] payload. Used by fail points and by
/// test doubles simulating poisoned inputs, so the quiet hook suppresses
/// their backtrace noise in both cases.
pub fn panic_injected(name: &str) -> ! {
    std::panic::panic_any(InjectedFault {
        name: name.to_string(),
    })
}

/// Install (once per process) a panic hook that suppresses the stderr
/// report for [`InjectedFault`] payloads — injected faults are caught and
/// recovered by design, so their backtraces are pure noise — while
/// delegating every organic panic to the previous hook. Available (and
/// meaningful) with or without the `failpoints` feature: poison-input
/// test doubles use [`panic_injected`] in every build.
pub fn install_quiet_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{install_quiet_hook, panic_injected, Schedule};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Fast-path switch: false ⇒ no site is armed and [`fire`] returns
    /// after one relaxed load.
    static ANY_ARMED: AtomicBool = AtomicBool::new(false);

    struct Armed {
        schedule: Schedule,
        hits: u64,
    }

    fn registry() -> MutexGuard<'static, HashMap<String, Armed>> {
        static REG: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// True: this build carries the fail-point harness.
    pub fn enabled() -> bool {
        true
    }

    /// Hit the named fail point; panics with [`InjectedFault`] when the
    /// site is armed and its schedule matches.
    pub fn fire(name: &str) {
        if !ANY_ARMED.load(Ordering::Relaxed) {
            return;
        }
        let fires = {
            let mut reg = registry();
            match reg.get_mut(name) {
                None => false,
                Some(armed) => {
                    armed.hits += 1;
                    let (fires, disarm) = match armed.schedule {
                        Schedule::Once => (armed.hits == 1, armed.hits == 1),
                        Schedule::EveryK(k) => (armed.hits % k.max(1) == 0, false),
                        Schedule::AfterN(n) => (armed.hits == n + 1, armed.hits == n + 1),
                    };
                    if disarm {
                        reg.remove(name);
                        ANY_ARMED.store(!reg.is_empty(), Ordering::Relaxed);
                    }
                    fires
                }
            }
        };
        if fires {
            panic_injected(name);
        }
    }

    /// Arm a fail point. The returned guard disarms the site when dropped,
    /// so a panicking test cannot leak an armed site into the next test.
    /// Arming also installs the quiet panic hook.
    pub fn arm(name: &str, schedule: Schedule) -> ArmGuard {
        install_quiet_hook();
        let mut reg = registry();
        reg.insert(name.to_string(), Armed { schedule, hits: 0 });
        ANY_ARMED.store(true, Ordering::Relaxed);
        ArmGuard {
            name: name.to_string(),
        }
    }

    /// Disarm every fail point.
    pub fn disarm_all() {
        let mut reg = registry();
        reg.clear();
        ANY_ARMED.store(false, Ordering::Relaxed);
    }

    /// Disarms its fail point on drop.
    #[must_use = "dropping the guard disarms the fail point"]
    pub struct ArmGuard {
        name: String,
    }

    impl Drop for ArmGuard {
        fn drop(&mut self) {
            let mut reg = registry();
            reg.remove(&self.name);
            ANY_ARMED.store(!reg.is_empty(), Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::Schedule;

    /// False: fail points are compiled out of this build.
    pub fn enabled() -> bool {
        false
    }

    /// No-op — the `failpoints` feature is disabled, so every injection
    /// site in the pipeline compiles to nothing.
    #[inline(always)]
    pub fn fire(_name: &str) {}

    /// No-op arming (nothing will ever fire in this build). Kept so code
    /// written against the harness still compiles without the feature.
    pub fn arm(_name: &str, _schedule: Schedule) -> ArmGuard {
        ArmGuard {}
    }

    /// No-op.
    pub fn disarm_all() {}

    /// Guard over nothing.
    #[must_use = "dropping the guard disarms the fail point"]
    pub struct ArmGuard {}
}

pub use imp::{arm, disarm_all, enabled, fire, ArmGuard};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global; serialize the tests that use it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        disarm_all();
        g
    }

    fn fires(name: &str) -> bool {
        crate::isolate::catch(|| fire(name)).is_err()
    }

    #[test]
    fn unarmed_fire_is_silent() {
        let _l = lock();
        assert!(enabled());
        assert!(!fires("nothing_armed_here"));
    }

    #[test]
    fn once_fires_exactly_once() {
        let _l = lock();
        let _g = arm("p", Schedule::Once);
        assert!(fires("p"));
        assert!(!fires("p"));
        assert!(!fires("p"));
    }

    #[test]
    fn every_k_is_periodic() {
        let _l = lock();
        let _g = arm("p", Schedule::EveryK(3));
        let pattern: Vec<bool> = (0..9).map(|_| fires("p")).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn after_n_passes_then_fires_once() {
        let _l = lock();
        let _g = arm("p", Schedule::AfterN(2));
        assert!(!fires("p"));
        assert!(!fires("p"));
        assert!(fires("p"));
        assert!(!fires("p"));
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _l = lock();
        {
            let _g = arm("p", Schedule::EveryK(1));
            assert!(fires("p"));
        }
        assert!(!fires("p"));
    }

    #[test]
    fn independent_sites_do_not_interfere() {
        let _l = lock();
        let _a = arm("a", Schedule::Once);
        let _b = arm("b", Schedule::EveryK(2));
        assert!(!fires("c"));
        assert!(fires("a"));
        assert!(!fires("b"));
        assert!(fires("b"));
    }

    #[test]
    fn injected_payload_is_recognizable() {
        let _l = lock();
        let _g = arm("p", Schedule::Once);
        let caught = std::panic::catch_unwind(|| fire("p"));
        let payload = caught.expect_err("must fire");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload is InjectedFault");
        assert_eq!(fault.name, "p");
    }
}
