//! # emd-resilience
//!
//! The failure model of the streaming runtime (see DESIGN.md § "Failure
//! model"): deterministic fault injection, panic isolation, poison-input
//! validation, quarantine bookkeeping, and a versioned checkpoint format.
//! `emd-core` threads these primitives through every pipeline phase so a
//! panicking worker, a malformed tweet, or a process restart degrades the
//! run instead of destroying it.
//!
//! * [`failpoint`] — named injection sites at each phase boundary with
//!   seeded trigger schedules (fail-once, fail-every-k, fail-after-n).
//!   Compile-time zero-cost unless the `failpoints` feature is enabled
//!   (tests and examples enable it; release builds never do).
//! * [`isolate`] — `catch_unwind` wrappers that convert panics into
//!   `Result`s with readable messages, plus a bounded retry budget.
//! * [`validate`] — input validation for third-party Local EMD output:
//!   token sanity, span bounds/overlap, finite embeddings.
//! * [`quarantine`] — the dead-letter record type: which sentence failed,
//!   in which phase, and why.
//! * [`deadletter`] — JSONL persistence for whole batches the supervisor
//!   gave up on, written next to the checkpoint for operator replay.
//! * [`checkpoint`] — atomic snapshot files with a versioned header and an
//!   FNV-1a integrity checksum, so `StreamSupervisor` restarts replay only
//!   the suffix since the last checkpoint. A retained-generation ladder
//!   (`save_generations` / `load_chain`) survives torn writes by falling
//!   back to the newest intact generation.
//!
//! The crate deliberately depends only on `emd-text` (for sentence ids)
//! and the serde shims — it sits *below* `emd-core` in the crate graph.

pub mod checkpoint;
pub mod deadletter;
pub mod failpoint;
pub mod isolate;
pub mod quarantine;
pub mod validate;

pub use checkpoint::{CheckpointError, GenerationDiscard, FORMAT_VERSION};
pub use deadletter::{deadletter_path, DeadLetterRecord};
pub use failpoint::{fire, InjectedFault, Schedule};
pub use isolate::{catch, retry_catch, retry_catch_with, Retried};
pub use quarantine::{PipelinePhase, QuarantineEntry};
