//! Dead-letter persistence: batches the supervisor gave up on, written as
//! JSONL next to the checkpoint so operators can replay them after fixing
//! whatever was wrong.
//!
//! The in-memory quarantine log ([`crate::quarantine`]) records the
//! *decision* (which sentence, which phase, why); it dies with the
//! process. The dead-letter file records the *payload* — the full
//! sentences of every batch that exhausted its retry/deadline budget or
//! was shed by an admission policy — one JSON record per line, appended
//! in stream order. A record is self-contained: re-feeding its
//! `sentences` through a fresh supervisor is the replay path.
//!
//! Appends happen after the failure is already committed to quarantine,
//! so a crash between the two at worst loses a dead-letter line, never
//! invents one.

use emd_text::token::Sentence;
use serde::{Deserialize, Serialize};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One dead-lettered batch: its position in the stream, why it was given
/// up on, and the full sentence payload for replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetterRecord {
    /// Zero-based index of the batch in supervisor service order.
    pub batch_seq: u64,
    /// Why the batch was dead-lettered (persistent-failure message,
    /// "deadline exceeded", or the shedding policy's name).
    pub reason: String,
    /// The sentences the batch carried, in stream order.
    pub sentences: Vec<Sentence>,
}

/// The conventional dead-letter sibling of a checkpoint path:
/// `<checkpoint>.deadletter.jsonl`.
pub fn deadletter_path(checkpoint: &Path) -> PathBuf {
    let mut name = checkpoint.file_name().unwrap_or_default().to_os_string();
    name.push(".deadletter.jsonl");
    checkpoint.with_file_name(name)
}

/// Append one record as a single JSON line (creating the file on first
/// use). Errors are rendered as strings — dead-letter persistence is
/// best-effort bookkeeping; the caller decides whether to surface or
/// count the failure.
pub fn append(path: &Path, record: &DeadLetterRecord) -> Result<(), String> {
    let line =
        serde_json::to_string(record).map_err(|e| format!("dead-letter serialize failed: {e}"))?;
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("dead-letter open failed for {}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("dead-letter write failed: {e}"))
}

/// Read every record back, in append order. A missing file is an empty
/// log, not an error; a malformed line is an error naming the line.
pub fn read_all(path: &Path) -> Result<Vec<DeadLetterRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(format!(
                "dead-letter read failed for {}: {e}",
                path.display()
            ))
        }
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = serde_json::from_str(line)
            .map_err(|e| format!("dead-letter line {} malformed: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_text::token::SentenceId;

    fn temp(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("emd-deadletter-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn record(seq: u64, reason: &str) -> DeadLetterRecord {
        DeadLetterRecord {
            batch_seq: seq,
            reason: reason.to_string(),
            sentences: vec![
                Sentence::from_tokens(SentenceId::new(seq * 10, 0), ["obama", "visits", "nyc"]),
                Sentence::from_tokens(SentenceId::new(seq * 10 + 1, 0), ["rt", "lol"]),
            ],
        }
    }

    #[test]
    fn append_then_read_round_trips_in_order() {
        let path = temp("roundtrip");
        append(&path, &record(0, "persistent: boom")).unwrap();
        append(&path, &record(3, "deadline exceeded")).unwrap();
        append(&path, &record(5, "reject-new")).unwrap();
        let back = read_all(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], record(0, "persistent: boom"));
        assert_eq!(back[1].batch_seq, 3);
        assert_eq!(back[2].reason, "reject-new");
        assert_eq!(back[2].sentences[0].texts().collect::<Vec<_>>().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = temp("missing");
        assert_eq!(read_all(&path).unwrap(), Vec::new());
    }

    #[test]
    fn malformed_line_is_named() {
        let path = temp("malformed");
        append(&path, &record(1, "ok")).unwrap();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{{not json").unwrap();
        }
        let err = read_all(&path).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deadletter_path_is_a_checkpoint_sibling() {
        let p = deadletter_path(Path::new("/tmp/run/stream.ckpt"));
        assert_eq!(p, Path::new("/tmp/run/stream.ckpt.deadletter.jsonl"));
    }
}
