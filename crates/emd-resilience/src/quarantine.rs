//! Quarantine bookkeeping: the dead-letter record type.
//!
//! When a sentence exhausts its retry budget in some phase — its local
//! system panics persistently, its tokens fail validation, its embeddings
//! are NaN, its rescan keeps dying — the pipeline *diverts* it into a
//! quarantine log on the output instead of killing the batch (or silently
//! dropping the evidence). Operators drain the log from
//! `GlobalizerOutput::quarantined` or watch the
//! `emd_resilience_quarantined_total` counter.

use emd_text::token::SentenceId;
use serde::{Deserialize, Serialize};

/// The pipeline phase in which a failure was isolated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelinePhase {
    /// The Local EMD plug-in's own `process` call.
    LocalInference,
    /// Validation + storage of local outputs (TweetBase / CTrie).
    Ingest,
    /// The batch-time occurrence scan.
    Scan,
    /// Candidate classification.
    Classify,
    /// The closing rescan at stream close.
    FinalizeRescan,
    /// The batch-driving supervisor loop.
    Supervisor,
    /// The admission gate in front of the supervisor: the sentence was
    /// shed by an overload policy before any pipeline phase ran.
    Admission,
}

impl std::fmt::Display for PipelinePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PipelinePhase::LocalInference => "local-inference",
            PipelinePhase::Ingest => "ingest",
            PipelinePhase::Scan => "scan",
            PipelinePhase::Classify => "classify",
            PipelinePhase::FinalizeRescan => "finalize-rescan",
            PipelinePhase::Supervisor => "supervisor",
            PipelinePhase::Admission => "admission",
        };
        f.write_str(s)
    }
}

/// One dead-letter entry: a sentence the pipeline gave up on, where, and
/// why. Entries appear in deterministic stream/discovery order, so two
/// runs with the same faults produce identical quarantine logs.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The quarantined sentence.
    pub sid: SentenceId,
    /// Phase in which the failure was isolated.
    pub phase: PipelinePhase,
    /// Human-readable reason (panic message or validation error).
    pub reason: String,
    /// Sequence number of the `SentenceQuarantined` trace event recording
    /// this diversion, when tracing was enabled — the join key into the
    /// trace for the sentence's full event history. `None` in untraced
    /// runs (or when the ring dropped the event).
    #[serde(skip)]
    pub trace_event: Option<u64>,
}

// Equality deliberately ignores `trace_event`: the dead-letter *decision*
// is what must be deterministic, and a traced run must compare equal to
// the identical untraced run (noop-transparency tests rely on this).
impl PartialEq for QuarantineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.sid == other.sid && self.phase == other.phase && self.reason == other.reason
    }
}

impl std::fmt::Display for QuarantineEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] sentence {}: {}", self.phase, self.sid, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trip() {
        let e = QuarantineEntry {
            sid: SentenceId::new(7, 1),
            phase: PipelinePhase::Scan,
            reason: "panic: boom".to_string(),
            trace_event: Some(42),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: QuarantineEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn equality_ignores_trace_link() {
        let mut a = QuarantineEntry {
            sid: SentenceId::new(1, 0),
            phase: PipelinePhase::Supervisor,
            reason: "boom".to_string(),
            trace_event: Some(9),
        };
        let mut b = a.clone();
        b.trace_event = None;
        assert_eq!(a, b, "traced and untraced entries compare equal");
        a.reason = "other".to_string();
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_readable() {
        let e = QuarantineEntry {
            sid: SentenceId::new(3, 0),
            phase: PipelinePhase::LocalInference,
            reason: "token 2 is empty".to_string(),
            trace_event: None,
        };
        assert_eq!(
            e.to_string(),
            "[local-inference] sentence 3#0: token 2 is empty"
        );
    }
}
