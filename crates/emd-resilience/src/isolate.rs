//! Panic isolation: run a unit of work, convert a panic into an error
//! message, optionally retry within a bounded budget.
//!
//! The pipeline calls these around *pure* units (per-sentence inference,
//! per-record scan staging, per-candidate scoring), so a caught panic
//! never leaves partially mutated state behind — the mutating apply steps
//! stay outside the isolation boundary and are infallible.

use crate::failpoint::InjectedFault;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Render a panic payload as a one-line reason string.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(fault) = payload.downcast_ref::<InjectedFault>() {
        fault.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Run `f`, catching any panic and rendering it as an error message.
///
/// The `AssertUnwindSafe` is justified by the calling convention above:
/// isolated units are read-only over shared state and build their result
/// by value, so there is no broken invariant to observe after a catch.
pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| panic_message(payload.as_ref()))
}

/// Outcome of [`retry_catch`]: the final result plus how many attempts
/// panicked along the way (for retry metrics — `failed_attempts` can be
/// nonzero even when `result` is `Ok`).
#[derive(Debug)]
pub struct Retried<T> {
    /// The value from the first successful attempt, or the last panic
    /// message once the budget is exhausted.
    pub result: Result<T, String>,
    /// Number of attempts that panicked.
    pub failed_attempts: usize,
}

/// Run `f` under [`catch`] up to `attempts` times (at least once),
/// stopping at the first success.
pub fn retry_catch<T>(attempts: usize, f: impl FnMut() -> T) -> Retried<T> {
    retry_catch_with(attempts, f, |_| true)
}

/// [`retry_catch`] with a pluggable between-attempts hook.
///
/// After a failed attempt (and before the next one), `between` is called
/// with the number of attempts failed so far (1-based). Returning `false`
/// aborts the retry loop early — the hook is where callers apply backoff
/// delays and charge them against a deadline budget; an exhausted budget
/// stops retrying even when the attempt budget has room left. The hook is
/// *not* called after the final attempt.
pub fn retry_catch_with<T>(
    attempts: usize,
    mut f: impl FnMut() -> T,
    mut between: impl FnMut(usize) -> bool,
) -> Retried<T> {
    let attempts = attempts.max(1);
    let mut failed_attempts = 0;
    let mut last_err = String::new();
    for attempt in 0..attempts {
        if attempt > 0 && !between(failed_attempts) {
            break;
        }
        match catch(&mut f) {
            Ok(v) => {
                return Retried {
                    result: Ok(v),
                    failed_attempts,
                }
            }
            Err(e) => {
                failed_attempts += 1;
                last_err = e;
            }
        }
    }
    Retried {
        result: Err(last_err),
        failed_attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{install_quiet_hook, panic_injected};

    #[test]
    fn catch_passes_values_through() {
        assert_eq!(catch(|| 41 + 1), Ok(42));
    }

    #[test]
    fn catch_renders_str_and_string_payloads() {
        install_quiet_hook();
        let e = catch(|| -> u8 { std::panic::panic_any(InjectedFault { name: "x".into() }) })
            .unwrap_err();
        assert!(e.contains("fail point `x`"), "{e}");
        // &str / String payloads would print via the default hook; route
        // them through a temporarily quiet scope by using panic_any with
        // InjectedFault in the other tests and plain panics here, where
        // the noise is the point being tested.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let e1 = catch(|| -> u8 { panic!("boom") }).unwrap_err();
        let e2 = catch(|| -> u8 { std::panic::panic_any(format!("msg {}", 7)) }).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(e1, "panic: boom");
        assert_eq!(e2, "panic: msg 7");
    }

    #[test]
    fn retry_recovers_transient_failures() {
        install_quiet_hook();
        let mut calls = 0;
        let r = retry_catch(3, || {
            calls += 1;
            if calls < 3 {
                panic_injected("transient");
            }
            calls
        });
        assert_eq!(r.result, Ok(3));
        assert_eq!(r.failed_attempts, 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        install_quiet_hook();
        let mut calls = 0;
        let r = retry_catch(4, || -> () {
            calls += 1;
            panic_injected("persistent");
        });
        assert_eq!(calls, 4);
        assert_eq!(r.failed_attempts, 4);
        assert!(r.result.unwrap_err().contains("persistent"));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let r = retry_catch(0, || 7);
        assert_eq!(r.result, Ok(7));
        assert_eq!(r.failed_attempts, 0);
    }

    #[test]
    fn between_hook_sees_failure_counts_and_can_abort() {
        install_quiet_hook();
        let mut seen = Vec::new();
        let mut calls = 0;
        let r = retry_catch_with(
            5,
            || -> () {
                calls += 1;
                panic_injected("persistent");
            },
            |failed| {
                seen.push(failed);
                failed < 2 // deadline exhausted after the second failure
            },
        );
        assert_eq!(calls, 2, "abort stops retries before the attempt budget");
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(r.failed_attempts, 2);
        assert!(r.result.is_err());
    }

    #[test]
    fn between_hook_not_called_on_success_path() {
        let mut hook_calls = 0;
        let r = retry_catch_with(
            3,
            || 11,
            |_| {
                hook_calls += 1;
                true
            },
        );
        assert_eq!(r.result, Ok(11));
        assert_eq!(hook_calls, 0, "no failure, no backoff");
    }
}
