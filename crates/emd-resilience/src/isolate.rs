//! Panic isolation: run a unit of work, convert a panic into an error
//! message, optionally retry within a bounded budget.
//!
//! The pipeline calls these around *pure* units (per-sentence inference,
//! per-record scan staging, per-candidate scoring), so a caught panic
//! never leaves partially mutated state behind — the mutating apply steps
//! stay outside the isolation boundary and are infallible.

use crate::failpoint::InjectedFault;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Render a panic payload as a one-line reason string.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(fault) = payload.downcast_ref::<InjectedFault>() {
        fault.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Run `f`, catching any panic and rendering it as an error message.
///
/// The `AssertUnwindSafe` is justified by the calling convention above:
/// isolated units are read-only over shared state and build their result
/// by value, so there is no broken invariant to observe after a catch.
pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| panic_message(payload.as_ref()))
}

/// Outcome of [`retry_catch`]: the final result plus how many attempts
/// panicked along the way (for retry metrics — `failed_attempts` can be
/// nonzero even when `result` is `Ok`).
#[derive(Debug)]
pub struct Retried<T> {
    /// The value from the first successful attempt, or the last panic
    /// message once the budget is exhausted.
    pub result: Result<T, String>,
    /// Number of attempts that panicked.
    pub failed_attempts: usize,
}

/// Run `f` under [`catch`] up to `attempts` times (at least once),
/// stopping at the first success.
pub fn retry_catch<T>(attempts: usize, mut f: impl FnMut() -> T) -> Retried<T> {
    let attempts = attempts.max(1);
    let mut failed_attempts = 0;
    let mut last_err = String::new();
    for _ in 0..attempts {
        match catch(&mut f) {
            Ok(v) => {
                return Retried {
                    result: Ok(v),
                    failed_attempts,
                }
            }
            Err(e) => {
                failed_attempts += 1;
                last_err = e;
            }
        }
    }
    Retried {
        result: Err(last_err),
        failed_attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{install_quiet_hook, panic_injected};

    #[test]
    fn catch_passes_values_through() {
        assert_eq!(catch(|| 41 + 1), Ok(42));
    }

    #[test]
    fn catch_renders_str_and_string_payloads() {
        install_quiet_hook();
        let e = catch(|| -> u8 { std::panic::panic_any(InjectedFault { name: "x".into() }) })
            .unwrap_err();
        assert!(e.contains("fail point `x`"), "{e}");
        // &str / String payloads would print via the default hook; route
        // them through a temporarily quiet scope by using panic_any with
        // InjectedFault in the other tests and plain panics here, where
        // the noise is the point being tested.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let e1 = catch(|| -> u8 { panic!("boom") }).unwrap_err();
        let e2 = catch(|| -> u8 { std::panic::panic_any(format!("msg {}", 7)) }).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(e1, "panic: boom");
        assert_eq!(e2, "panic: msg 7");
    }

    #[test]
    fn retry_recovers_transient_failures() {
        install_quiet_hook();
        let mut calls = 0;
        let r = retry_catch(3, || {
            calls += 1;
            if calls < 3 {
                panic_injected("transient");
            }
            calls
        });
        assert_eq!(r.result, Ok(3));
        assert_eq!(r.failed_attempts, 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        install_quiet_hook();
        let mut calls = 0;
        let r = retry_catch(4, || -> () {
            calls += 1;
            panic_injected("persistent");
        });
        assert_eq!(calls, 4);
        assert_eq!(r.failed_attempts, 4);
        assert!(r.result.unwrap_err().contains("persistent"));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let r = retry_catch(0, || 7);
        assert_eq!(r.result, Ok(7));
        assert_eq!(r.failed_attempts, 0);
    }
}
